"""SMILES subset parser and writer.

The paper's pipeline speaks SMILES everywhere (libraries are shipped as
SMILES, the ML1 surrogate featurizes SMILES, docking ingests SMILES).  We
implement the organic subset sufficient for drug-like molecules:

* organic-subset atoms ``B C N O P S F Cl Br I`` and aromatic ``b c n o p s``,
* bracket atoms with explicit H counts and formal charges (``[NH3+]``),
* single/double/triple bonds (``- = #``) and implicit aromatic bonds,
* branches ``( )`` and ring-closure digits (including ``%nn``).

Stereochemistry, isotopes and multi-fragment (``.``) inputs are rejected
explicitly — the synthetic library never emits them, and silently ignoring
them would corrupt downstream featurization.
"""

from __future__ import annotations

from repro.chem.mol import Atom, Bond, Molecule

__all__ = ["parse_smiles", "write_smiles", "canonical_smiles", "SmilesError"]

_ORGANIC_TWO = ("Cl", "Br")
_ORGANIC_ONE = set("BCNOPSFI")
_AROMATIC_ORGANIC = set("bcnops")
_BOND_CHARS = {"-": 1, "=": 2, "#": 3}


class SmilesError(ValueError):
    """Raised on malformed or unsupported SMILES input."""

    def __init__(self, smiles: str, pos: int, message: str) -> None:
        super().__init__(f"{message} at position {pos} in {smiles!r}")
        self.smiles = smiles
        self.pos = pos


class _Parser:
    """Single-pass recursive-descent-free SMILES reader using a branch stack."""

    def __init__(self, smiles: str) -> None:
        self.s = smiles
        self.i = 0
        self.mol = Molecule(name=smiles)
        self.prev: int | None = None  # index of atom awaiting a bond
        self.pending_order: int | None = None  # explicit bond char seen
        self.stack: list[int] = []  # open branch anchors
        self.ring_open: dict[int, tuple[int, int | None]] = {}  # num -> (atom, order)

    def error(self, message: str) -> SmilesError:
        """Build a position-annotated parse error."""
        return SmilesError(self.s, self.i, message)

    # ---------------------------------------------------------------- atoms
    def _attach(self, atom: Atom) -> None:
        idx = self.mol.add_atom(atom)
        if self.prev is not None:
            a_prev = self.mol.atoms[self.prev]
            if self.pending_order is not None:
                self.mol.add_bond(self.prev, idx, order=self.pending_order)
            elif a_prev.aromatic and atom.aromatic:
                self.mol.add_bond(self.prev, idx, order=1, aromatic=True)
            else:
                self.mol.add_bond(self.prev, idx, order=1)
        self.pending_order = None
        self.prev = idx

    def _read_bracket(self) -> None:
        start = self.i
        self.i += 1  # consume '['
        s = self.s
        if self.i >= len(s):
            raise self.error("unterminated bracket atom")
        # element symbol (possibly aromatic lowercase)
        aromatic = False
        if s[self.i : self.i + 2] in _ORGANIC_TWO:
            symbol = s[self.i : self.i + 2]
            self.i += 2
        else:
            ch = s[self.i]
            if ch in _AROMATIC_ORGANIC:
                symbol, aromatic = ch.upper(), True
            elif ch.isalpha() and ch.isupper():
                symbol = ch
            else:
                raise self.error(f"bad element start {ch!r} in bracket")
            self.i += 1
        # explicit hydrogens [CH3]; we rely on valence maths so we only
        # verify consistency later — the count itself is parsed and dropped.
        if self.i < len(s) and s[self.i] == "H":
            self.i += 1
            while self.i < len(s) and s[self.i].isdigit():
                self.i += 1
        # charge
        charge = 0
        if self.i < len(s) and s[self.i] in "+-":
            sign = 1 if s[self.i] == "+" else -1
            self.i += 1
            if self.i < len(s) and s[self.i].isdigit():
                charge = sign * int(s[self.i])
                self.i += 1
            else:
                charge = sign
                while self.i < len(s) and s[self.i] == ("+" if sign > 0 else "-"):
                    charge += sign
                    self.i += 1
        if self.i >= len(s) or s[self.i] != "]":
            self.i = start
            raise self.error("unterminated or unsupported bracket atom")
        self.i += 1
        self._attach(Atom(symbol=symbol, charge=charge, aromatic=aromatic))

    # ---------------------------------------------------------------- rings
    def _ring_closure(self, num: int) -> None:
        if num in self.ring_open:
            other, open_order = self.ring_open.pop(num)
            if self.prev is None:
                raise self.error("ring closure before any atom")
            order = self.pending_order or open_order
            a, b = self.mol.atoms[other], self.mol.atoms[self.prev]
            if order is None and a.aromatic and b.aromatic:
                self.mol.add_bond(other, self.prev, order=1, aromatic=True)
            else:
                self.mol.add_bond(other, self.prev, order=order or 1)
            self.pending_order = None
        else:
            if self.prev is None:
                raise self.error("ring opening before any atom")
            self.ring_open[num] = (self.prev, self.pending_order)
            self.pending_order = None

    # ----------------------------------------------------------------- main
    def parse(self) -> Molecule:
        """Run the parser; returns the validated molecule."""
        s = self.s
        if not s:
            raise SmilesError(s, 0, "empty SMILES")
        while self.i < len(s):
            ch = s[self.i]
            if s[self.i : self.i + 2] in _ORGANIC_TWO:
                self.i += 2
                self._attach(Atom(symbol=s[self.i - 2 : self.i]))
            elif ch in _ORGANIC_ONE:
                self.i += 1
                self._attach(Atom(symbol=ch))
            elif ch in _AROMATIC_ORGANIC:
                if ch in ("b", "p"):
                    raise self.error(f"aromatic {ch!r} unsupported")
                self.i += 1
                self._attach(Atom(symbol=ch.upper(), aromatic=True))
            elif ch == "[":
                self._read_bracket()
            elif ch in _BOND_CHARS:
                if self.pending_order is not None:
                    raise self.error("two consecutive bond symbols")
                self.pending_order = _BOND_CHARS[ch]
                self.i += 1
            elif ch == "(":
                if self.prev is None:
                    raise self.error("branch before any atom")
                self.stack.append(self.prev)
                self.i += 1
            elif ch == ")":
                if not self.stack:
                    raise self.error("unmatched ')'")
                self.prev = self.stack.pop()
                self.i += 1
            elif ch.isdigit():
                self._ring_closure(int(ch))
                self.i += 1
            elif ch == "%":
                if self.i + 2 >= len(s) or not s[self.i + 1 : self.i + 3].isdigit():
                    raise self.error("bad %nn ring closure")
                self._ring_closure(int(s[self.i + 1 : self.i + 3]))
                self.i += 3
            elif ch in ("/", "\\", "@", ".", ":"):
                raise self.error(f"unsupported SMILES feature {ch!r}")
            else:
                raise self.error(f"unexpected character {ch!r}")
        if self.stack:
            raise self.error("unclosed branch '('")
        if self.ring_open:
            raise self.error(f"unclosed ring closures {sorted(self.ring_open)}")
        if self.pending_order is not None:
            raise self.error("dangling bond symbol")
        self._demote_nonring_aromatic_bonds()
        self.mol.validate()
        return self.mol

    def _demote_nonring_aromatic_bonds(self) -> None:
        """Bonds between aromatic atoms default to aromatic while reading,
        but a linker like the biphenyl C–C bond is a plain single bond: only
        bonds that lie inside a ring may stay aromatic."""
        ring_bonds: set[frozenset[int]] = set()
        for ring in self.mol.rings():
            for i in range(len(ring)):
                ring_bonds.add(frozenset((ring[i], ring[(i + 1) % len(ring)])))
        for bond in self.mol.bonds:
            if bond.aromatic and frozenset((bond.a, bond.b)) not in ring_bonds:
                bond.aromatic = False
                bond.order = 1


def parse_smiles(smiles: str) -> Molecule:
    """Parse a SMILES string into a validated :class:`Molecule`."""
    return _Parser(smiles.strip()).parse()


# --------------------------------------------------------------------- write


def _atom_token(atom: Atom, mol: Molecule) -> str:
    """Render one atom, using brackets only when required."""
    needs_bracket = atom.charge != 0
    sym = atom.symbol.lower() if atom.aromatic else atom.symbol
    if not needs_bracket:
        return sym
    h = mol.implicit_hydrogens(atom.index)
    hpart = "" if h == 0 else ("H" if h == 1 else f"H{h}")
    if atom.charge > 0:
        cpart = "+" if atom.charge == 1 else f"+{atom.charge}"
    else:
        cpart = "-" if atom.charge == -1 else f"-{-atom.charge}"
    return f"[{sym}{hpart}{cpart}]"


def _bond_token(bond: Bond) -> str:
    if bond.aromatic or bond.order == 1:
        return ""
    return {2: "=", 3: "#"}[bond.order]


def write_smiles(mol: Molecule, order: list[int] | None = None) -> str:
    """Serialize a molecule to SMILES.

    ``order`` optionally gives a priority ranking (lower first) used to pick
    the DFS root and neighbor visit order; :func:`canonical_smiles` passes
    canonical ranks here.  Without it the writer follows atom indices, which
    still round-trips but is representation-dependent.
    """
    if mol.n_atoms == 0:
        raise ValueError("cannot write empty molecule")
    if not mol.is_connected():
        raise ValueError("cannot write disconnected molecule")
    rank = order if order is not None else list(range(mol.n_atoms))

    def bond_sorted(idx: int) -> list[Bond]:
        return sorted(mol.adjacency()[idx], key=lambda b: rank[b.other(idx)])

    # Pass 1: DFS to classify bonds as tree edges vs ring-closure (back)
    # edges.  Ring-closure digits must be printed at *both* endpoints, so
    # they have to be known before any text is emitted.
    root = min(range(mol.n_atoms), key=lambda i: rank[i])
    visited: set[int] = set()
    children: dict[int, list[Bond]] = {i: [] for i in range(mol.n_atoms)}
    ring_digits_at: dict[int, list[tuple[int, Bond]]] = {
        i: [] for i in range(mol.n_atoms)
    }
    next_digit = 1
    stack: list[tuple[int, Bond | None]] = [(root, None)]
    seen_bonds: set[int] = set()
    # iterative DFS preserving the sorted visit order
    while stack:
        idx, via = stack.pop()
        if idx in visited:
            # a pushed tree candidate whose target was reached first through
            # a sibling: it closes a ring after all
            if via is not None and id(via) not in seen_bonds:
                if next_digit > 99:
                    raise ValueError("too many ring closures")
                ring_digits_at[via.a].append((next_digit, via))
                ring_digits_at[via.b].append((next_digit, via))
                seen_bonds.add(id(via))
                next_digit += 1
            continue
        visited.add(idx)
        if via is not None:
            seen_bonds.add(id(via))
        to_push = []
        for bond in bond_sorted(idx):
            if bond is via or id(bond) in seen_bonds:
                continue
            other = bond.other(idx)
            if other in visited:
                # back edge: allocate a shared digit at both endpoints
                if next_digit > 99:
                    raise ValueError("too many ring closures")
                ring_digits_at[idx].append((next_digit, bond))
                ring_digits_at[other].append((next_digit, bond))
                seen_bonds.add(id(bond))
                next_digit += 1
            else:
                to_push.append((other, bond))
        # push in reverse so the lowest-rank child is visited first
        for other, bond in reversed(to_push):
            stack.append((other, bond))

    # A child pushed early may get claimed by a later sibling (through a
    # ring), so rebuild the actual tree with a clean recursive pass that
    # mirrors the emission below.
    visited2: set[int] = set()
    back_bonds = {id(b) for digits in ring_digits_at.values() for _, b in digits}

    def build(idx: int, via: Bond | None) -> None:
        visited2.add(idx)
        for bond in bond_sorted(idx):
            if bond is via or id(bond) in back_bonds:
                continue
            other = bond.other(idx)
            if other in visited2:
                continue
            children[idx].append(bond)
            build(other, bond)

    build(root, None)
    if len(visited2) != mol.n_atoms:
        raise ValueError("writer failed to reach all atoms")

    # Pass 2: emit text following the tree.
    pieces: list[str] = []

    def emit(idx: int, via: Bond | None) -> None:
        if via is not None:
            pieces.append(_bond_token(via))
        pieces.append(_atom_token(mol.atoms[idx], mol))
        for digit, bond in sorted(ring_digits_at[idx]):
            pieces.append(
                _bond_token(bond) + (str(digit) if digit < 10 else f"%{digit:02d}")
            )
        kids = children[idx]
        for k, bond in enumerate(kids):
            last = k == len(kids) - 1
            if not last:
                pieces.append("(")
            emit(bond.other(idx), bond)
            if not last:
                pieces.append(")")

    emit(root, None)
    return "".join(pieces)


# ----------------------------------------------------------------- canonical


def canonical_ranks(mol: Molecule) -> list[int]:
    """Canonical atom ranking by iterative invariant refinement.

    Starts from local invariants (element, charge, aromaticity, degree,
    implicit H count) and refines by sorted neighbor ranks until stable;
    remaining ties are broken by splitting the lowest tied class and
    re-refining, which yields a deterministic, representation-independent
    ranking for the molecule sizes in this library.
    """
    n = mol.n_atoms
    inv = [
        (
            a.element.number,
            a.charge,
            a.aromatic,
            mol.degree(a.index),
            mol.implicit_hydrogens(a.index),
        )
        for a in mol.atoms
    ]
    ranks = _dense_ranks(inv)

    def refine(r: list[int]) -> list[int]:
        while True:
            keys = [
                (r[i], tuple(sorted(r[j] for j in mol.neighbors(i)))) for i in range(n)
            ]
            new = _dense_ranks(keys)
            if new == r:
                return r
            r = new

    ranks = refine(ranks)
    while len(set(ranks)) < n:
        # split the first tied class deterministically
        counts: dict[int, list[int]] = {}
        for i, r in enumerate(ranks):
            counts.setdefault(r, []).append(i)
        tied = min((r for r, idxs in counts.items() if len(idxs) > 1), default=None)
        assert tied is not None
        chosen = counts[tied][0]
        keys2 = [(r, 0 if i == chosen else 1) for i, r in enumerate(ranks)]
        ranks = refine(_dense_ranks(keys2))
    return ranks


def _dense_ranks(keys: list) -> list[int]:
    """Map arbitrary sortable keys to dense integer ranks."""
    uniq = sorted(set(keys))
    lookup = {k: i for i, k in enumerate(uniq)}
    return [lookup[k] for k in keys]


def canonical_smiles(smiles_or_mol: str | Molecule) -> str:
    """Canonical SMILES for deduplication and library-overlap accounting."""
    mol = (
        parse_smiles(smiles_or_mol)
        if isinstance(smiles_or_mol, str)
        else smiles_or_mol
    )
    return write_smiles(mol, order=canonical_ranks(mol))
