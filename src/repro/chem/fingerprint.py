"""Morgan-style circular fingerprints and similarity metrics.

Fingerprints serve three masters here: structural-diversity selection for
library subsets (the paper picks "structurally most diverse" compounds for
CG-ESMACS), the surrogate's auxiliary feature channel, and receptor
construction (pocket pharmacophores are seeded from fingerprint statistics
so docking scores carry real structure signal).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.chem.mol import Molecule

__all__ = ["morgan_fingerprint", "tanimoto", "bulk_tanimoto", "diversity_pick"]


def _hash64(data: str) -> int:
    return int.from_bytes(hashlib.blake2b(data.encode(), digest_size=8).digest(), "little")


def morgan_fingerprint(
    mol: Molecule, radius: int = 2, n_bits: int = 1024, counts: bool = False
) -> np.ndarray:
    """Circular fingerprint by iterated neighborhood hashing.

    Each atom starts from a local invariant; ``radius`` rounds of hashing
    fold in sorted neighbor identifiers (the ECFP construction).  Every
    intermediate identifier sets a bit (or increments a count).
    """
    if radius < 0:
        raise ValueError("radius must be >= 0")
    n = mol.n_atoms
    ids = [
        _hash64(
            f"{a.symbol}|{a.charge}|{int(a.aromatic)}|"
            f"{mol.degree(a.index)}|{mol.implicit_hydrogens(a.index)}"
        )
        for a in mol.atoms
    ]
    fp = np.zeros(n_bits, dtype=np.float32 if counts else np.uint8)

    def register(identifier: int) -> None:
        bit = identifier % n_bits
        if counts:
            fp[bit] += 1.0
        else:
            fp[bit] = 1

    for i in ids:
        register(i)
    for _ in range(radius):
        new_ids = []
        for i in range(n):
            env = sorted(
                (b.order + (10 if b.aromatic else 0), ids[b.other(i)])
                for b in mol.adjacency()[i]
            )
            new_ids.append(_hash64(f"{ids[i]}|{env}"))
        ids = new_ids
        for i in ids:
            register(i)
    return fp


def tanimoto(a: np.ndarray, b: np.ndarray) -> float:
    """Tanimoto similarity of two binary fingerprints."""
    a = a.astype(bool)
    b = b.astype(bool)
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(a, b).sum() / union)


def bulk_tanimoto(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Tanimoto of ``query`` against every row of ``matrix`` (vectorized)."""
    q = query.astype(bool)
    m = matrix.astype(bool)
    inter = (m & q).sum(axis=1)
    union = (m | q).sum(axis=1)
    out = np.ones(len(m), dtype=np.float64)
    nz = union > 0
    out[nz] = inter[nz] / union[nz]
    return out


def diversity_pick(fps: np.ndarray, k: int, seed_index: int = 0) -> list[int]:
    """MaxMin diversity selection of ``k`` rows from a fingerprint matrix.

    Greedy farthest-point sampling under Tanimoto distance — the standard
    cheminformatics picker, and what "structurally most diverse compounds"
    means operationally in the paper's S3-CG selection step.
    """
    n = len(fps)
    if k <= 0:
        return []
    if k >= n:
        return list(range(n))
    chosen = [seed_index]
    min_dist = 1.0 - bulk_tanimoto(fps[seed_index], fps)
    for _ in range(k - 1):
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        min_dist = np.minimum(min_dist, 1.0 - bulk_tanimoto(fps[nxt], fps))
    return chosen
