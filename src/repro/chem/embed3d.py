"""3D conformer embedding.

Docking and the MD builder need approximate 3D coordinates for each ligand.
We use a light distance-geometry scheme: target distances from bond lengths
and topological distance on the graph, then gradient refinement of a
stress function — the role RDKit's ETKDG plays in the real pipeline, at
bead-model fidelity.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.chem.mol import Molecule

__all__ = ["embed_conformer", "BOND_LENGTH"]

#: idealized heavy-atom bond length (angstrom) in the bead model
BOND_LENGTH = 1.5


def _target_distances(mol: Molecule) -> np.ndarray:
    """Pairwise target distances from shortest-path topology.

    Bonded pairs sit at ``BOND_LENGTH``; longer paths scale sub-linearly
    (chains coil) with a floor so non-bonded atoms keep steric spacing.
    """
    g = mol.to_networkx()
    n = mol.n_atoms
    d = np.zeros((n, n))
    sp = dict(nx.all_pairs_shortest_path_length(g))
    for i in range(n):
        for j, hops in sp[i].items():
            if hops == 0:
                continue
            d[i, j] = BOND_LENGTH * hops**0.82
    return d


def embed_conformer(
    mol: Molecule,
    rng: np.random.Generator,
    iterations: int = 200,
    noise: float = 0.08,
) -> np.ndarray:
    """Return ``(n_atoms, 3)`` coordinates for one conformer.

    Different draws from ``rng`` give distinct low-stress conformers, which
    is what the docking GA perturbs and what MD replicas start from.
    """
    n = mol.n_atoms
    if n == 1:
        return np.zeros((1, 3))
    target = _target_distances(mol)
    weight = np.where(target > 0, 1.0 / np.maximum(target, 1e-6) ** 2, 0.0)

    pos = rng.normal(scale=BOND_LENGTH, size=(n, 3))
    lr = 0.2
    for _ in range(iterations):
        diff = pos[:, None, :] - pos[None, :, :]
        dist = np.sqrt((diff**2).sum(-1)) + 1e-9
        err = dist - target
        np.fill_diagonal(err, 0.0)
        grad_coef = weight * err / dist
        grad = (grad_coef[..., None] * diff).sum(axis=1)
        pos -= lr * grad
        lr *= 0.995
    pos += rng.normal(scale=noise, size=pos.shape)
    pos -= pos.mean(axis=0)
    return pos


def conformer_stress(mol: Molecule, pos: np.ndarray) -> float:
    """Normalized distance-geometry stress (0 = perfect embedding)."""
    target = _target_distances(mol)
    diff = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diff**2).sum(-1))
    mask = target > 0
    if not mask.any():
        return 0.0
    rel = (dist[mask] - target[mask]) / target[mask]
    return float(np.sqrt((rel**2).mean()))
