"""2D depiction: molecular graph → coordinates → raster image.

Replaces RDKit's ``mol2D`` drawing (§6.1.1).  The surrogate's featurization
contract is "SMILES in, 2D image out"; we honour it with a deterministic
force-directed 2D layout followed by rasterization into a multi-channel
float image.  Channels encode what a chemist reads off a depiction — heavy
atoms, heteroatoms, aromaticity, charge and bond skeleton — so a small CNN
can learn docking-score structure from them.
"""

from __future__ import annotations

import numpy as np

from repro.chem.descriptors import partial_charges
from repro.chem.mol import Molecule

__all__ = ["layout_2d", "depict", "N_CHANNELS"]

#: image channels: [carbon, N, O, halogen/S/P, aromatic, charge, bonds]
N_CHANNELS = 7


def layout_2d(mol: Molecule, iterations: int = 120) -> np.ndarray:
    """Deterministic force-directed 2D coordinates, unit bond length.

    Fruchterman–Reingold-style: spring attraction along bonds, soft
    repulsion between all atom pairs, cooled step size.  Initialized from a
    deterministic angular arrangement (no RNG) so the same molecule always
    renders identically — a requirement for cacheable featurization.
    """
    n = mol.n_atoms
    if n == 1:
        return np.zeros((1, 2))
    # deterministic init: atoms on a spiral ordered by index
    theta = np.arange(n) * 2.39996323  # golden angle
    r = 0.5 * np.sqrt(np.arange(n) + 1.0)
    pos = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)

    edges = np.array([(b.a, b.b) for b in mol.bonds], dtype=np.int64)
    step = 0.15
    for it in range(iterations):
        disp = np.zeros_like(pos)
        # pairwise repulsion ~ 1/d
        diff = pos[:, None, :] - pos[None, :, :]
        dist2 = (diff**2).sum(-1) + 1e-6
        np.fill_diagonal(dist2, np.inf)
        rep = diff / dist2[..., None] * 0.35
        disp += rep.sum(axis=1)
        # spring attraction toward unit bond length
        if len(edges):
            d = pos[edges[:, 0]] - pos[edges[:, 1]]
            length = np.linalg.norm(d, axis=1, keepdims=True) + 1e-9
            force = (length - 1.0) * d / length
            np.add.at(disp, edges[:, 0], -force)
            np.add.at(disp, edges[:, 1], force)
        norm = np.linalg.norm(disp, axis=1, keepdims=True) + 1e-9
        pos += disp / norm * np.minimum(norm, step)
        step *= 0.985
    pos -= pos.mean(axis=0)
    return pos


def _draw_line(img: np.ndarray, p0: np.ndarray, p1: np.ndarray, value: float) -> None:
    """Accumulate an anti-aliased-ish line into a single-channel image."""
    steps = max(2, int(np.linalg.norm(p1 - p0) * 2) + 1)
    ts = np.linspace(0.0, 1.0, steps)
    pts = p0[None, :] * (1 - ts[:, None]) + p1[None, :] * ts[:, None]
    size = img.shape[0]
    ij = np.round(pts).astype(int)
    ok = (ij[:, 0] >= 0) & (ij[:, 0] < size) & (ij[:, 1] >= 0) & (ij[:, 1] < size)
    img[ij[ok, 1], ij[ok, 0]] = np.maximum(img[ij[ok, 1], ij[ok, 0]], value)


def depict(mol: Molecule, size: int = 32) -> np.ndarray:
    """Rasterize a molecule into a ``(N_CHANNELS, size, size)`` float image.

    Atom channels use a small Gaussian splat; the bond channel draws the
    skeleton with intensity proportional to bond order.  Output is in
    [0, 1] and suitable as direct CNN input.
    """
    coords = layout_2d(mol)
    span = max(1.0, np.abs(coords).max() * 1.15)
    scale = (size / 2 - 2) / span
    pix = coords * scale + size / 2

    img = np.zeros((N_CHANNELS, size, size), dtype=np.float32)
    charges = partial_charges(mol)

    yy, xx = np.mgrid[0:size, 0:size]
    sigma2 = max(1.0, (scale * 0.35)) ** 2
    # all atom splats at once: (n_atoms, size, size); channel membership
    # reduces with np.maximum, which is order-independent, so the result
    # is identical to splatting atom by atom
    cx = pix[:, 0][:, None, None]
    cy = pix[:, 1][:, None, None]
    splats = np.exp(
        -((xx[None] - cx) ** 2 + (yy[None] - cy) ** 2) / (2 * sigma2)
    ).astype(np.float32)
    symbols = np.array([a.symbol for a in mol.atoms])
    channel = np.select(
        [symbols == "C", symbols == "N", symbols == "O"], [0, 1, 2], default=3
    )
    for ch in range(4):
        in_ch = channel == ch
        if in_ch.any():
            img[ch] = np.maximum.reduce(splats[in_ch])
    aromatic = np.array([a.aromatic for a in mol.atoms], dtype=bool)
    if aromatic.any():
        img[4] = np.maximum.reduce(splats[aromatic])
    # float32 coefficients: a python-float scalar would multiply in
    # float32 too (weak promotion), so this matches per-atom splatting
    coef = (0.5 + 0.5 * np.clip(charges, -1, 1)).astype(np.float32)
    img[5] = np.maximum.reduce(coef[:, None, None] * splats)

    for bond in mol.bonds:
        value = min(1.0, bond.valence() / 3.0 + 0.3)
        _draw_line(img[6], pix[bond.a], pix[bond.b], value)
    return img
