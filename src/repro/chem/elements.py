"""Element property tables for the organic subset used by the library.

The tables cover the elements that occur in drug-like small molecules and
in our synthetic SMILES grammar.  Values are approximate but internally
consistent; they feed descriptor calculations, partial-charge assignment,
and bead typing for the docking and MD substrates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Element", "ELEMENTS", "get_element"]


@dataclass(frozen=True)
class Element:
    """Static per-element properties.

    Attributes
    ----------
    symbol:
        Periodic-table symbol (e.g. ``"Cl"``).
    number:
        Atomic number.
    weight:
        Standard atomic weight (g/mol).
    valence:
        Default bonding valence used for implicit-hydrogen filling.
    electronegativity:
        Pauling electronegativity; drives partial-charge assignment.
    hydrophobicity:
        Dimensionless bead hydrophobicity in [-1, 1]; positive values are
        lipophilic.  Loosely follows atomic Crippen logP contributions.
    radius:
        Van der Waals radius (angstrom) for steric terms.
    """

    symbol: str
    number: int
    weight: float
    valence: int
    electronegativity: float
    hydrophobicity: float
    radius: float


_TABLE = [
    Element("H", 1, 1.008, 1, 2.20, 0.10, 1.10),
    Element("B", 5, 10.81, 3, 2.04, 0.00, 1.92),
    Element("C", 6, 12.011, 4, 2.55, 0.30, 1.70),
    Element("N", 7, 14.007, 3, 3.04, -0.50, 1.55),
    Element("O", 8, 15.999, 2, 3.44, -0.70, 1.52),
    Element("F", 9, 18.998, 1, 3.98, 0.20, 1.47),
    Element("P", 15, 30.974, 3, 2.19, -0.30, 1.80),
    Element("S", 16, 32.06, 2, 2.58, 0.10, 1.80),
    Element("Cl", 17, 35.45, 1, 3.16, 0.45, 1.75),
    Element("Br", 35, 79.904, 1, 2.96, 0.55, 1.85),
    Element("I", 53, 126.904, 1, 2.66, 0.65, 1.98),
]

ELEMENTS: dict[str, Element] = {e.symbol: e for e in _TABLE}

#: elements allowed to be aromatic in our SMILES subset
AROMATIC_SYMBOLS = frozenset({"C", "N", "O", "S"})


def get_element(symbol: str) -> Element:
    """Look up an element; raises ``KeyError`` with a helpful message."""
    try:
        return ELEMENTS[symbol]
    except KeyError:
        raise KeyError(
            f"unsupported element {symbol!r}; supported: {sorted(ELEMENTS)}"
        ) from None
