"""repro — a full reproduction of IMPECCABLE (Al Saadi et al., ICPP 2021).

The package mirrors the paper's architecture:

* :mod:`repro.chem` — molecules, SMILES, libraries (substrate for everything)
* :mod:`repro.docking` — S1: Lamarckian-GA docking engine (AutoDock-GPU role)
* :mod:`repro.nn` / :mod:`repro.surrogate` — ML1: docking-score surrogate + RES
* :mod:`repro.md` — bead-model molecular dynamics engine (OpenMM/NAMD role)
* :mod:`repro.esmacs` — S3: ensemble binding-free-energy protocol (CG and FG)
* :mod:`repro.ddmd` — S2: DeepDriveMD 3D-AAE adaptive sampling
* :mod:`repro.ties` — TIES alchemical lead optimization (Table 2's TI row)
* :mod:`repro.rct` — EnTK/RADICAL-Pilot/RAPTOR workflow infrastructure
* :mod:`repro.telemetry` — unified tracing/metrics across the whole stack
* :mod:`repro.core` — the integrated IMPECCABLE campaign and its metrics
"""

__version__ = "1.0.0"
