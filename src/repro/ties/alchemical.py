"""Alchemical hybrid systems for thermodynamic integration.

TIES transforms ligand A into ligand B along a coupling parameter λ.
We use a single-topology-style interpolation over the bead model: the
hybrid ligand has ``max(nA, nB)`` beads whose charges, hydrophobicities
and radii interpolate between the endpoints; beads present in only one
endpoint "grow in"/"vanish" by interpolating against a ghost parameter
set (zero charge/hydrophobicity, minimal radius), which the soft-core
short-range cap in the force field keeps numerically stable — the role
soft-core potentials play in production TI codes.

Atom mapping uses a greedy common-scaffold heuristic: beads are matched
in canonical-rank order, which aligns the shared scaffold of congeneric
pairs (the setting TIES is used in: lead *optimization* over small
modifications).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.descriptors import partial_charges
from repro.chem.mol import Molecule
from repro.chem.smiles import canonical_ranks

__all__ = ["HybridLigand", "build_hybrid", "GHOST_RADIUS"]

#: radius of a fully decoupled (ghost) bead — small but nonzero so the
#: LJ term stays finite under the force field's min-distance cap
GHOST_RADIUS = 0.6


@dataclass
class HybridLigand:
    """Endpoint parameter sets for the alchemical ligand.

    All arrays have length ``n_beads = max(nA, nB)``; parameters at a
    given λ are ``(1−λ)·A + λ·B``.
    """

    charges_a: np.ndarray
    charges_b: np.ndarray
    hydro_a: np.ndarray
    hydro_b: np.ndarray
    radii_a: np.ndarray
    radii_b: np.ndarray
    bonds: np.ndarray  # (nb, 2) union of both endpoint bond sets
    bond_lengths: np.ndarray
    n_a: int
    n_b: int

    @property
    def n_beads(self) -> int:
        """Bead count of the hybrid ligand."""
        return len(self.charges_a)

    def parameters_at(self, lam: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(charges, hydro, radii) of the hybrid at coupling ``lam``."""
        if not 0.0 <= lam <= 1.0:
            raise ValueError(f"lambda must be in [0, 1], got {lam}")
        charges = (1 - lam) * self.charges_a + lam * self.charges_b
        hydro = (1 - lam) * self.hydro_a + lam * self.hydro_b
        radii = (1 - lam) * self.radii_a + lam * self.radii_b
        return charges, hydro, radii


def _endpoint_params(mol: Molecule) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    charges = partial_charges(mol)
    hydro = np.array([a.element.hydrophobicity for a in mol.atoms])
    radii = np.array([a.element.radius for a in mol.atoms])
    return charges, hydro, radii


def build_hybrid(mol_a: Molecule, mol_b: Molecule) -> HybridLigand:
    """Construct the hybrid ligand for the A→B transformation."""
    n_a, n_b = mol_a.n_atoms, mol_b.n_atoms
    n = max(n_a, n_b)

    # map beads by canonical rank so shared scaffolds align
    perm_a = np.argsort(canonical_ranks(mol_a), kind="stable")
    perm_b = np.argsort(canonical_ranks(mol_b), kind="stable")

    qa, ha, ra = _endpoint_params(mol_a)
    qb, hb, rb = _endpoint_params(mol_b)

    charges_a = np.zeros(n)
    charges_b = np.zeros(n)
    hydro_a = np.zeros(n)
    hydro_b = np.zeros(n)
    radii_a = np.full(n, GHOST_RADIUS)
    radii_b = np.full(n, GHOST_RADIUS)

    charges_a[:n_a] = qa[perm_a]
    hydro_a[:n_a] = ha[perm_a]
    radii_a[:n_a] = ra[perm_a]
    charges_b[:n_b] = qb[perm_b]
    hydro_b[:n_b] = hb[perm_b]
    radii_b[:n_b] = rb[perm_b]

    # bonds: union over both endpoints in hybrid indexing; rest lengths
    # from whichever endpoint defines the bond (A wins ties)
    inv_a = {int(p): i for i, p in enumerate(perm_a)}
    inv_b = {int(p): i for i, p in enumerate(perm_b)}
    bond_map: dict[frozenset[int], float] = {}
    from repro.chem.embed3d import BOND_LENGTH

    for bond in mol_b.bonds:
        key = frozenset((inv_b[bond.a], inv_b[bond.b]))
        bond_map[key] = BOND_LENGTH
    for bond in mol_a.bonds:
        key = frozenset((inv_a[bond.a], inv_a[bond.b]))
        bond_map[key] = BOND_LENGTH
    pairs = sorted(tuple(sorted(k)) for k in bond_map)
    bonds = np.array(pairs, dtype=int) if pairs else np.zeros((0, 2), dtype=int)
    lengths = np.array([bond_map[frozenset(p)] for p in pairs])

    # guard against disconnected hybrid graphs (possible when endpoints
    # differ wildly): connect stray beads to bead 0 with weak bonds
    if len(bonds):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(map(tuple, bonds))
        comps = list(nx.connected_components(g))
        if len(comps) > 1:
            extra = []
            anchor = min(comps[0])
            for comp in comps[1:]:
                extra.append((anchor, min(comp)))
            bonds = np.concatenate([bonds, np.array(extra, dtype=int)])
            lengths = np.concatenate([lengths, np.full(len(extra), 2.5)])

    return HybridLigand(
        charges_a=charges_a,
        charges_b=charges_b,
        hydro_a=hydro_a,
        hydro_b=hydro_b,
        radii_a=radii_a,
        radii_b=radii_b,
        bonds=bonds,
        bond_lengths=lengths,
        n_a=n_a,
        n_b=n_b,
    )
