"""TIES — thermodynamic integration for lead optimization.

The most accurate (and costliest) rung of the paper's method ladder
(Table 2's "BFE-TI" row): alchemical relative binding free energies over
λ-window replica ensembles.
"""

from repro.ties.alchemical import GHOST_RADIUS, HybridLigand, build_hybrid
from repro.ties.protocol import TiesConfig, TiesLeg, TiesResult, TiesRunner

__all__ = [
    "GHOST_RADIUS",
    "HybridLigand",
    "TiesConfig",
    "TiesLeg",
    "TiesResult",
    "TiesRunner",
    "build_hybrid",
]
