"""TIES: Thermodynamic Integration with Enhanced Sampling.

The lead-optimization method of the paper's Table 2 ("BFE-TI, not
integrated": 64 nodes, ~640 node-hours per ligand — two orders of
magnitude beyond ESMACS-FG).  TIES computes the *relative* binding free
energy of transforming ligand A into ligand B:

``ΔΔG(A→B) = ΔG_transform(complex) − ΔG_transform(solvent)``

where each leg is a thermodynamic integration over λ-windows, each
window sampled by an *ensemble* of replicas (the "enhanced sampling"
part), and ``⟨dU/dλ⟩`` integrated by the trapezoid rule.  dU/dλ is
evaluated by central differences of the hybrid-parameter energy on the
sampled configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.mol import Molecule
from repro.docking.receptor import Receptor
from repro.md.builder import build_lpc
from repro.md.forcefield import ForceField
from repro.md.integrator import Langevin
from repro.md.minimize import minimize
from repro.md.system import MDSystem, Topology
from repro.md.trajectory import simulate
from repro.ties.alchemical import HybridLigand, build_hybrid
from repro.util.config import FrozenConfig, validate_positive
from repro.util.rng import RngFactory

__all__ = ["TiesConfig", "TiesLeg", "TiesResult", "TiesRunner"]


@dataclass(frozen=True)
class TiesConfig(FrozenConfig):
    """Protocol shape (paper-style: 13 windows × 5 replicas at scale)."""

    n_windows: int = 5
    replicas_per_window: int = 3
    equilibration_steps: int = 20
    production_steps: int = 60
    record_every: int = 4
    n_residues: int = 70
    temperature: float = 300.0
    timestep_ps: float = 0.01
    minimize_iterations: int = 20
    dlambda: float = 0.02  # central-difference step for dU/dλ

    def __post_init__(self) -> None:
        validate_positive("n_windows", self.n_windows)
        validate_positive("replicas_per_window", self.replicas_per_window)
        validate_positive("production_steps", self.production_steps)
        validate_positive("dlambda", self.dlambda)
        if self.n_windows < 2:
            raise ValueError("need at least 2 lambda windows")

    def lambdas(self) -> np.ndarray:
        """The λ-window grid in [0, 1]."""
        return np.linspace(0.0, 1.0, self.n_windows)


@dataclass
class TiesLeg:
    """One TI leg (complex or solvent)."""

    lambdas: np.ndarray
    dudl_mean: np.ndarray  # (windows,) ensemble ⟨dU/dλ⟩
    dudl_sem: np.ndarray  # (windows,) SEM over replicas
    delta_g: float  # trapezoid integral
    sem: float


@dataclass
class TiesResult:
    """Relative binding free energy of A→B."""

    compound_a: str
    compound_b: str
    complex_leg: TiesLeg
    solvent_leg: TiesLeg

    @property
    def ddg(self) -> float:
        """ΔΔG(A→B) in kcal/mol; negative = B binds tighter."""
        return self.complex_leg.delta_g - self.solvent_leg.delta_g

    @property
    def sem(self) -> float:
        """Combined standard error of the two legs."""
        return float(np.hypot(self.complex_leg.sem, self.solvent_leg.sem))


def _with_ligand_params(
    topology: Topology, hybrid: HybridLigand, lam: float
) -> Topology:
    """Copy of ``topology`` with the ligand beads set to λ parameters."""
    charges = topology.charges.copy()
    hydro = topology.hydro.copy()
    radii = topology.radii.copy()
    q, h, r = hybrid.parameters_at(lam)
    lig = topology.ligand_atoms
    charges[lig] = q
    hydro[lig] = h
    radii[lig] = r
    return Topology(
        masses=topology.masses,
        charges=charges,
        hydro=hydro,
        radii=radii,
        bonds=topology.bonds,
        bond_lengths=topology.bond_lengths,
        bond_k=topology.bond_k,
        protein_atoms=topology.protein_atoms,
        ligand_atoms=topology.ligand_atoms,
    )


class TiesRunner:
    """Run TIES transformations against one receptor."""

    def __init__(
        self,
        receptor: Receptor,
        config: TiesConfig | None = None,
        forcefield: ForceField | None = None,
        seed: int = 0,
    ) -> None:
        self.receptor = receptor
        self.config = config or TiesConfig()
        self.forcefield = forcefield or ForceField()
        self.factory = RngFactory(seed, prefix=f"ties/{receptor.target}")

    # ----------------------------------------------------------- plumbing
    def _hybrid_base_system(
        self, mol_a: Molecule, hybrid: HybridLigand, ligand_coords: np.ndarray,
        with_protein: bool,
    ) -> MDSystem:
        """Build the λ=0 system with the hybrid bead count.

        The complex leg reuses the LPC builder (protein + pocket); the
        solvent leg strips the protein and keeps the confined droplet.
        """
        cfg = self.config
        n = hybrid.n_beads
        # pad/truncate starting coordinates to the hybrid bead count
        coords = np.zeros((n, 3))
        m = min(len(ligand_coords), n)
        coords[:m] = ligand_coords[:m]
        if n > m:
            rng = self.factory.stream("ghost-placement")
            coords[m:] = coords[:1] + rng.normal(scale=1.0, size=(n - m, 3))

        q0, h0, r0 = hybrid.parameters_at(0.0)
        if with_protein:
            # build an LPC around a stand-in molecule, then swap the
            # ligand block for the hybrid parameterization
            base = build_lpc(
                self.receptor, mol_a, ligand_coords, seed=self.factory.seed,
                n_residues=cfg.n_residues,
            )
            topo = base.topology
            n_p = len(topo.protein_atoms)
            masses = np.concatenate([topo.masses[:n_p], np.full(n, 14.0)])
            charges = np.concatenate([topo.charges[:n_p], q0])
            hydro = np.concatenate([topo.hydro[:n_p], h0])
            radii = np.concatenate([topo.radii[:n_p], r0])
            prot_bond_mask = (topo.bonds < n_p).all(axis=1)
            prot_bonds = topo.bonds[prot_bond_mask]
            prot_lengths = topo.bond_lengths[prot_bond_mask]
            prot_k = topo.bond_k[prot_bond_mask]
            lig_bonds = hybrid.bonds + n_p
            bonds = np.concatenate([prot_bonds, lig_bonds]).astype(int)
            lengths = np.concatenate([prot_lengths, hybrid.bond_lengths])
            ks = np.concatenate([prot_k, np.full(len(lig_bonds), 20.0)])
            topology = Topology(
                masses=masses, charges=charges, hydro=hydro, radii=radii,
                bonds=bonds, bond_lengths=lengths, bond_k=ks,
                protein_atoms=np.arange(n_p),
                ligand_atoms=np.arange(n_p, n_p + n),
            )
            positions = np.concatenate([base.positions[:n_p], coords])
        else:
            topology = Topology(
                masses=np.full(n, 14.0), charges=q0, hydro=h0, radii=r0,
                bonds=hybrid.bonds.astype(int),
                bond_lengths=hybrid.bond_lengths,
                bond_k=np.full(len(hybrid.bonds), 20.0),
                protein_atoms=np.zeros(0, dtype=int),
                ligand_atoms=np.arange(n),
            )
            positions = coords
        return MDSystem(topology=topology, positions=positions)

    def _window_dudl(
        self,
        base: MDSystem,
        start_positions: np.ndarray,
        hybrid: HybridLigand,
        lam: float,
        leg: str,
        pair_id: str,
    ) -> tuple[float, float, np.ndarray]:
        """⟨dU/dλ⟩ ± SEM for one window, ensemble over replicas.

        Returns the first replica's final positions so windows can
        cascade: starting each λ from the previous window's relaxed
        structure avoids the clash spikes a cold restart produces when
        interpolated radii meet a tight pocket (the role λ-window
        equilibration cascades play in production TI).
        """
        cfg = self.config
        topo_lam = _with_ligand_params(base.topology, hybrid, lam)
        lam_lo = max(0.0, lam - cfg.dlambda)
        lam_hi = min(1.0, lam + cfg.dlambda)
        topo_lo = _with_ligand_params(base.topology, hybrid, lam_lo)
        topo_hi = _with_ligand_params(base.topology, hybrid, lam_hi)
        denom = lam_hi - lam_lo

        integ = Langevin(timestep=cfg.timestep_ps, temperature=cfg.temperature)
        samples = []
        carry = start_positions
        for rep in range(cfg.replicas_per_window):
            rng = self.factory.stream(f"{pair_id}/{leg}/l{lam:.3f}/r{rep}")
            system = MDSystem(
                topology=topo_lam,
                positions=start_positions.copy(),
                reference_positions=base.reference_positions.copy(),
            )
            minimize(system, self.forcefield, max_iterations=cfg.minimize_iterations)
            system.initialize_velocities(cfg.temperature, rng)
            integ.run(system, self.forcefield, cfg.equilibration_steps, rng)
            traj = simulate(
                system, self.forcefield, integ, cfg.production_steps, rng,
                record_every=cfg.record_every,
            )
            dudls = []
            for frame in traj.frames:
                _, e_hi = self.forcefield.compute(topo_hi, frame)
                _, e_lo = self.forcefield.compute(topo_lo, frame)
                dudls.append((e_hi.total - e_lo.total) / denom)
            samples.append(float(np.mean(dudls)))
            if rep == 0:
                carry = system.positions.copy()
        samples = np.array(samples)
        sem = (
            float(samples.std(ddof=1) / np.sqrt(len(samples)))
            if len(samples) > 1
            else 0.0
        )
        return float(samples.mean()), sem, carry

    def _leg(
        self,
        mol_a: Molecule,
        hybrid: HybridLigand,
        ligand_coords: np.ndarray,
        with_protein: bool,
        pair_id: str,
    ) -> TiesLeg:
        base = self._hybrid_base_system(mol_a, hybrid, ligand_coords, with_protein)
        lambdas = self.config.lambdas()
        means = np.empty(len(lambdas))
        sems = np.empty(len(lambdas))
        leg_name = "complex" if with_protein else "solvent"
        positions = base.positions.copy()
        for i, lam in enumerate(lambdas):
            means[i], sems[i], positions = self._window_dudl(
                base, positions, hybrid, float(lam), leg_name, pair_id
            )
        dg = float(np.trapezoid(means, lambdas))
        # trapezoid error propagation with end-point half weights
        w = np.gradient(lambdas)
        sem = float(np.sqrt(((w * sems) ** 2).sum()))
        return TiesLeg(lambdas=lambdas, dudl_mean=means, dudl_sem=sems, delta_g=dg, sem=sem)

    # ------------------------------------------------------------- public
    def run(
        self,
        mol_a: Molecule,
        mol_b: Molecule,
        ligand_coords: np.ndarray,
        compound_a: str = "A",
        compound_b: str = "B",
    ) -> TiesResult:
        """Compute ΔΔG(A→B) starting from A's (docked) coordinates."""
        if ligand_coords.shape != (mol_a.n_atoms, 3):
            raise ValueError("ligand_coords must match mol_a's atom count")
        hybrid = build_hybrid(mol_a, mol_b)
        pair_id = f"{compound_a}->{compound_b}"
        complex_leg = self._leg(mol_a, hybrid, ligand_coords, True, pair_id)
        solvent_leg = self._leg(mol_a, hybrid, ligand_coords, False, pair_id)
        return TiesResult(
            compound_a=compound_a,
            compound_b=compound_b,
            complex_leg=complex_leg,
            solvent_leg=solvent_leg,
        )
