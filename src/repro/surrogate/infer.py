"""ML1 inference engine: streaming, compiled, rank-distributed scoring.

§6.1.1's deployment path: the library arrives as gzip-pickle shards,
shards are distributed round-robin across ranks (one per GPU), each rank
streams its shard set through prefetch threads into the FP16-compiled
network, and rank 0 gathers (id, SMILES, score) triples into a single
ranked table that feeds S1.  This module reproduces that flow on one
machine: "ranks" are loop iterations (or caller-managed workers), the
compiled model is the TensorRT analogue, and the output is the same
ranked table.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.chem.depict import N_CHANNELS
from repro.nn.dataloader import PrefetchLoader, ShardReader, partition_shards
from repro.nn.inference import compile_model
from repro.surrogate.featurize import featurize_batch, featurize_smiles
from repro.surrogate.train import TrainedSurrogate
from repro.telemetry import NULL_TRACER
from repro.util.checkpoint import (
    CheckpointManifest,
    load_artifact,
    save_artifact,
    shard_fingerprint,
)
from repro.util.shardio import read_shard

__all__ = ["InferenceEngine", "ScoredCompound"]


@dataclass(frozen=True)
class ScoredCompound:
    """One inference output row."""

    compound_id: str
    smiles: str
    score: float  # normalized [0, 1], higher = predicted better binder


class InferenceEngine:
    """Batch scoring of compound shards with a compiled surrogate."""

    def __init__(
        self,
        surrogate: TrainedSurrogate,
        precision: str = "fp16",
        batch_size: int = 64,
        engine: str = "graph",
        tracer=None,
    ) -> None:
        self.surrogate = surrogate
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.compiled = compile_model(
            surrogate.model, precision=precision, engine=engine, tracer=tracer
        )
        self.batch_size = batch_size
        self.engine = engine
        self.records_scored = 0
        self.shards_resumed = 0
        # persistent feature buffer: every batch — including the padded
        # final one — runs at exactly ``batch_size``, so the graph engine
        # binds a single arena plan and no per-batch stacking allocates
        self._feat_buf = np.zeros(
            (batch_size, N_CHANNELS, surrogate.image_size, surrogate.image_size),
            dtype=np.float32,
        )

    def _score_batch(self, feats_filled: int) -> np.ndarray:
        """Run the (possibly zero-padded) persistent buffer; drop padding.

        Padding to a fixed batch size keeps one compiled plan hot *and*
        keeps scores reproducible regardless of how records split into
        batches: BLAS accumulation depends on batch size, so a variable
        final batch would score the same compound differently depending
        on its shard's length.
        """
        if feats_filled < self.batch_size:
            self._feat_buf[feats_filled:] = 0.0
        return self.compiled(self._feat_buf).reshape(-1)[:feats_filled]

    # ------------------------------------------------------------- shards
    def _score_one_shard(self, path: Path) -> list[ScoredCompound]:
        """Stream one shard file through prefetch + padded batches."""
        scored: list[ScoredCompound] = []
        loader = PrefetchLoader(
            ShardReader([path]),
            batch_size=self.batch_size,
            transform=lambda rec: (
                rec[0],
                rec[1],
                featurize_smiles(rec[1], size=self.surrogate.image_size),
            ),
        )
        for batch in loader:
            ids, smiles, feats = zip(*batch)
            np.stack(feats, out=self._feat_buf[: len(feats)])
            preds = self._score_batch(len(feats))
            scored.extend(
                ScoredCompound(i, s, float(p))
                for i, s, p in zip(ids, smiles, preds)
            )
        return scored

    def iter_score_shards(
        self,
        paths: Sequence[Path | str],
        checkpoint: CheckpointManifest | None = None,
        artifact_dir: Path | str | None = None,
    ) -> Iterator[tuple[str, list[ScoredCompound]]]:
        """Score shards one at a time, yielding ``(shard_id, scores)``.

        The bounded-memory ML1 path: only one shard's records and one
        padded feature batch are ever resident.  With ``checkpoint``
        (and ``artifact_dir`` for the per-shard score files), completed
        shards are durably recorded as they finish and *reloaded instead
        of rescored* on a resumed run; reloaded scores are bit-identical
        (exact-float JSONL artifacts).  A resumed shard whose content
        fingerprint no longer matches the manifest raises — a stale
        checkpoint directory cannot silently corrupt a screen.

        Because every batch is zero-padded to ``batch_size``
        (:meth:`_score_batch`), per-shard scoring is split-invariant:
        scores are bit-identical to scoring the whole shard set in one
        stream, whatever the shard boundaries.
        """
        if checkpoint is not None and artifact_dir is None:
            raise ValueError("checkpointed scoring needs an artifact_dir")
        for path in paths:
            path = Path(path)
            shard_id = path.name
            if checkpoint is not None and checkpoint.is_done(shard_id):
                rows = load_artifact(Path(artifact_dir) / f"{shard_id}.scores.jsonl.gz")
                scored = [
                    ScoredCompound(r["id"], r["smiles"], r["score"]) for r in rows
                ]
                recorded = checkpoint.payload(shard_id).get("fingerprint")
                actual = shard_fingerprint(read_shard(path))
                if recorded is not None and recorded != actual:
                    raise RuntimeError(
                        f"checkpoint fingerprint mismatch for shard {shard_id}: "
                        "stale checkpoint directory?"
                    )
                self.shards_resumed += 1
                self.tracer.metrics.counter("stream.shards_resumed").inc()
                with self.tracer.span(
                    f"shard:{shard_id}", category="stream.shard",
                    shard=shard_id, n_records=len(scored), resumed=True,
                ):
                    pass
                yield shard_id, scored
                continue
            with self.tracer.span(
                f"shard:{shard_id}", category="stream.shard", shard=shard_id
            ) as span:
                scored = self._score_one_shard(path)
                span.set_attr("n_records", len(scored))
                span.set_attr("resumed", False)
            self.records_scored += len(scored)
            self.tracer.metrics.counter("stream.shards_scored").inc()
            self.tracer.metrics.counter("stream.records_scored").inc(len(scored))
            if checkpoint is not None:
                save_artifact(
                    Path(artifact_dir) / f"{shard_id}.scores.jsonl.gz",
                    [
                        {"id": s.compound_id, "smiles": s.smiles, "score": s.score}
                        for s in scored
                    ],
                )
                with self.tracer.span(
                    f"checkpoint:{shard_id}", category="stream.checkpoint",
                    shard=shard_id,
                ):
                    checkpoint.mark_done(
                        shard_id,
                        n_records=len(scored),
                        fingerprint=shard_fingerprint(
                            (s.compound_id, s.smiles) for s in scored
                        ),
                    )
            yield shard_id, scored

    def score_shards(
        self,
        paths: Sequence[Path | str],
        world: int = 1,
        checkpoint: CheckpointManifest | None = None,
        artifact_dir: Path | str | None = None,
    ) -> list[ScoredCompound]:
        """Score every compound in a shard set.

        ``world`` splits the shard list into rank-partitions that are
        processed independently and gathered at the end — the single-node
        equivalent of the paper's MPI distribution; results are identical
        for any ``world`` (fixed-size padded batches make scores
        split-invariant).  ``checkpoint``/``artifact_dir`` enable
        per-shard resume via :meth:`iter_score_shards`.
        """
        gathered: list[ScoredCompound] = []
        for rank in range(world):
            mine = partition_shards(paths, rank, world)
            for _shard_id, scored in self.iter_score_shards(
                mine, checkpoint=checkpoint, artifact_dir=artifact_dir
            ):
                gathered.extend(scored)
        return gathered

    # -------------------------------------------------------------- lists
    def score_smiles(
        self, smiles_list: Sequence[str], ids: Sequence[str] | None = None
    ) -> list[ScoredCompound]:
        """Score an in-memory list of SMILES."""
        ids = list(ids) if ids is not None else [f"CPD{i:07d}" for i in range(len(smiles_list))]
        if len(ids) != len(smiles_list):
            raise ValueError("ids and smiles_list must be the same length")
        out: list[ScoredCompound] = []
        chunks = [
            (list(smiles_list[s : s + self.batch_size]), ids[s : s + self.batch_size])
            for s in range(0, len(smiles_list), self.batch_size)
        ]
        for chunk, chunk_ids in chunks:
            featurize_batch(
                chunk,
                size=self.surrogate.image_size,
                out=self._feat_buf[: len(chunk)],
            )
            preds = self._score_batch(len(chunk))
            out.extend(
                ScoredCompound(i, s, float(p))
                for i, s, p in zip(chunk_ids, chunk, preds)
            )
        self.records_scored += len(out)
        return out

    # ---------------------------------------------------------------- CSV
    @staticmethod
    def write_csv(scored: Sequence[ScoredCompound], path: Path | str) -> Path:
        """Write (id, SMILES, score) rows — §6.1.1's gathered CSV that is
        "forwarded to step S1"."""
        import csv

        path = Path(path)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["compound_id", "smiles", "score"])
            for row in scored:
                writer.writerow([row.compound_id, row.smiles, f"{row.score:.6f}"])
        return path

    @staticmethod
    def read_csv(path: Path | str) -> list[ScoredCompound]:
        """Read a CSV written by :meth:`write_csv`."""
        import csv

        out = []
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                out.append(
                    ScoredCompound(
                        row["compound_id"], row["smiles"], float(row["score"])
                    )
                )
        return out

    @staticmethod
    def top_fraction(
        scored: list[ScoredCompound], fraction: float
    ) -> list[ScoredCompound]:
        """Best ``fraction`` by predicted score — the ML1→S1 filter."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        ranked = sorted(scored, key=lambda r: r.score, reverse=True)
        k = max(1, int(round(fraction * len(ranked))))
        return ranked[:k]
