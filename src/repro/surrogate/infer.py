"""ML1 inference engine: streaming, compiled, rank-distributed scoring.

§6.1.1's deployment path: the library arrives as gzip-pickle shards,
shards are distributed round-robin across ranks (one per GPU), each rank
streams its shard set through prefetch threads into the FP16-compiled
network, and rank 0 gathers (id, SMILES, score) triples into a single
ranked table that feeds S1.  This module reproduces that flow on one
machine: "ranks" are loop iterations (or caller-managed workers), the
compiled model is the TensorRT analogue, and the output is the same
ranked table.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.chem.depict import N_CHANNELS
from repro.nn.dataloader import PrefetchLoader, ShardReader, partition_shards
from repro.nn.inference import compile_model
from repro.surrogate.featurize import featurize_batch, featurize_smiles
from repro.surrogate.train import TrainedSurrogate

__all__ = ["InferenceEngine", "ScoredCompound"]


@dataclass(frozen=True)
class ScoredCompound:
    """One inference output row."""

    compound_id: str
    smiles: str
    score: float  # normalized [0, 1], higher = predicted better binder


class InferenceEngine:
    """Batch scoring of compound shards with a compiled surrogate."""

    def __init__(
        self,
        surrogate: TrainedSurrogate,
        precision: str = "fp16",
        batch_size: int = 64,
        engine: str = "graph",
        tracer=None,
    ) -> None:
        self.surrogate = surrogate
        self.compiled = compile_model(
            surrogate.model, precision=precision, engine=engine, tracer=tracer
        )
        self.batch_size = batch_size
        self.engine = engine
        self.records_scored = 0
        # persistent feature buffer: every batch — including the padded
        # final one — runs at exactly ``batch_size``, so the graph engine
        # binds a single arena plan and no per-batch stacking allocates
        self._feat_buf = np.zeros(
            (batch_size, N_CHANNELS, surrogate.image_size, surrogate.image_size),
            dtype=np.float32,
        )

    def _score_batch(self, feats_filled: int) -> np.ndarray:
        """Run the (possibly zero-padded) persistent buffer; drop padding.

        Padding to a fixed batch size keeps one compiled plan hot *and*
        keeps scores reproducible regardless of how records split into
        batches: BLAS accumulation depends on batch size, so a variable
        final batch would score the same compound differently depending
        on its shard's length.
        """
        if feats_filled < self.batch_size:
            self._feat_buf[feats_filled:] = 0.0
        return self.compiled(self._feat_buf).reshape(-1)[:feats_filled]

    # ------------------------------------------------------------- shards
    def score_shards(
        self, paths: Sequence[Path | str], world: int = 1
    ) -> list[ScoredCompound]:
        """Score every compound in a shard set.

        ``world`` splits the shard list into rank-partitions that are
        processed independently and gathered at the end — the single-node
        equivalent of the paper's MPI distribution; results are identical
        for any ``world``.
        """
        gathered: list[ScoredCompound] = []
        for rank in range(world):
            mine = partition_shards(paths, rank, world)
            reader = ShardReader(mine)
            loader = PrefetchLoader(
                reader,
                batch_size=self.batch_size,
                transform=lambda rec: (
                    rec[0],
                    rec[1],
                    featurize_smiles(rec[1], size=self.surrogate.image_size),
                ),
            )
            for batch in loader:
                ids, smiles, feats = zip(*batch)
                np.stack(feats, out=self._feat_buf[: len(feats)])
                preds = self._score_batch(len(feats))
                gathered.extend(
                    ScoredCompound(i, s, float(p))
                    for i, s, p in zip(ids, smiles, preds)
                )
        self.records_scored += len(gathered)
        return gathered

    # -------------------------------------------------------------- lists
    def score_smiles(
        self, smiles_list: Sequence[str], ids: Sequence[str] | None = None
    ) -> list[ScoredCompound]:
        """Score an in-memory list of SMILES."""
        ids = list(ids) if ids is not None else [f"CPD{i:07d}" for i in range(len(smiles_list))]
        if len(ids) != len(smiles_list):
            raise ValueError("ids and smiles_list must be the same length")
        out: list[ScoredCompound] = []
        chunks = [
            (list(smiles_list[s : s + self.batch_size]), ids[s : s + self.batch_size])
            for s in range(0, len(smiles_list), self.batch_size)
        ]
        for chunk, chunk_ids in chunks:
            featurize_batch(
                chunk,
                size=self.surrogate.image_size,
                out=self._feat_buf[: len(chunk)],
            )
            preds = self._score_batch(len(chunk))
            out.extend(
                ScoredCompound(i, s, float(p))
                for i, s, p in zip(chunk_ids, chunk, preds)
            )
        self.records_scored += len(out)
        return out

    # ---------------------------------------------------------------- CSV
    @staticmethod
    def write_csv(scored: Sequence[ScoredCompound], path: Path | str) -> Path:
        """Write (id, SMILES, score) rows — §6.1.1's gathered CSV that is
        "forwarded to step S1"."""
        import csv

        path = Path(path)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["compound_id", "smiles", "score"])
            for row in scored:
                writer.writerow([row.compound_id, row.smiles, f"{row.score:.6f}"])
        return path

    @staticmethod
    def read_csv(path: Path | str) -> list[ScoredCompound]:
        """Read a CSV written by :meth:`write_csv`."""
        import csv

        out = []
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                out.append(
                    ScoredCompound(
                        row["compound_id"], row["smiles"], float(row["score"])
                    )
                )
        return out

    @staticmethod
    def top_fraction(
        scored: list[ScoredCompound], fraction: float
    ) -> list[ScoredCompound]:
        """Best ``fraction`` by predicted score — the ML1→S1 filter."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        ranked = sorted(scored, key=lambda r: r.score, reverse=True)
        k = max(1, int(round(fraction * len(ranked))))
        return ranked[:k]
