"""Regression Enrichment Surfaces (RES) — Fig 4's analysis.

RES (Clyde et al. 2020) asks: *if I can only pass δ compounds downstream,
what fraction of the true top-y compounds does the surrogate's predicted
top-δ capture?*  The surface sweeps both the budget fraction x = δ/u and
the true-top threshold y over log-spaced grids.  The paper reads two
operating points off this plot for PLPro: at δ = 10⁻³·u the model covers
~50 % of the true top 10⁻⁴ and ~40 % of the true top 10⁻³.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["res_surface", "RESResult", "top_fraction_recall"]


def top_fraction_recall(
    true_scores: np.ndarray,
    pred_scores: np.ndarray,
    budget_fraction: float,
    top_fraction: float,
    lower_is_better: bool = True,
) -> float:
    """Recall of the true top-``top_fraction`` inside the predicted
    top-``budget_fraction``.

    With ``lower_is_better`` (docking convention) the "top" of either
    ranking is its smallest values.
    """
    true_scores = np.asarray(true_scores, dtype=np.float64)
    pred_scores = np.asarray(pred_scores, dtype=np.float64)
    if true_scores.shape != pred_scores.shape:
        raise ValueError("score arrays must have the same shape")
    n = len(true_scores)
    if n == 0:
        raise ValueError("empty score arrays")
    if not (0 < budget_fraction <= 1 and 0 < top_fraction <= 1):
        raise ValueError("fractions must be in (0, 1]")
    sign = 1.0 if lower_is_better else -1.0
    k_budget = max(1, int(round(budget_fraction * n)))
    k_top = max(1, int(round(top_fraction * n)))
    pred_top = set(np.argsort(sign * pred_scores, kind="stable")[:k_budget].tolist())
    true_top = np.argsort(sign * true_scores, kind="stable")[:k_top]
    hits = sum(1 for i in true_top if i in pred_top)
    return hits / k_top


@dataclass
class RESResult:
    """A computed regression enrichment surface."""

    budget_fractions: np.ndarray  # x-axis (δ/u), log spaced
    top_fractions: np.ndarray  # y-axis (true top threshold), log spaced
    surface: np.ndarray  # (len(top), len(budget)) recall values

    def recall_at(self, budget_fraction: float, top_fraction: float) -> float:
        """Surface value at the grid point nearest to the query."""
        i = int(np.argmin(np.abs(np.log10(self.top_fractions) - np.log10(top_fraction))))
        j = int(
            np.argmin(np.abs(np.log10(self.budget_fractions) - np.log10(budget_fraction)))
        )
        return float(self.surface[i, j])

    def ascii_plot(self, width: int = 60) -> str:
        """Terminal rendering of the surface (columns = budget, rows = top)."""
        lines = ["RES surface (rows: true-top fraction, cols: budget fraction)"]
        header = "          " + " ".join(
            f"{b:7.1e}" for b in self.budget_fractions
        )
        lines.append(header[: max(width, len(header))])
        for tf, surface_row in zip(self.top_fractions, self.surface):
            row = " ".join(f"{v:7.2f}" for v in surface_row)
            lines.append(f"{tf:9.1e} {row}")
        return "\n".join(lines)


def res_surface(
    true_scores: np.ndarray,
    pred_scores: np.ndarray,
    n_budget: int = 6,
    n_top: int = 5,
    min_fraction: float | None = None,
    lower_is_better: bool = True,
) -> RESResult:
    """Compute the full RES grid.

    Axes are log-spaced from ``min_fraction`` (default: the smallest
    fraction that still contains one compound) to 1.
    """
    true_scores = np.asarray(true_scores, dtype=np.float64)
    n = len(true_scores)
    if n < 10:
        raise ValueError("RES needs at least 10 compounds")
    lo = min_fraction if min_fraction is not None else max(1.0 / n, 1e-6)
    budgets = np.logspace(np.log10(lo), 0.0, n_budget)
    tops = np.logspace(np.log10(lo), 0.0, n_top)
    surface = np.array(
        [
            [
                top_fraction_recall(
                    true_scores, pred_scores, bf, tf, lower_is_better=lower_is_better
                )
                for bf in budgets
            ]
            for tf in tops
        ]
    )
    return RESResult(budget_fractions=budgets, top_fractions=tops, surface=surface)
