"""ML1 — the deep-learning docking surrogate.

SMILES → 2D depiction → residual CNN → normalized docking score, plus the
streaming FP16 inference engine and the RES enrichment analysis (Fig 4).
"""

from repro.surrogate.featurize import (
    IMAGE_SIZE,
    ScoreNormalizer,
    featurize_batch,
    featurize_smiles,
)
from repro.surrogate.infer import InferenceEngine, ScoredCompound
from repro.surrogate.model import SmilesNet, build_smilesnet
from repro.surrogate.res import RESResult, res_surface, top_fraction_recall
from repro.surrogate.train import TrainConfig, TrainedSurrogate, train_surrogate

__all__ = [
    "IMAGE_SIZE",
    "InferenceEngine",
    "RESResult",
    "ScoreNormalizer",
    "ScoredCompound",
    "SmilesNet",
    "TrainConfig",
    "TrainedSurrogate",
    "build_smilesnet",
    "featurize_batch",
    "featurize_smiles",
    "res_surface",
    "top_fraction_recall",
    "train_surrogate",
]
