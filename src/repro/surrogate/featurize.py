"""ML1 featurization: SMILES → 2D depiction image + normalized targets.

§6.1.1: "it transforms image representations of ligand molecules into a
docking score … target scores are binding energies which are mapped into
the interval [0, 1], with higher scores representing lower binding
energies and thus higher docking probabilities."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.chem.depict import N_CHANNELS, depict
from repro.chem.smiles import parse_smiles

__all__ = ["featurize_smiles", "featurize_batch", "ScoreNormalizer", "IMAGE_SIZE"]

#: depiction resolution used by the surrogate
IMAGE_SIZE = 24


def featurize_smiles(smiles: str, size: int = IMAGE_SIZE) -> np.ndarray:
    """2D image features for one compound: (N_CHANNELS, size, size)."""
    return depict(parse_smiles(smiles), size=size)


def featurize_batch(
    smiles_list: Sequence[str], size: int = IMAGE_SIZE, out: np.ndarray | None = None
) -> np.ndarray:
    """Stacked image features: (batch, N_CHANNELS, size, size).

    With ``out`` (e.g. a slice of the inference engine's persistent batch
    buffer), features are written in place and no batch-sized temporary
    is allocated; the filled ``out`` is returned.  Layout is inherently
    per-molecule (ragged graphs), so the batch dimension is a loop while
    the per-molecule rasterization is vectorized in
    :mod:`repro.chem.depict`.
    """
    if out is None:
        out = np.empty(
            (len(smiles_list), N_CHANNELS, size, size), dtype=np.float32
        )
    if out.shape[0] != len(smiles_list):
        raise ValueError(
            f"out has room for {out.shape[0]} records, got {len(smiles_list)}"
        )
    for i, smiles in enumerate(smiles_list):  # repro: disable=vectorization — ragged molecule graphs
        out[i] = featurize_smiles(smiles, size)
    return out


@dataclass
class ScoreNormalizer:
    """Map docking scores (kcal/mol, lower = better) into [0, 1].

    Higher normalized score = lower binding energy = better docking
    probability, matching the paper's target convention.  Fitted bounds
    use robust percentiles so a single pathological score cannot squash
    the whole scale.
    """

    lo: float = 0.0  # score mapped to 1.0 (best binding energy)
    hi: float = 0.0  # score mapped to 0.0 (worst)
    fitted: bool = False

    def fit(self, scores: np.ndarray) -> "ScoreNormalizer":
        """Fit to data; returns self."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.size < 2:
            raise ValueError("need at least two scores to fit a normalizer")
        self.lo = float(np.percentile(scores, 1))
        self.hi = float(np.percentile(scores, 99))
        if self.hi <= self.lo:
            raise ValueError("degenerate score range")
        self.fitted = True
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Apply the fitted mapping."""
        if not self.fitted:
            raise RuntimeError("normalizer not fitted")
        scores = np.asarray(scores, dtype=np.float64)
        return np.clip((self.hi - scores) / (self.hi - self.lo), 0.0, 1.0)

    def inverse(self, normalized: np.ndarray) -> np.ndarray:
        """Map normalized values back to the original scale."""
        if not self.fitted:
            raise RuntimeError("normalizer not fitted")
        return self.hi - np.asarray(normalized) * (self.hi - self.lo)
