"""The ML1 surrogate network: a small residual CNN over 2D depictions.

Plays ResNet-50's role (§6.1.1) at laptop scale: convolutional stem, two
residual stages with pooling, global average pooling and a sigmoid head
producing the normalized docking score in [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.chem.depict import N_CHANNELS
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
)

__all__ = ["SmilesNet", "build_smilesnet"]


class SmilesNet(Sequential):
    """Residual CNN: (B, N_CHANNELS, s, s) image → (B, 1) score in [0, 1].

    Built as a ``Sequential`` so :func:`repro.nn.compile_model` can export
    it to the FP16 inference path without special cases.
    """

    def __init__(self, rng: np.random.Generator, width: int = 12) -> None:
        w = width
        stem = Sequential(
            Conv2d(N_CHANNELS, w, 3, rng, padding=1), BatchNorm(w), ReLU()
        )
        stage1 = ResidualBlock(
            Sequential(
                Conv2d(w, w, 3, rng, padding=1),
                BatchNorm(w),
                ReLU(),
                Conv2d(w, w, 3, rng, padding=1),
                BatchNorm(w),
            )
        )
        stage2 = ResidualBlock(
            Sequential(
                Conv2d(w, 2 * w, 3, rng, padding=1),
                BatchNorm(2 * w),
                ReLU(),
                Conv2d(2 * w, 2 * w, 3, rng, padding=1),
                BatchNorm(2 * w),
            ),
            projection=Conv2d(w, 2 * w, 1, rng),
        )
        head = Sequential(GlobalAvgPool2d(), Dense(2 * w, 1, rng), Sigmoid())
        super().__init__(stem, stage1, MaxPool2d(2), stage2, MaxPool2d(2), head)
        self.width = width


def build_smilesnet(seed: int = 0, width: int = 12) -> SmilesNet:
    """Construct a SmilesNet with seeded initialization."""
    return SmilesNet(np.random.default_rng(seed), width=width)
