"""Surrogate training loop.

Trains SmilesNet on (SMILES, docking score) pairs produced offline by S1
— the paper pre-trains on 500k OZD samples per receptor; we scale the
sample count down and keep the procedure: normalize targets to [0, 1],
mini-batch Adam, fixed train/validation split, per-epoch loss tracking.

Two interchangeable engines drive the step loop: ``engine="graph"``
(default) compiles forward+backward+Adam into one replayed
:class:`~repro.nn.graph.train.TrainStep`; ``engine="eager"`` keeps the
original interpreter loop as the oracle.  Both produce **bitwise
identical** weights, losses and optimizer state at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.graph.train import TrainStep
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam, grad_norm
from repro.surrogate.featurize import IMAGE_SIZE, ScoreNormalizer, featurize_batch
from repro.surrogate.model import SmilesNet, build_smilesnet
from repro.telemetry import NULL_TRACER
from repro.util.config import FrozenConfig, validate_positive, validate_range
from repro.util.rng import RngFactory

__all__ = ["TrainConfig", "TrainedSurrogate", "train_surrogate", "validation_loss"]


@dataclass(frozen=True)
class TrainConfig(FrozenConfig):
    """Hyper-parameters for surrogate training."""

    epochs: int = 12
    batch_size: int = 32
    learning_rate: float = 3e-3
    validation_fraction: float = 0.2
    width: int = 12
    image_size: int = IMAGE_SIZE
    engine: str = "graph"

    def __post_init__(self) -> None:
        validate_positive("epochs", self.epochs)
        validate_positive("batch_size", self.batch_size)
        validate_positive("learning_rate", self.learning_rate)
        validate_range("validation_fraction", self.validation_fraction, 0.0, 0.9)
        if self.engine not in ("graph", "eager"):
            raise ValueError(
                f"engine must be 'graph' or 'eager', got {self.engine!r}"
            )


@dataclass
class TrainedSurrogate:
    """A trained model + its target normalizer + training curves."""

    model: SmilesNet
    normalizer: ScoreNormalizer
    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    image_size: int = IMAGE_SIZE

    def predict_normalized(self, smiles_list: list[str]) -> np.ndarray:
        """Predicted normalized scores in [0, 1] (higher = better binder)."""
        from repro.nn.autograd import no_grad

        self.model.eval()
        feats = featurize_batch(smiles_list, size=self.image_size)
        with no_grad():
            out = self.model(Tensor(feats))
        return out.data.reshape(-1)

    def predict_scores(self, smiles_list: list[str]) -> np.ndarray:
        """Predictions mapped back to the docking-score scale (kcal/mol)."""
        return self.normalizer.inverse(self.predict_normalized(smiles_list))

    # ------------------------------------------------------- checkpointing
    def save(self, path) -> None:
        """Write weights + normalizer + curves to a ``.npz`` checkpoint."""
        from pathlib import Path

        from repro.nn.layers import BatchNorm

        state = self.model.state_dict()
        for i, m in enumerate(self.model.modules()):
            if isinstance(m, BatchNorm):
                state[f"bn{i}_mean"] = m.running_mean
                state[f"bn{i}_var"] = m.running_var
        state["meta_normalizer"] = np.array([self.normalizer.lo, self.normalizer.hi])
        state["meta_width"] = np.array([self.model.width, self.image_size])
        state["meta_train_losses"] = np.array(self.train_losses)
        state["meta_val_losses"] = np.array(self.val_losses)
        np.savez_compressed(Path(path), **state)

    @classmethod
    def load(cls, path) -> "TrainedSurrogate":
        """Rebuild a surrogate from a checkpoint written by :meth:`save`."""
        from pathlib import Path

        from repro.nn.layers import BatchNorm
        from repro.surrogate.model import build_smilesnet

        with np.load(Path(path)) as blob:
            state = {k: blob[k] for k in blob.files}
        width, image_size = (int(v) for v in state.pop("meta_width"))
        lo, hi = state.pop("meta_normalizer")
        train_losses = state.pop("meta_train_losses").tolist()
        val_losses = state.pop("meta_val_losses").tolist()
        model = build_smilesnet(seed=0, width=width)
        model.load_state_dict({k: v for k, v in state.items() if k.startswith("p")})
        for i, m in enumerate(model.modules()):
            if isinstance(m, BatchNorm):
                m.running_mean = state[f"bn{i}_mean"].copy()
                m.running_var = state[f"bn{i}_var"].copy()
        model.eval()
        normalizer = ScoreNormalizer(lo=float(lo), hi=float(hi), fitted=True)
        return cls(
            model=model,
            normalizer=normalizer,
            train_losses=train_losses,
            val_losses=val_losses,
            image_size=image_size,
        )


def validation_loss(model, X_val: np.ndarray, y_val: np.ndarray, batch_size: int) -> float:
    """Full-dataset MSE evaluated in ``batch_size`` chunks.

    Replaces the single-pass ``mse_loss(model(X_val), y_val)`` with one
    that bounds peak activation memory by a chunk instead of the whole
    validation split.  The loss arithmetic is reproduced exactly: squared
    errors land in one preallocated ``(n, 1)`` buffer and the final
    reduction is the very same whole-array pairwise ``sum`` (times
    ``1/n``) the eager loss ran.  Eval-mode forwards are per-sample
    independent, so chunking agrees with the single pass bitwise whenever
    BLAS row-blocking is chunk-invariant (it is at the shipped batch
    sizes; a degenerate tail chunk of a few rows can select a different
    GEMM kernel and differ in the last ulp).  Both training engines call
    this same function, so reported validation losses are always
    bit-identical across engines.
    """
    n = len(X_val)
    sq: np.ndarray | None = None
    with no_grad():
        for start in range(0, n, batch_size):  # repro: disable=vectorization -- chunked eval
            stop = min(start + batch_size, n)
            pred = model(Tensor(X_val[start:stop]))
            # mirrors mse_loss: diff = pred + (target * -1.0); diff * diff
            d = pred.data + (np.asarray(y_val[start:stop], dtype=pred.data.dtype) * -1.0)
            if sq is None:
                sq = np.empty((n, 1), dtype=d.dtype)
            np.multiply(d, d, out=sq[start:stop])
    if sq is None:
        return 0.0
    return float(sq.sum() * (1.0 / n))


def train_surrogate(
    smiles: list[str],
    docking_scores: np.ndarray,
    config: TrainConfig | None = None,
    seed: int = 0,
    tracer=None,
) -> TrainedSurrogate:
    """Train a SmilesNet to predict docking scores from depictions.

    Parameters
    ----------
    smiles:
        Training compounds.
    docking_scores:
        Matching docking scores (kcal/mol, lower = better binding).
    tracer:
        Optional :class:`repro.telemetry.Tracer`; emits ``train.epoch`` /
        ``train.step`` spans plus loss / gradient-norm gauges.  Defaults
        to the zero-cost null tracer.
    """
    cfg = config or TrainConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    scores = np.asarray(docking_scores, dtype=np.float64)
    if len(smiles) != len(scores):
        raise ValueError("smiles and docking_scores must be the same length")
    if len(smiles) < 4:
        raise ValueError("need at least 4 training examples")

    factory = RngFactory(seed, prefix="surrogate/train")
    normalizer = ScoreNormalizer().fit(scores)
    y = normalizer.transform(scores).reshape(-1, 1)
    X = featurize_batch(smiles, size=cfg.image_size)

    n = len(smiles)
    perm = factory.stream("split").permutation(n)
    n_val = int(round(cfg.validation_fraction * n))
    val_idx, train_idx = perm[:n_val], perm[n_val:]

    model = build_smilesnet(seed=factory.spawn_seed("init"), width=cfg.width)
    opt = Adam(model.parameters(), lr=cfg.learning_rate)
    shuffle_rng = factory.stream("shuffle")

    step = None
    if cfg.engine == "graph":
        step = TrainStep(lambda xb, yb: mse_loss(model(xb), yb), opt)

    train_losses: list[float] = []
    val_losses: list[float] = []
    for epoch in range(cfg.epochs):
        model.train()
        order = shuffle_rng.permutation(train_idx)
        epoch_loss = 0.0
        n_batches = 0
        # minibatches are genuinely sequential (each SGD step depends on
        # the last), so slice the index batches up front
        index_batches = [
            order[start : start + cfg.batch_size]
            for start in range(0, len(order), cfg.batch_size)
        ]
        with tracer.span("train.epoch", "train", epoch=epoch) as epoch_span:
            for idx in index_batches:
                with tracer.span("train.step", "train"):
                    if step is not None:
                        loss_val = step(X[idx], y[idx])
                    else:
                        loss = mse_loss(model(Tensor(X[idx])), Tensor(y[idx]))
                        model.zero_grad()
                        loss.backward()
                        opt.step()
                        loss_val = loss.item()
                if tracer.enabled:
                    tracer.metrics.counter("train.steps").inc()
                    tracer.metrics.gauge("train.loss").set(loss_val)
                    gnorm = (
                        step.grad_norm() if step is not None else grad_norm(opt.params)
                    )
                    tracer.metrics.gauge("train.grad_norm").set(gnorm)
                epoch_loss += loss_val
                n_batches += 1
            train_losses.append(epoch_loss / max(1, n_batches))
            epoch_span.set_attr("train_loss", train_losses[-1])

            if len(val_idx):
                model.eval()
                val_losses.append(
                    validation_loss(model, X[val_idx], y[val_idx], cfg.batch_size)
                )
                epoch_span.set_attr("val_loss", val_losses[-1])

    model.eval()
    return TrainedSurrogate(
        model=model,
        normalizer=normalizer,
        train_losses=train_losses,
        val_losses=val_losses,
        image_size=cfg.image_size,
    )
