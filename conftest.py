"""Repo-root pytest wiring: expose the concurrency-sanitizer plugin.

The plugin is inert unless ``--repro-sanitize`` is passed (CI's
``sanitize`` job); plain runs pay nothing.
"""

pytest_plugins = ["repro.analysis.sanitize.plugin"]
