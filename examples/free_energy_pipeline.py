#!/usr/bin/env python
"""Hit-to-lead free-energy pipeline: dock → CG-ESMACS → S2 → FG-ESMACS.

The (S3-CG)-(S2)-(S3-FG) refinement chain of §7.1.2–7.1.4 for a handful
of compounds: coarse ensemble free energies seed the 3D-AAE, LOF picks
outlier conformations of the best binders, and fine-grained ESMACS
refines exactly those — the paper's Fig 6 comparison.

Run:  python examples/free_energy_pipeline.py
"""


from repro.chem import generate_library, parse_smiles
from repro.ddmd import AAEConfig, AdaptiveConfig, run_s2
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.esmacs import EsmacsConfig, EsmacsRunner
from repro.md import build_lpc


def main() -> None:
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    library = generate_library(12, seed=33)

    cg_cfg = EsmacsConfig(
        replicas=6, equilibration_ns=1, production_ns=4,
        steps_per_ns=10, n_residues=80, record_every=4, minimize_iterations=20,
    )
    fg_cfg = EsmacsConfig(
        replicas=12, equilibration_ns=2, production_ns=10,
        steps_per_ns=10, n_residues=80, record_every=10, minimize_iterations=20,
    )

    print("S1: docking 12 compounds ...")
    engine = DockingEngine(receptor, seed=0, config=LGAConfig(population=14, generations=6))
    docked = engine.dock_library(library)
    for r in DockingEngine.rank(docked)[:5]:
        print(f"  {r.compound_id}  {r.score:8.2f} kcal/mol")

    print("\nS3-CG: ensemble free energies (6 replicas each) ...")
    cg_runner = EsmacsRunner(receptor, cg_cfg, seed=0)
    cg_results = []
    ligand_atoms = {}
    reference = None
    for dock in DockingEngine.rank(docked)[:6]:
        mol = parse_smiles(dock.smiles)
        coords = engine.pose_coordinates(dock)
        res = cg_runner.run(mol, coords, dock.compound_id)
        cg_results.append(res)
        system = build_lpc(receptor, mol, coords, seed=0, n_residues=cg_cfg.n_residues)
        ligand_atoms[dock.compound_id] = system.topology.ligand_atoms
        reference = system.positions[system.topology.protein_atoms]
        print(f"  {dock.compound_id}  ΔG = {res.binding_free_energy:7.1f} "
              f"± {res.sem:4.1f} kcal/mol")

    print("\nS2: 3D-AAE + LOF outlier selection ...")
    s2 = run_s2(
        cg_results,
        reference,
        ligand_atoms,
        AdaptiveConfig(
            top_compounds=3,
            outliers_per_compound=3,
            lof_neighbors=8,
            aae=AAEConfig(epochs=8, latent_dim=8, hidden=16),
        ),
        seed=0,
    )
    print(f"  trained on {len(s2.dataset)} conformations; "
          f"final reconstruction loss {s2.model.history.train_reconstruction[-1]:.3f}")
    print(f"  selected {len(s2.selections)} outlier conformations from "
          f"{s2.top_compound_ids}")

    print("\nS3-FG: refining selected conformations (12 replicas each) ...")
    fg_runner = EsmacsRunner(receptor, fg_cfg, seed=0)
    cg_by_id = {r.compound_id: r.binding_free_energy for r in cg_results}
    entry_by_id = {e.compound_id: e for e in library}
    print(f"  {'compound':<12s} {'conformation':<10s} {'CG ΔG':>8s} {'FG ΔG':>8s}")
    for sel in s2.selections:
        mol = parse_smiles(entry_by_id[sel.compound_id].smiles)
        lig = sel.coordinates[ligand_atoms[sel.compound_id]]
        fg = fg_runner.run(mol, lig, sel.compound_id, keep_trajectories=False)
        print(f"  {sel.compound_id:<12s} r{sel.replica}f{sel.frame:<8d} "
              f"{cg_by_id[sel.compound_id]:8.1f} {fg.binding_free_energy:8.1f}")


if __name__ == "__main__":
    main()
