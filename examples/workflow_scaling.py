#!/usr/bin/env python
"""Workflow infrastructure at scale: pilots, EnTK pipelines and RAPTOR.

Demonstrates the computational-performance half of the paper on the
simulated Summit:

1. a pilot backfilling 10,000 heterogeneous tasks onto 1,000 nodes (the
   §5.2.2 scenario, verbatim),
2. the integrated (S3-CG)-(S2)-(S3-FG) EnTK run with its utilization
   time series (Fig 7),
3. RAPTOR docking-throughput scaling with single vs multiple masters
   (§6.1.2),
4. fault tolerance: the same pilot workload under injected failures,
   completing every task via retries with bounded makespan inflation.

Run:  python examples/workflow_scaling.py
"""

import numpy as np

from repro.core import CostModel, SimulatedCampaignConfig, simulate_integrated_run
from repro.rct import (
    Cluster,
    FaultModel,
    Pilot,
    RaptorConfig,
    RetryPolicy,
    SimExecutor,
    TaskSpec,
    simulate_raptor,
)
from repro.util.rng import rng_stream


def pilot_demo() -> None:
    print("=== pilot: 10,000 single-GPU tasks on 1,000 Summit nodes ===")
    cluster = Cluster(1000)
    rng = rng_stream(0, "example/pilot")
    tasks = [
        TaskSpec(gpus=1, duration=float(d), stage="mixed")
        for d in rng.lognormal(np.log(300), 0.25, size=10_000)
    ]
    # the context manager releases executor resources on exit (a no-op for
    # the simulated backend, the thread pool for ThreadExecutor)
    with Pilot(cluster.allocate(1000, 0.0), SimExecutor(launch_overhead=0.5)) as pilot:
        pilot.run(tasks)
    series = pilot.utilization.series()
    ideal = sum(t.duration for t in tasks) / (1000 * 6)
    print(f"  makespan {series.times[-1]:.0f}s (ideal {ideal:.0f}s; the gap "
          f"is the longest single task), "
          f"mean GPU utilization {series.average_utilization():.2f}\n")


def integrated_demo() -> None:
    print("=== Fig 7: integrated (S3-CG)-(S2)-(S3-FG) on 120 nodes ===")
    pilot = simulate_integrated_run(
        SimulatedCampaignConfig(
            n_nodes=120, cg_compounds=96, s2_compounds=12, fg_compounds=24, cohorts=4
        ),
        CostModel(),
    )
    series = pilot.utilization.series()
    print(series.ascii_plot(width=66, height=10))
    print(f"  mean GPU utilization {series.average_utilization():.2f}, "
          f"{len(pilot.records)} tasks\n")


def raptor_demo() -> None:
    print("=== RAPTOR: docking throughput vs workers (simulated) ===")
    rng = rng_stream(1, "example/raptor")
    print(f"  {'workers':>8s} {'masters':>8s} {'ligands/s':>10s} {'utilization':>12s}")
    for workers in (128, 512, 2048):
        durations = rng.lognormal(np.log(0.4), 0.7, size=workers * 120)
        for masters in (1, max(1, workers // 128)):
            res = simulate_raptor(
                durations,
                RaptorConfig(
                    n_workers=workers,
                    n_masters=masters,
                    bulk_size=32,
                    dispatch_overhead=0.05,
                ),
            )
            print(f"  {workers:8d} {masters:8d} {res.throughput:10.1f} "
                  f"{res.worker_utilization:12.2f}")
    print("  (single-master rows saturate; scaled masters stay near-linear)")


def fault_demo() -> None:
    print("\n=== fault tolerance: 2,000 tasks, injected failures, retries ===")
    rng = rng_stream(2, "example/fault")
    durations = rng.lognormal(np.log(300), 0.25, size=2000)
    print(f"  {'failure rate':>12s} {'makespan':>9s} {'retries':>8s} "
          f"{'dropped':>8s} {'time lost':>10s}")
    for rate in (0.0, 0.05, 0.10):
        cluster = Cluster(100)
        tasks = [
            TaskSpec(gpus=1, duration=float(d), stage="mixed") for d in durations
        ]
        with Pilot(
            cluster.allocate(100, 0.0),
            SimExecutor(0.5, fault_model=FaultModel(failure_rate=rate, seed=11)),
            retry=RetryPolicy(max_retries=3, backoff_base=5.0, seed=11),
        ) as pilot:
            pilot.run(tasks)
        f = pilot.failures
        print(f"  {rate:12.0%} {pilot.executor.now:8.0f}s {f.n_retries:8d} "
              f"{f.n_dropped:8d} {f.time_lost:9.0f}s")
    print("  (every failure is retried or reported dropped — none vanish)")


if __name__ == "__main__":
    pilot_demo()
    integrated_demo()
    raptor_demo()
    fault_demo()
