#!/usr/bin/env python
"""Quickstart: run a miniature IMPECCABLE campaign end to end.

The full loop of the paper's Fig 1 — ML1 surrogate ranking, AutoDock-style
docking (S1), coarse ensemble free energies (S3-CG), AI-driven
conformational filtering (S2) and fine-grained refinement (S3-FG) — at a
size that finishes in a couple of minutes on a laptop.

Run:  python examples/quickstart.py
"""

from repro.core import CampaignConfig, ImpeccableCampaign
from repro.esmacs.protocol import EsmacsConfig


def main() -> None:
    config = CampaignConfig(
        target="PLPro",
        pdb_id="6W9C",  # the receptor §7.1 presents results for
        library_size=60,
        seed_train_size=20,
        iterations=2,
        cg_compounds=4,
        s2_top_compounds=2,
        s2_outliers_per_compound=2,
        cg=EsmacsConfig(
            replicas=4, equilibration_ns=1, production_ns=4,
            steps_per_ns=8, n_residues=60, record_every=4,
            minimize_iterations=15,
        ),
        fg=EsmacsConfig(
            replicas=8, equilibration_ns=2, production_ns=10,
            steps_per_ns=8, n_residues=60, record_every=8,
            minimize_iterations=15,
        ),
        compute_enrichment=True,
        seed=0,
    )
    print(f"IMPECCABLE quickstart: {config.target}/{config.pdb_id}, "
          f"{config.library_size}-compound library, {config.iterations} iterations\n")

    campaign = ImpeccableCampaign(config)
    result = campaign.run()

    for it in result.iterations:
        print(it.metrics.summary())
        if it.fg_results:
            cg_by_id = {r.compound_id: r.binding_free_energy for r in it.cg_results}
            wins = sum(
                1
                for parent, fg in zip(it.fg_parents, it.fg_results)
                if fg.binding_free_energy < cg_by_id[parent]
            )
            print(f"  S2-selected conformations: FG tighter than CG for "
                  f"{wins}/{len(it.fg_results)} refinements")
        print()

    best = min(result.all_fg(), key=lambda r: r.binding_free_energy, default=None)
    if best is not None:
        print(f"best FG binding free energy: {best.binding_free_energy:.1f} "
              f"± {best.sem:.1f} kcal/mol  ({best.compound_id})")


if __name__ == "__main__":
    main()
