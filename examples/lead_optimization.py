#!/usr/bin/env python
"""Lead optimization with TIES: rank congeneric analogues by ΔΔG.

The step beyond the paper's demonstrated campaign (its Table 2 lists
TIES as supported but "not integrated"): starting from a docked lead,
evaluate a series of single-group modifications by alchemical relative
binding free energy, the way H2L→lead-optimization teams actually use
TIES.

Run:  python examples/lead_optimization.py
"""

from repro.chem import parse_smiles
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.ties import TiesConfig, TiesRunner

LEAD = "c1ccccc1CC(=O)O"  # the lead scaffold: phenylacetic acid
ANALOGUES = {
    "amide": "c1ccccc1CC(=O)N",
    "para-F": "Fc1ccc(CC(=O)O)cc1",
    "para-Cl": "Clc1ccc(CC(=O)O)cc1",
    "pyridyl": "c1ccncc1CC(=O)O",
}


def main() -> None:
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    print(f"lead: {LEAD}")

    print("docking the lead ...")
    engine = DockingEngine(
        receptor, seed=0, config=LGAConfig(population=14, generations=6)
    )
    dock = engine.dock_smiles(LEAD, "LEAD")
    coords = engine.pose_coordinates(dock)
    print(f"  lead docking score: {dock.score:.2f} kcal/mol")

    runner = TiesRunner(
        receptor,
        TiesConfig(
            n_windows=5,
            replicas_per_window=3,
            equilibration_steps=20,
            production_steps=50,
            n_residues=60,
            minimize_iterations=20,
        ),
        seed=0,
    )
    mol_lead = parse_smiles(LEAD)

    print("\nTIES transformations (negative ΔΔG = analogue binds tighter):")
    print(f"  {'analogue':<10s} {'ΔΔG':>8s} {'± sem':>7s}")
    rows = []
    for name, smiles in ANALOGUES.items():
        result = runner.run(mol_lead, parse_smiles(smiles), coords, "lead", name)
        rows.append((name, result.ddg, result.sem))
        print(f"  {name:<10s} {result.ddg:8.2f} {result.sem:7.2f}")

    best = min(rows, key=lambda r: r[1])
    print(f"\nbest modification: {best[0]} (ΔΔG = {best[1]:.2f} kcal/mol)")


if __name__ == "__main__":
    main()
