#!/usr/bin/env python
"""ML1 virtual screening: train a docking surrogate, deploy it at FP16
over compressed shards, and read its Regression Enrichment Surface.

Reproduces the §6.1.1/§7.1.1 workflow in miniature:

1. dock a training library against PLPro (the "offline docking runs"),
2. train the SmilesNet surrogate on (depiction, score) pairs,
3. compile to FP16 and stream a *different* library (the paper's
   OZD→ORD transfer test) through the sharded prefetch pipeline,
4. compute the RES and the enrichment of the surrogate's top picks.

Run:  python examples/virtual_screening.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.chem import generate_library
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.surrogate import (
    InferenceEngine,
    TrainConfig,
    res_surface,
    top_fraction_recall,
    train_surrogate,
)


def main() -> None:
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    fast = LGAConfig(population=12, generations=5)

    # OZD (train) and ORD (transfer) libraries with controlled overlap
    ozd = generate_library(150, seed=10, name="OZD", shared_fraction=0.2, shared_seed=99)
    ord_ = generate_library(100, seed=20, name="ORD", shared_fraction=0.2, shared_seed=99)
    print(f"libraries: OZD={len(ozd)}, ORD={len(ord_)}")

    print("docking OZD for training labels ...")
    engine = DockingEngine(receptor, seed=0, config=fast)
    train_results = engine.dock_library(ozd)
    train_scores = np.array([r.score for r in train_results])
    print(f"  docking scores: mean {train_scores.mean():.1f}, "
          f"best {train_scores.min():.1f} kcal/mol")

    print("training SmilesNet surrogate ...")
    surrogate = train_surrogate(
        ozd.smiles(), train_scores, TrainConfig(epochs=10, batch_size=24), seed=1
    )
    print(f"  val loss: {surrogate.val_losses[-1]:.4f}")

    # deploy at FP16 over gzip shards, as §6.1.1 does with TensorRT
    print("scoring ORD through the sharded FP16 inference pipeline ...")
    inference = InferenceEngine(surrogate, precision="fp16", batch_size=32)
    with tempfile.TemporaryDirectory() as tmp:
        shards = ord_.to_shards(Path(tmp), shard_size=25)
        scored = inference.score_shards(shards, world=4)
    print(f"  scored {len(scored)} compounds")

    # ground truth for ORD: dock it too, then measure enrichment
    print("docking ORD for evaluation ...")
    truth = {r.compound_id: r.score for r in DockingEngine(
        receptor, seed=0, config=fast).dock_library(ord_)}
    y_true = np.array([truth[s.compound_id] for s in scored])
    y_pred = -np.array([s.score for s in scored])  # higher pred = better

    res = res_surface(y_true, y_pred, n_budget=5, n_top=4)
    print("\n" + res.ascii_plot())
    r10 = top_fraction_recall(y_true, y_pred, 0.1, 0.1)
    print(f"\nrecall of true top-10% within predicted top-10%: {r10:.2f} "
          f"(random would be 0.10)")


if __name__ == "__main__":
    main()
