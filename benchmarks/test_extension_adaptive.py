"""Extension — DeepDriveMD adaptive-sampling acceleration (§5.1.4).

"We have shown that DeepDriveMD can potentially accelerate protein
folding simulations by at least 2 orders of magnitude."  The laptop-
scale measurable: with an identical MD budget, AAE+LOF-steered restarts
cover substantially more conformational space than restarts from the
initial structure, and coverage keeps growing round over round.
"""

import numpy as np
import pytest

from repro.chem import parse_smiles
from repro.ddmd import AAEConfig, AdaptiveSampler, AdaptiveSamplingConfig
from repro.docking import make_receptor
from repro.md import ForceField, build_lpc, minimize
from repro.util.rng import rng_stream

CFG = AdaptiveSamplingConfig(
    rounds=4,
    simulations_per_round=5,
    steps_per_simulation=60,
    record_every=5,
    aae=AAEConfig(epochs=5, latent_dim=8, hidden=16),
)


@pytest.fixture(scope="module")
def experiment():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    mol = parse_smiles("c1ccccc1CC(=O)O")
    coords = rng_stream(0, "bench/adaptive").normal(scale=2.0, size=(mol.n_atoms, 3))
    system = build_lpc(receptor, mol, coords, seed=0, n_residues=70)
    minimize(system, ForceField(), max_iterations=30)
    adaptive = AdaptiveSampler(system, CFG, seed=0).run()
    control = AdaptiveSampler(system, CFG.replace(adaptive=False), seed=0).run()
    return adaptive, control


def test_adaptive_coverage_advantage(benchmark, experiment):
    adaptive, control = experiment
    rows = benchmark(
        lambda: list(zip(adaptive.coverage_per_round, control.coverage_per_round))
    )
    print("\nDeepDriveMD steering vs uniform restarts (mean RMSD from start, Å)")
    print(f"  {'round':>5s} {'adaptive':>9s} {'control':>9s}")
    for i, (a, c) in enumerate(rows):
        print(f"  {i:5d} {a:9.3f} {c:9.3f}")
    print(f"  max RMSD reached: adaptive {adaptive.max_rmsd:.2f} vs "
          f"control {control.max_rmsd:.2f}")
    # same budget, markedly deeper exploration
    assert adaptive.coverage_per_round[-1] > 1.3 * control.coverage_per_round[-1]
    assert adaptive.max_rmsd > control.max_rmsd


def test_coverage_grows_across_rounds(benchmark, experiment):
    adaptive, _ = experiment
    cov = benchmark(lambda: adaptive.coverage_per_round)
    assert cov[-1] > cov[0]  # steering compounds round over round


def test_control_coverage_stays_flat(benchmark, experiment):
    _, control = experiment
    cov = benchmark(lambda: np.array(control.coverage_per_round))
    # restarting from the same structure re-samples the same basin
    assert cov.std() < 0.25 * cov.mean() + 1e-9
