"""Ablation — ensemble size vs ranking reliability (§5.1.3).

"MMPBSA based free energies have huge variability in results rendering
them non-reproducible … [ESMACS's] increased cost … is more than
compensated by the enhanced precision … which makes the resultant
ranking of compounds much more reliable."

We run ESMACS with a large replica pool on real docked complexes, then
measure the expected rank-correlation between two *independent* repeats
of the protocol as a function of ensemble size.  Single-trajectory
MMPBSA (ensemble size 1) must rank markedly less reproducibly than the
paper's 6-replica CG ensembles.
"""

import numpy as np
import pytest

from repro.chem import generate_library, parse_smiles
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.esmacs import EsmacsConfig, EsmacsRunner, repeat_reliability
from repro.util.rng import rng_stream

N_COMPOUNDS = 8
POOL = EsmacsConfig(
    replicas=12,  # pool to subsample ensembles from (2 × CG's 6)
    equilibration_ns=1.0,
    production_ns=4.0,
    steps_per_ns=8,
    n_residues=70,
    record_every=4,
    minimize_iterations=15,
)


@pytest.fixture(scope="module")
def replica_pools():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    library = generate_library(N_COMPOUNDS, seed=42)
    engine = DockingEngine(
        receptor, seed=0, config=LGAConfig(population=12, generations=5)
    )
    runner = EsmacsRunner(receptor, POOL, seed=0)
    pools = []
    for i in range(N_COMPOUNDS):
        dock = engine.dock_smiles(library[i].smiles, library[i].compound_id)
        res = runner.run(
            parse_smiles(dock.smiles),
            engine.pose_coordinates(dock),
            dock.compound_id,
            keep_trajectories=False,
        )
        pools.append(res.replica_dgs)
    return pools


def test_reliability_grows_with_ensemble_size(benchmark, replica_pools):
    def run():
        rng = rng_stream(1, "abl/rel")
        return {
            size: repeat_reliability(replica_pools, size, rng, n_repeats=40)
            for size in (1, 3, 6)
        }

    rel = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nexpected rank correlation between independent repeats:")
    for size, rho in rel.items():
        label = {1: "single-trajectory MMPBSA", 3: "3-replica", 6: "ESMACS-CG (6)"}[size]
        print(f"  ensemble size {size}: ρ = {rho:.3f}   ({label})")
    assert rel[1] < rel[6]
    assert rel[6] > 0.5  # CG-size ensembles rank reproducibly
    assert rel[3] >= rel[1] - 0.05  # monotone within noise


def test_replica_variability_is_real(benchmark, replica_pools):
    """The premise: single replicas vary by multiple kcal/mol, comparable
    to the between-compound differences they are supposed to resolve."""
    stats = benchmark(
        lambda: (
            float(np.mean([p.std(ddof=1) for p in replica_pools])),
            float(np.std([p.mean() for p in replica_pools])),
        )
    )
    within, between = stats
    print(f"\nwithin-compound replica σ = {within:.1f} kcal/mol; "
          f"between-compound σ = {between:.1f} kcal/mol")
    assert within > 0.5  # single estimates genuinely noisy
    assert between > 0.0
