"""Fig 6 — FG-ESMACS on S2-selected conformations vs CG-ESMACS.

The paper's strongest science result: for the five best CG binders, S2
selects five outlier conformations each; FG-ESMACS on those
conformations yields *lower* (tighter) binding free energies than the
CG estimates — "the provisional results confirm improved binding for the
selected conformations in all five compounds."

Shape to hold: per-compound mean FG ΔG below the CG ΔG for most (we
require ≥ 3/4) of the selected compounds, and the best FG estimate below
the best CG estimate.
"""

import numpy as np
import pytest

from repro.chem import generate_library, parse_smiles
from repro.ddmd import AAEConfig, AdaptiveConfig, run_s2
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.esmacs import EsmacsConfig, EsmacsRunner
from repro.md import build_lpc

N_COMPOUNDS = 12

CG_SCALED = EsmacsConfig(
    replicas=6, equilibration_ns=1.0, production_ns=4.0,
    steps_per_ns=10, n_residues=90, record_every=4, minimize_iterations=20,
)
FG_SCALED = EsmacsConfig(
    replicas=12,  # paper: 24; halved for bench wall time, ratio kept > 1
    equilibration_ns=2.0, production_ns=10.0,
    steps_per_ns=10, n_residues=90, record_every=10, minimize_iterations=20,
)


@pytest.fixture(scope="module")
def experiment():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    library = generate_library(N_COMPOUNDS, seed=42)
    engine = DockingEngine(
        receptor, seed=0, config=LGAConfig(population=12, generations=5)
    )
    cg_runner = EsmacsRunner(receptor, CG_SCALED, seed=0)
    fg_runner = EsmacsRunner(receptor, FG_SCALED, seed=0)

    cg_results = []
    ligand_atoms = {}
    reference = None
    for i in range(N_COMPOUNDS):
        dock = engine.dock_smiles(library[i].smiles, library[i].compound_id)
        mol = parse_smiles(dock.smiles)
        coords = engine.pose_coordinates(dock)
        cg_results.append(cg_runner.run(mol, coords, dock.compound_id))
        system = build_lpc(receptor, mol, coords, seed=0, n_residues=90)
        ligand_atoms[dock.compound_id] = system.topology.ligand_atoms
        reference = system.positions[system.topology.protein_atoms]

    s2 = run_s2(
        cg_results,
        reference,
        ligand_atoms,
        AdaptiveConfig(
            top_compounds=4,
            outliers_per_compound=3,
            lof_neighbors=10,
            aae=AAEConfig(epochs=8, latent_dim=8, hidden=16),
        ),
        seed=0,
    )
    entry_by_id = {e.compound_id: e for e in library}
    fg_by_compound: dict[str, list[float]] = {}
    for sel in s2.selections:
        mol = parse_smiles(entry_by_id[sel.compound_id].smiles)
        lig = sel.coordinates[ligand_atoms[sel.compound_id]]
        fg = fg_runner.run(mol, lig, sel.compound_id, keep_trajectories=False)
        fg_by_compound.setdefault(sel.compound_id, []).append(
            fg.binding_free_energy
        )
    cg_by_id = {r.compound_id: r.binding_free_energy for r in cg_results}
    return cg_by_id, fg_by_compound, s2


def test_fig6_fg_improves_on_cg(benchmark, experiment):
    cg_by_id, fg_by_compound, _ = experiment

    def comparison():
        rows = []
        for cid, fgs in fg_by_compound.items():
            rows.append((cid, cg_by_id[cid], float(np.mean(fgs)), float(np.min(fgs))))
        return rows

    rows = benchmark(comparison)
    print("\nFig 6 — CG vs FG for the S2-selected best binders")
    print(f"  {'compound':<12s} {'CG ΔG':>8s} {'FG mean':>8s} {'FG best':>8s}")
    wins = 0
    for cid, cg, fg_mean, fg_best in rows:
        mark = "improved" if fg_mean < cg else ""
        print(f"  {cid:<12s} {cg:8.1f} {fg_mean:8.1f} {fg_best:8.1f}  {mark}")
        if fg_mean < cg:
            wins += 1
    print(f"  FG below CG for {wins}/{len(rows)} compounds")
    assert wins >= int(np.ceil(0.75 * len(rows)))


def test_fig6_best_fg_below_best_cg(benchmark, experiment):
    cg_by_id, fg_by_compound, _ = experiment
    best = benchmark(
        lambda: (
            min(min(v) for v in fg_by_compound.values()),
            min(cg_by_id[c] for c in fg_by_compound),
        )
    )
    fg_best, cg_best = best
    print(f"\nbest FG {fg_best:.1f} vs best CG {cg_best:.1f} kcal/mol")
    assert fg_best < cg_best


def test_s2_selected_the_best_cg_binders(benchmark, experiment):
    cg_by_id, fg_by_compound, s2 = experiment
    selected = benchmark(lambda: set(fg_by_compound))
    ranked = sorted(cg_by_id, key=cg_by_id.get)
    assert selected == set(ranked[: len(selected)])
