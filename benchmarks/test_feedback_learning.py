"""§8 feedback claim — the ML component improves as physics data accrues.

"By introducing ML modules paired with and trained from the physics
modules output, over time the ML component models improve such that the
overall workflow becomes tuned to the specific target problem."

Measured directly: surrogates trained on growing slices of docked data
(the campaign's accumulating training set) are evaluated on one held-out
library.  Enrichment must improve from the small to the large training
set — the active-learning payoff that drives the iterative loop.
"""

import numpy as np
import pytest

from repro.chem import generate_library
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.surrogate import TrainConfig, top_fraction_recall, train_surrogate

SLICES = (50, 200)
N_HELDOUT = 200


@pytest.fixture(scope="module")
def experiment():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    fast = LGAConfig(population=12, generations=5)
    pool = generate_library(max(SLICES), seed=11, name="train-pool")
    heldout = generate_library(N_HELDOUT, seed=88, name="heldout")

    engine = DockingEngine(receptor, seed=0, config=fast)
    pool_scores = np.array([r.score for r in engine.dock_library(pool)])
    true_scores = np.array(
        [
            r.score
            for r in DockingEngine(receptor, seed=0, config=fast).dock_library(heldout)
        ]
    )

    recalls = {}
    corrs = {}
    for n in SLICES:
        surrogate = train_surrogate(
            pool.smiles()[:n],
            pool_scores[:n],
            TrainConfig(epochs=12, batch_size=32, width=8),
            seed=1,
        )
        pred = surrogate.predict_scores(heldout.smiles())
        recalls[n] = top_fraction_recall(true_scores, pred, 0.1, 0.1)
        corrs[n] = float(np.corrcoef(true_scores, pred)[0, 1])
    return recalls, corrs


def test_more_physics_data_better_surrogate(benchmark, experiment):
    recalls, corrs = experiment
    benchmark(lambda: (recalls, corrs))
    print("\nactive-learning feedback: surrogate quality vs training size")
    for n in SLICES:
        print(f"  {n:4d} docked compounds: recall@10% = {recalls[n]:.2f}, "
              f"pearson r = {corrs[n]:.3f}")
    small, large = SLICES
    assert corrs[large] > corrs[small]
    assert recalls[large] >= recalls[small] - 0.02


def test_large_slice_enriches_over_random(benchmark, experiment):
    recalls, _ = experiment
    recall = benchmark(lambda: recalls[max(SLICES)])
    assert recall > 0.2  # ≥ 2x over the 0.10 random baseline
