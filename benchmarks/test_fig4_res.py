"""Fig 4 — RES profile for PLPro docking runs.

Trains the ML1 surrogate on docking scores for the PLPro/6W9C receptor
and computes the Regression Enrichment Surface on a held-out library.
The paper reads off two operating points: at a budget of δ = 10⁻³·u the
model captures ~50% of the true top 10⁻⁴ and ~40% of the true top 10⁻³.
At our library size (hundreds, not millions) the comparable operating
point is a 10% budget; the *shape* that must hold is (a) recall far
above the random baseline (= budget fraction), (b) recall growing with
budget, and (c) enough lower-rank coverage to justify the paper's
"also select 15–20% from lower ranks" hedge.
"""

import numpy as np
import pytest

from repro.chem import generate_library
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.surrogate import TrainConfig, res_surface, top_fraction_recall, train_surrogate

N_TRAIN = 260
N_TEST = 260


@pytest.fixture(scope="module")
def experiment():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    fast = LGAConfig(population=12, generations=5)
    ozd = generate_library(N_TRAIN, seed=10, name="OZD")
    test_lib = generate_library(N_TEST, seed=77, name="OZD-heldout")

    engine = DockingEngine(receptor, seed=0, config=fast)
    train_scores = np.array([r.score for r in engine.dock_library(ozd)])
    surrogate = train_surrogate(
        ozd.smiles(),
        train_scores,
        TrainConfig(epochs=12, batch_size=32, width=8),
        seed=1,
    )
    true_scores = np.array(
        [r.score for r in DockingEngine(receptor, seed=0, config=fast).dock_library(test_lib)]
    )
    pred = surrogate.predict_scores(test_lib.smiles())
    return true_scores, pred, surrogate


def test_res_surface_shape(benchmark, experiment):
    true_scores, pred, _ = experiment
    res = benchmark(lambda: res_surface(true_scores, pred, n_budget=5, n_top=4))
    print("\nFig 4 — RES profile (PLPro/6W9C, held-out library)")
    print(res.ascii_plot())
    # recall is monotone along the budget axis
    for i in range(res.surface.shape[0]):
        row = res.surface[i]
        assert all(b >= a - 1e-12 for a, b in zip(row, row[1:]))
    # full budget = full recall
    np.testing.assert_allclose(res.surface[:, -1], 1.0)


def test_enrichment_beats_random(benchmark, experiment):
    """Predicted top-10% must capture the true top-10% far above chance."""
    true_scores, pred, _ = experiment
    r = benchmark(lambda: top_fraction_recall(true_scores, pred, 0.1, 0.1))
    print(f"\nrecall(top 10% | budget 10%) = {r:.2f}  (random = 0.10)")
    assert r > 0.25  # ≥ 2.5× enrichment over random


def test_paper_operating_point_shape(benchmark, experiment):
    """The paper's δ-budget reading: a small budget captures a large
    fraction of an even smaller true-top slice."""
    true_scores, pred, _ = experiment
    r_small = benchmark(
        lambda: top_fraction_recall(true_scores, pred, 0.1, 0.05)
    )
    print(f"recall(top 5% | budget 10%) = {r_small:.2f}  (random = 0.10)")
    assert r_small > 0.3  # the paper sees ~0.4-0.5 at its scale


def test_surrogate_correlates(benchmark, experiment):
    true_scores, pred, surrogate = experiment
    corr = benchmark(lambda: float(np.corrcoef(true_scores, pred)[0, 1]))
    print(f"held-out Pearson r = {corr:.3f}; final val loss = "
          f"{surrogate.val_losses[-1]:.4f}")
    assert corr > 0.35
