"""Ablation — 3D point clouds vs contact maps (§5.1.4).

"…a novel approach for analyzing large MD ensemble simulation datasets
using a 3D adversarial autoencoder (3D-AAE), a significant improvement
over approaches such as variational autoencoders in that it is more
robust and generalizable to protein coordinate datasets than contact
maps."

Measured on real CG-ESMACS conformations: both models are trained on
the same ensemble, then every conformation is perturbed by small
coordinate noise (below the contact cutoff).  A robust representation
maps perturbed structures near their originals; contact maps are
discontinuous at the cutoff, so their embeddings jump.
"""

import numpy as np
import pytest

from repro.chem import generate_library, parse_smiles
from repro.ddmd.aae import AAE, AAEConfig
from repro.ddmd.cmvae import CMVAEConfig, ContactMapVAE, contact_map
from repro.ddmd.pointcloud import normalize_cloud
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.esmacs import EsmacsConfig, EsmacsRunner
from repro.util.rng import rng_stream

CG = EsmacsConfig(
    replicas=4, equilibration_ns=1, production_ns=4, steps_per_ns=8,
    n_residues=60, record_every=4, minimize_iterations=15,
)


@pytest.fixture(scope="module")
def experiment():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    library = generate_library(6, seed=42)
    engine = DockingEngine(
        receptor, seed=0, config=LGAConfig(population=12, generations=5)
    )
    runner = EsmacsRunner(receptor, CG, seed=0)
    frames = []
    for i in range(6):
        dock = engine.dock_smiles(library[i].smiles, library[i].compound_id)
        res = runner.run(
            parse_smiles(dock.smiles), engine.pose_coordinates(dock), dock.compound_id
        )
        for traj in res.trajectories:
            for f in traj.frames:
                frames.append(f[res.protein_atoms])
    frames = np.array(frames)

    clouds = np.stack([normalize_cloud(f) for f in frames])
    maps = np.stack([contact_map(f, 8.0) for f in frames])

    aae = AAE(AAEConfig(epochs=8, latent_dim=8, hidden=16), n_points=60, seed=0)
    aae.fit(clouds)
    vae = ContactMapVAE(
        CMVAEConfig(epochs=8, hidden=48, latent_dim=8), n_inputs=maps.shape[1], seed=0
    )
    vae.fit(maps)

    rng = rng_stream(9, "bench/repr")
    perturbed = frames + rng.normal(scale=0.2, size=frames.shape)
    z_a0 = aae.embed(clouds)
    z_a1 = aae.embed(np.stack([normalize_cloud(f) for f in perturbed]))
    z_v0 = vae.embed(maps)
    z_v1 = vae.embed(np.stack([contact_map(f, 8.0) for f in perturbed]))

    disp_aae = float(
        np.linalg.norm(z_a1 - z_a0, axis=1).mean() / max(z_a0.std(), 1e-12)
    )
    disp_vae = float(
        np.linalg.norm(z_v1 - z_v0, axis=1).mean() / max(z_v0.std(), 1e-12)
    )
    return disp_aae, disp_vae, len(frames)


def test_aae_more_robust_than_contact_map_vae(benchmark, experiment):
    disp_aae, disp_vae, n = experiment
    ratio = benchmark(lambda: disp_vae / disp_aae)
    print(f"\nembedding displacement under 0.2 Å noise ({n} conformations):")
    print(f"  3D-AAE (point clouds): {disp_aae:.3f} (normalized)")
    print(f"  VAE (contact maps):    {disp_vae:.3f}")
    print(f"  robustness advantage:  {ratio:.1f}x")
    assert disp_aae < disp_vae
    assert ratio > 2.0


def test_both_representations_learn(benchmark, experiment):
    """The comparison is fair only if both models actually trained."""
    disp_aae, disp_vae, _ = experiment
    stats = benchmark(lambda: (disp_aae, disp_vae))
    assert all(np.isfinite(stats))
