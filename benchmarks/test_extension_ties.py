"""Extension — TIES lead optimization (Table 2's "BFE-TI" row).

The paper lists TIES as supported but "not integrated" into the
demonstrated campaign: 64 nodes and ~640 node-hours per ligand, two
orders of magnitude beyond ESMACS-FG.  This bench exercises the
implemented protocol end to end and verifies:

* the identity transform integrates to exactly zero;
* ΔΔG estimates come with ensemble error bars (the "enhanced sampling");
* the derived cost sits ~2 orders of magnitude above FG, as Table 2 shows.
"""

import numpy as np
import pytest

from repro.chem import parse_smiles
from repro.core.costs import CostModel
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.ties import TiesConfig, TiesRunner

CFG = TiesConfig(
    n_windows=5,
    replicas_per_window=3,
    equilibration_steps=15,
    production_steps=45,
    n_residues=60,
    minimize_iterations=15,
)

#: a congeneric pair: benzoic-acid scaffold, amide vs acid head group
SMILES_A = "c1ccccc1CC(=O)O"
SMILES_B = "c1ccccc1CC(=O)N"


@pytest.fixture(scope="module")
def experiment():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    mol_a = parse_smiles(SMILES_A)
    mol_b = parse_smiles(SMILES_B)
    engine = DockingEngine(
        receptor, seed=0, config=LGAConfig(population=12, generations=5)
    )
    dock = engine.dock_smiles(SMILES_A, "TIES-A")
    coords = engine.pose_coordinates(dock)
    runner = TiesRunner(receptor, CFG, seed=0)
    forward = runner.run(mol_a, mol_b, coords, "acid", "amide")
    identity = runner.run(mol_a, mol_a, coords, "acid", "acid")
    return forward, identity


def test_ties_transformation(benchmark, experiment):
    forward, _ = experiment
    row = benchmark(
        lambda: (forward.ddg, forward.sem, forward.complex_leg.delta_g,
                 forward.solvent_leg.delta_g)
    )
    ddg, sem, dg_c, dg_s = row
    print(f"\nTIES acid→amide: ΔΔG = {ddg:.2f} ± {sem:.2f} kcal/mol "
          f"(complex {dg_c:.2f}, solvent {dg_s:.2f})")
    print("  ⟨dU/dλ⟩ (complex):",
          np.round(forward.complex_leg.dudl_mean, 2).tolist())
    assert np.isfinite(ddg)
    assert sem > 0  # ensemble spread is reported, not hidden


def test_identity_is_exact_zero(benchmark, experiment):
    _, identity = experiment
    ddg = benchmark(lambda: identity.ddg)
    assert ddg == pytest.approx(0.0, abs=1e-9)


def test_ti_cost_two_orders_above_fg(benchmark):
    cm = CostModel()
    ratio = benchmark(
        lambda: cm.node_hours_per_ligand("TI") / cm.node_hours_per_ligand("S3-FG")
    )
    print(f"\nTI / FG cost ratio: {ratio:.0f}x (paper: 640/5 = 128x)")
    assert 50 < ratio < 300
