"""Fig 5 — CG-ESMACS energies, RMSD distributions and the 3D-AAE latent
space for PLPro (PDB 6W9C).

Three panels are quantitative and reproduced here:

* **5A** — the distribution of CG binding free energies "typically lies
  between −60 to +20 kcal/mol";
* **5B** — per-LPC ensemble RMSDs show "a rather tight distribution with
  a few LPCs that exhibit greater fluctuations" (outliers > 1.9 Å);
* **5C** — the 3D-AAE latent space, t-SNE-projected, separates the RMSD
  outliers from the bulk.

Panels 5D/E are structural renderings; their quantitative content (the
selected compound binds tighter after FG) is Fig 6's bench.
"""

import numpy as np
import pytest

from repro.chem import generate_library, parse_smiles
from repro.ddmd import AAEConfig, AdaptiveConfig, run_s2, tsne
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.esmacs import EsmacsConfig, EsmacsRunner
from repro.md import build_lpc

N_COMPOUNDS = 24

CG_SCALED = EsmacsConfig(
    replicas=6,
    equilibration_ns=1.0,
    production_ns=4.0,
    steps_per_ns=10,
    n_residues=90,
    record_every=4,
    minimize_iterations=20,
)


@pytest.fixture(scope="module")
def experiment():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    library = generate_library(N_COMPOUNDS, seed=42)
    engine = DockingEngine(
        receptor, seed=0, config=LGAConfig(population=12, generations=5)
    )
    runner = EsmacsRunner(receptor, CG_SCALED, seed=0)

    cg_results = []
    ligand_atoms = {}
    reference = None
    for i in range(N_COMPOUNDS):
        dock = engine.dock_smiles(library[i].smiles, library[i].compound_id)
        mol = parse_smiles(dock.smiles)
        coords = engine.pose_coordinates(dock)
        cg_results.append(runner.run(mol, coords, dock.compound_id))
        system = build_lpc(
            receptor, mol, coords, seed=0, n_residues=CG_SCALED.n_residues
        )
        ligand_atoms[dock.compound_id] = system.topology.ligand_atoms
        reference = system.positions[system.topology.protein_atoms]

    s2 = run_s2(
        cg_results,
        reference,
        ligand_atoms,
        AdaptiveConfig(
            top_compounds=5,
            outliers_per_compound=5,
            lof_neighbors=10,
            aae=AAEConfig(epochs=10, latent_dim=8, hidden=16),
        ),
        seed=0,
    )
    return cg_results, s2


def test_fig5a_energy_distribution(benchmark, experiment):
    cg_results, _ = experiment
    dgs = benchmark(
        lambda: np.array([r.binding_free_energy for r in cg_results])
    )
    print(f"\nFig 5A — CG ΔG over {len(dgs)} compounds: "
          f"min {dgs.min():.1f}, median {np.median(dgs):.1f}, "
          f"max {dgs.max():.1f} kcal/mol")
    hist, edges = np.histogram(dgs, bins=6)
    for h, lo, hi in zip(hist, edges, edges[1:]):
        print(f"  [{lo:7.1f}, {hi:7.1f})  {'#' * h}")
    # the paper's stated range: values typically within −60…+20
    assert dgs.min() > -90.0
    assert dgs.max() < 30.0
    assert (dgs < 0).mean() > 0.5  # docked poses mostly bind favourably
    assert dgs.std() > 3.0  # compounds genuinely differ


def test_fig5b_rmsd_distribution(benchmark, experiment):
    _, s2 = experiment
    rmsd = benchmark(lambda: s2.dataset.rmsd)
    q50, q90 = np.percentile(rmsd, [50, 90])
    outlier_threshold = np.percentile(rmsd, 95)
    print(f"\nFig 5B — ensemble RMSD: median {q50:.2f} Å, p90 {q90:.2f} Å, "
          f"max {rmsd.max():.2f} Å ({len(rmsd)} frames)")
    # tight bulk with a small tail of larger-fluctuation frames
    assert q50 < 2.5
    assert rmsd.max() > q50 * 1.3  # a tail exists
    assert (rmsd > outlier_threshold).mean() <= 0.08


def test_fig5c_latent_space_separates_outliers(benchmark, experiment):
    """The latent manifold places RMSD-outlier frames at its periphery —
    the structure the paper's coloured t-SNE scatter shows.  t-SNE
    scatters outliers in all directions, so the robust summary is the
    distance to the bulk centroid in the *full* latent space plus the
    rank correlation between RMSD and that distance."""
    from scipy import stats

    _, s2 = experiment
    emb2d = benchmark.pedantic(
        lambda: tsne(s2.embeddings, n_iter=250, perplexity=25.0, seed=3),
        rounds=1,
        iterations=1,
    )
    assert emb2d.shape == (len(s2.dataset), 2)
    assert np.isfinite(emb2d).all()

    threshold = np.percentile(s2.dataset.rmsd, 90)
    hi = s2.dataset.rmsd > threshold
    lo = ~hi
    centroid = s2.embeddings[lo].mean(axis=0)
    dist = np.linalg.norm(s2.embeddings - centroid, axis=1)
    rho = stats.spearmanr(s2.dataset.rmsd, dist)[0]
    print(f"\nFig 5C — latent space: outlier dist-to-centroid "
          f"{dist[hi].mean():.3f} vs bulk {dist[lo].mean():.3f}; "
          f"spearman(RMSD, latent distance) = {rho:.2f}")
    assert dist[hi].mean() > 1.15 * dist[lo].mean()
    assert rho > 0.25


def test_aae_learned(benchmark, experiment):
    """S2's learning measure: train/val reconstruction losses improve."""
    _, s2 = experiment
    hist = benchmark(lambda: s2.model.history)
    print(f"\nAAE reconstruction: train {hist.train_reconstruction[0]:.3f} → "
          f"{hist.train_reconstruction[-1]:.3f}; "
          f"val {hist.val_reconstruction[-1]:.3f}")
    assert hist.train_reconstruction[-1] < hist.train_reconstruction[0]
    assert hist.val_reconstruction[-1] < hist.val_reconstruction[0] * 1.1
