"""Scheduler benchmark: the simulator itself as a measured hot path.

Three claims, one JSON artifact (``BENCH_scheduler.json``):

1. **Bit-identity** — the indexed scheduler (``first_fit`` placement +
   shape-keyed pending queue) makes placement decisions byte-identical
   to the pre-optimization reference (``first_fit_scan``: O(nodes) NumPy
   scan per placement, O(backlog) re-scan per completion).  Checked on a
   faulty workload (crashes, stragglers, hangs, retries, timeouts) by
   comparing task-log sha256 digests, every FailureSummary counter, and
   the byte-exact Chrome trace export.  ``identical`` must be true for
   the rest of the report to mean anything.

2. **Throughput** — simulated scheduler events/sec (one event = one
   attempt start or completion, i.e. ``2 × attempts``) on a
   Summit-scale campaign: 4,608 nodes × 6 GPUs, 10⁶ single-GPU tasks.
   The optimized path runs the whole campaign; the reference loop is
   quadratic in the backlog at that scale, so it is measured over a
   bounded wall-clock window at the same scale via the public
   ``submit_ready``/``wait_one`` protocol (identical per-event work,
   honestly sampled from the *fastest* phase of the reference — its
   early backlog — so the reported speedup is a lower bound).  A
   matched-scale full-run comparison at a size the reference completes
   backs the windowed number.

3. **Shootout / backends** — the placement-policy and RAPTOR-knob
   shootout scored purely from telemetry traces, and the process-pool
   backend beating the thread pool wall-clock on a CPU-bound workload.

Usage::

    PYTHONPATH=src python benchmarks/perf_scheduler.py            # full
    PYTHONPATH=src python benchmarks/perf_scheduler.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench import bench_report, write_report  # noqa: E402

from repro.rct.backends import ProcessExecutor, SimExecutor, ThreadExecutor
from repro.rct.cluster import Allocation, NodeSpec, SUMMIT_NODE
from repro.rct.fault import FaultModel, RetryPolicy
from repro.rct.pilot import Pilot
from repro.rct.shootout import mixed_workload, run_shootout
from repro.rct.task import TaskRecord, TaskSpec, TaskState, reset_uid_counter
from repro.telemetry import NULL_TRACER, ExecutorClock, Tracer
from repro.telemetry.export import chrome_trace_json

#: one attempt = one start event + one completion event
EVENTS_PER_ATTEMPT = 2


def _campaign(
    policy: str,
    n_tasks: int,
    n_nodes: int,
    seed: int,
    faults: bool,
    traced: bool,
    spec: NodeSpec = SUMMIT_NODE,
) -> Pilot:
    """Run one simulated campaign; returns the (shut-down) pilot.

    ``reset_uid_counter()`` before task generation pins uids, so two
    runs of the same workload are comparable digest-for-digest.
    """
    reset_uid_counter()
    tasks = mixed_workload(n_tasks, seed, spec)
    fault_model = (
        FaultModel(
            seed=seed, failure_rate=0.05, straggler_rate=0.05, hang_rate=0.01
        )
        if faults
        else None
    )
    retry = (
        RetryPolicy(max_retries=3, backoff_base=2.0, timeout=600.0)
        if faults
        else None
    )
    executor = SimExecutor(launch_overhead=0.1, fault_model=fault_model)
    tracer = Tracer(clock=ExecutorClock(executor)) if traced else NULL_TRACER
    allocation = Allocation(
        node_ids=list(range(n_nodes)), spec=spec, granted_at=0.0
    )
    with Pilot(
        allocation,
        executor,
        retry=retry,
        tracer=tracer,
        policy=policy,
        keep_records=False,
    ) as pilot:
        pilot.run(tasks)
    return pilot


def check_identity(n_tasks: int, n_nodes: int, seed: int) -> dict:
    """Reference vs optimized on a faulty traced workload, byte for byte."""
    ref = _campaign("first_fit_scan", n_tasks, n_nodes, seed, True, True)
    opt = _campaign("first_fit", n_tasks, n_nodes, seed, True, True)
    digests = (ref.log.digest(), opt.log.digest())
    failures = (vars(ref.failures), vars(opt.failures))
    traces = (chrome_trace_json(ref.tracer), chrome_trace_json(opt.tracer))
    return {
        "identical": digests[0] == digests[1]
        and failures[0] == failures[1]
        and traces[0] == traces[1],
        "log_digest": digests[1],
        "digests_match": digests[0] == digests[1],
        "failure_summaries_match": failures[0] == failures[1],
        "traces_match": traces[0] == traces[1],
        "n_attempts": len(opt.log),
        "n_failures": opt.failures.n_failures,
        "n_retries": opt.failures.n_retries,
        "n_timeouts": opt.failures.n_timeouts,
    }


def _gpu_flood(n_tasks: int, seed: int) -> list[TaskSpec]:
    """The 10⁶-task headline shape: uniform short single-GPU attempts."""
    reset_uid_counter()
    return [
        TaskSpec(
            name=f"t{i}",
            cpus=1,
            gpus=1,
            duration=10.0 + (i * 7919) % 100 / 10.0,
            stage="S1",
        )
        for i in range(n_tasks)
    ]


def measure_optimized(n_tasks: int, n_nodes: int, seed: int) -> dict:
    """Full optimized campaign at Summit scale; events/sec from wall time."""
    tasks = _gpu_flood(n_tasks, seed)
    allocation = Allocation(
        node_ids=list(range(n_nodes)), spec=SUMMIT_NODE, granted_at=0.0
    )
    executor = SimExecutor(launch_overhead=0.1)
    t0 = time.perf_counter()
    with Pilot(
        allocation, executor, tracer=NULL_TRACER, keep_records=False
    ) as pilot:
        pilot.run(tasks)
    seconds = time.perf_counter() - t0
    n_events = len(pilot.log) * EVENTS_PER_ATTEMPT
    return {
        "n_tasks": n_tasks,
        "n_events": n_events,
        "seconds": round(seconds, 2),
        "events_per_sec": round(n_events / seconds, 1),
        "virtual_makespan": round(executor.now, 1),
        "log_digest": pilot.log.digest(),
    }


def measure_reference_window(
    n_tasks: int, n_nodes: int, seed: int, budget_s: float
) -> dict:
    """Reference loop at the same scale, measured over a wall-time window.

    Drives the public ``submit_ready``/``wait_one`` protocol exactly as
    :meth:`Pilot._run_scan` does, stopping once ``budget_s`` wall seconds
    elapse.  At 10⁶ pending tasks the reference spends the whole window
    inside its O(backlog) submission passes (every completion re-tries
    every pending task), so very few events land — that *is* its
    events/sec at this scale, not a sampling artifact.  The
    matched-scale measurement complements this with a full-run
    comparison at a size the reference completes.
    """
    tasks = _gpu_flood(n_tasks, seed)
    allocation = Allocation(
        node_ids=list(range(n_nodes)), spec=SUMMIT_NODE, granted_at=0.0
    )
    executor = SimExecutor(launch_overhead=0.1)
    events = 0
    t0 = time.perf_counter()
    with Pilot(
        allocation,
        executor,
        tracer=NULL_TRACER,
        policy="first_fit_scan",
        keep_records=False,
    ) as pilot:
        pending = list(tasks)
        while (pending or pilot.n_running) and time.perf_counter() - t0 < budget_s:
            pending = pilot.submit_ready(pending)
            if pilot.n_running == 0:
                break
            pilot.wait_one()
            events = len(pilot.log) * EVENTS_PER_ATTEMPT
    seconds = time.perf_counter() - t0
    return {
        "n_tasks": n_tasks,
        "n_events": events,
        "seconds": round(seconds, 2),
        "events_per_sec": round(events / seconds, 1) if seconds > 0 else 0.0,
        "window_seconds": budget_s,
    }


def measure_matched(n_tasks: int, n_nodes: int, seed: int) -> dict:
    """Full-run comparison at a scale the reference loop completes."""
    t0 = time.perf_counter()
    ref = _campaign("first_fit_scan", n_tasks, n_nodes, seed, False, False)
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    opt = _campaign("first_fit", n_tasks, n_nodes, seed, False, False)
    opt_s = time.perf_counter() - t0
    events = len(opt.log) * EVENTS_PER_ATTEMPT
    return {
        "n_tasks": n_tasks,
        "identical": ref.log.digest() == opt.log.digest(),
        "reference_seconds": round(ref_s, 2),
        "optimized_seconds": round(opt_s, 2),
        "reference_events_per_sec": round(events / ref_s, 1),
        "optimized_events_per_sec": round(events / opt_s, 1),
        "speedup": round(ref_s / opt_s, 2),
    }


def _burn(n: int) -> int:
    """CPU-bound payload (pure-Python arithmetic — the GIL's worst case)."""
    acc = 0
    for i in range(n):
        acc = (acc + i * i) % 1_000_003
    return acc


def _drive_real(executor, n_tasks: int, spin: int) -> float:
    """Run ``n_tasks`` CPU-bound tasks to completion; returns wall seconds."""
    t0 = time.perf_counter()
    with executor:
        for i in range(n_tasks):
            record = TaskRecord(
                spec=TaskSpec(name=f"burn-{i}", cpus=1, fn=_burn, args=(spin,)),
                state=TaskState.SCHEDULED,
            )
            executor.start(record)
        for _ in range(n_tasks):
            record = executor.next_completion()
            assert record.state is TaskState.DONE, record.error
    return time.perf_counter() - t0


def compare_process_thread(n_tasks: int, spin: int, workers: int) -> dict:
    """Process pool vs thread pool on the CPU-bound workload.

    On a multi-core host the process pool must win (threads serialize on
    the GIL; processes do not).  On a single-core host no backend can
    parallelize, so the comparison is reported but not gated —
    ``parallelism_available`` records which regime was measured.
    """
    cpus = os.cpu_count() or 1
    thread_s = _drive_real(ThreadExecutor(max_workers=workers), n_tasks, spin)
    process_s = _drive_real(ProcessExecutor(max_workers=workers), n_tasks, spin)
    return {
        "n_tasks": n_tasks,
        "spin": spin,
        "workers": workers,
        "cpu_count": cpus,
        "parallelism_available": cpus > 1,
        "thread_seconds": round(thread_s, 2),
        "process_seconds": round(process_s, 2),
        "process_speedup": round(thread_s / process_s, 2),
        "process_beats_thread": process_s < thread_s,
    }


def run_benchmark(
    seed: int,
    identity_tasks: int,
    identity_nodes: int,
    campaign_tasks: int,
    campaign_nodes: int,
    matched_tasks: int,
    matched_nodes: int,
    reference_window_s: float,
    shootout_tasks: int,
    shootout_nodes: int,
    burn_tasks: int,
    burn_spin: int,
    burn_workers: int,
) -> dict:
    identity = check_identity(identity_tasks, identity_nodes, seed)
    optimized = measure_optimized(campaign_tasks, campaign_nodes, seed)
    reference = measure_reference_window(
        campaign_tasks, campaign_nodes, seed, reference_window_s
    )
    matched = measure_matched(matched_tasks, matched_nodes, seed)
    shootout = run_shootout(
        n_tasks=shootout_tasks,
        n_nodes=shootout_nodes,
        seed=seed,
        n_raptor_items=2 * shootout_tasks,
        n_raptor_workers=64,
    )
    backends = compare_process_thread(burn_tasks, burn_spin, burn_workers)
    speedup = (
        optimized["events_per_sec"] / reference["events_per_sec"]
        if reference["events_per_sec"]
        else 0.0
    )
    metrics = {
        "identity": identity,
        "campaign": {
            "events_per_sec_definition": (
                "simulated scheduler events per wall second; one event is "
                "one attempt start or one attempt completion "
                f"({EVENTS_PER_ATTEMPT} per attempt)"
            ),
            "optimized": optimized,
            "reference_window": reference,
            "speedup_events_per_sec": round(speedup, 2),
        },
        "matched_scale": matched,
        "shootout": [s.as_dict() for s in shootout],
        "backends": backends,
    }
    return bench_report(
        "scheduler",
        seed=seed,
        config={
            "identity": {"n_tasks": identity_tasks, "n_nodes": identity_nodes},
            "campaign": {"n_tasks": campaign_tasks, "n_nodes": campaign_nodes},
            "matched": {"n_tasks": matched_tasks, "n_nodes": matched_nodes},
            "shootout": {"n_tasks": shootout_tasks, "n_nodes": shootout_nodes},
            "burn": {
                "n_tasks": burn_tasks,
                "spin": burn_spin,
                "workers": burn_workers,
            },
        },
        metrics=metrics,
    )


def _verdict(report: dict, require_speedup: float | None) -> int:
    """Gate: identity must hold; optionally require the headline speedup."""
    m = report["metrics"]
    failed = False
    if not m["identity"]["identical"]:
        print("FAIL: optimized scheduler is not bit-identical to reference")
        failed = True
    if not m["matched_scale"]["identical"]:
        print("FAIL: matched-scale digests diverge")
        failed = True
    if not m["backends"]["process_beats_thread"]:
        if m["backends"]["parallelism_available"]:
            print("FAIL: process backend did not beat thread backend")
            failed = True
        else:
            print(
                "NOTE: single-core host; process-vs-thread comparison "
                "reported but not gated"
            )
    if (
        require_speedup is not None
        and m["campaign"]["speedup_events_per_sec"] < require_speedup
    ):
        print(
            f"FAIL: events/sec speedup "
            f"{m['campaign']['speedup_events_per_sec']} < {require_speedup}"
        )
        failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--campaign-tasks", type=int, default=1_000_000)
    parser.add_argument("--campaign-nodes", type=int, default=4608)
    parser.add_argument("--reference-window", type=float, default=60.0,
                        help="wall seconds to sample the reference loop")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_scheduler.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run, no JSON; exit non-zero on identity/backend failure",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_benchmark(
            seed=args.seed,
            identity_tasks=600, identity_nodes=16,
            campaign_tasks=20_000, campaign_nodes=256,
            matched_tasks=4_000, matched_nodes=64,
            reference_window_s=10.0,
            shootout_tasks=300, shootout_nodes=8,
            burn_tasks=12, burn_spin=1_500_000, burn_workers=4,
        )
        print(json.dumps(report["metrics"]["identity"], indent=2))
        print(json.dumps(report["metrics"]["backends"], indent=2))
        rc = _verdict(report, require_speedup=None)
        if rc == 0:
            camp = report["metrics"]["campaign"]
            print(
                "smoke OK: "
                f"{camp['optimized']['events_per_sec']} events/s optimized, "
                f"{camp['speedup_events_per_sec']}x over reference window"
            )
        return rc

    report = run_benchmark(
        seed=args.seed,
        identity_tasks=5_000, identity_nodes=64,
        campaign_tasks=args.campaign_tasks,
        campaign_nodes=args.campaign_nodes,
        matched_tasks=10_000, matched_nodes=128,
        reference_window_s=args.reference_window,
        shootout_tasks=2_000, shootout_nodes=32,
        burn_tasks=32, burn_spin=2_000_000, burn_workers=8,
    )
    print(json.dumps(report, indent=2))
    rc = _verdict(report, require_speedup=args.min_speedup)
    if rc == 0:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
