"""Ablation — ADADELTA vs Solis–Wets local search (§5.1.1).

"One of these methods, ADADELTA, has proven to increase significantly
the docking quality in terms of RMSDs and scores."

At a matched evaluation budget (Solis–Wets spends 2 evaluations per
iteration on the forward + mirrored probes), the gradient method must
find lower scores — on refinement of identical random pose batches and
inside full LGA docking runs.
"""

import numpy as np
import pytest

from repro.chem import generate_library
from repro.docking import DockingEngine, LGAConfig, make_receptor
from repro.docking.lga import _random_quaternions
from repro.docking.ligand import prepare_ligand
from repro.docking.local_search import (
    Adadelta,
    AdadeltaConfig,
    SolisWets,
    SolisWetsConfig,
)
from repro.util.rng import rng_stream

N_LIGANDS = 8


@pytest.fixture(scope="module")
def setup():
    receptor = make_receptor("PLPro", "6W9C", seed=2021)
    library = generate_library(N_LIGANDS, seed=5)
    return receptor, library


def test_refinement_quality_at_matched_budget(benchmark, setup):
    receptor, library = setup
    ad = Adadelta(AdadeltaConfig(max_iters=40))
    sw = SolisWets(SolisWetsConfig(max_iters=20))  # 2 evals/iter → same budget

    def run():
        gaps = []
        for i in range(N_LIGANDS):
            beads = prepare_ligand(library.molecule(i), rng_stream(i, "abl/prep"))
            rng = rng_stream(i, "abl/poses")
            k = 12
            conf = rng.integers(beads.n_conformers, size=k)
            trans = rng.uniform(-5, 5, size=(k, 3))
            quats = _random_quaternions(rng, k)
            a = ad.refine_batch(
                receptor, beads, conf, trans.copy(), quats.copy(), rng_stream(i, "abl/ad")
            )
            s = sw.refine_batch(
                receptor, beads, conf, trans.copy(), quats.copy(), rng_stream(i, "abl/sw")
            )
            gaps.append(s.scores.mean() - a.scores.mean())
        return np.array(gaps)

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nADADELTA advantage per ligand (kcal/mol, >0 = better): "
          f"{np.round(gaps, 2).tolist()}")
    print(f"mean advantage: {gaps.mean():.2f} kcal/mol; "
          f"wins {int((gaps > 0).sum())}/{len(gaps)}")
    assert gaps.mean() > 0
    assert (gaps > 0).mean() >= 0.7


def test_full_docking_quality(benchmark, setup):
    """End-to-end: LGA with each local search, identical eval budgets."""
    receptor, library = setup
    cfg = LGAConfig(population=12, generations=6, local_search_rate=0.3)

    def run():
        scores = {}
        for method in ("adadelta", "solis-wets"):
            engine = DockingEngine(receptor, seed=0, config=cfg, local_search=method)
            results = engine.dock_library(library)
            scores[method] = (
                float(np.mean([r.score for r in results])),
                engine.total_evals,
            )
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    ad_mean, ad_evals = scores["adadelta"]
    sw_mean, sw_evals = scores["solis-wets"]
    print(f"\nfull LGA: adadelta mean {ad_mean:.2f} ({ad_evals} evals) vs "
          f"solis-wets mean {sw_mean:.2f} ({sw_evals} evals)")
    # ADADELTA reaches at-least-comparable quality with fewer evaluations
    assert ad_evals < sw_evals
    assert ad_mean < sw_mean + 2.0
