"""§8 throughput claims — sustained docking rate and the ML1 advantage.

Two headline numbers from the implications section, measured on the
simulated infrastructure:

* "we sustained 40M docking hits per hour over 24 hours on 4000 nodes"
  (and "up to 5×10⁷ docking-hits per hour … on ~4000 nodes");
* ML1 screens compounds orders of magnitude faster than docking per
  ligand, which is what buys the claimed ~1000× end-to-end improvement
  when it filters the library upstream of S1.
"""

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.rct.raptor import RaptorConfig, simulate_raptor
from repro.util.rng import rng_stream


@pytest.fixture(scope="module")
def sustained_run():
    """One simulated hour of docking on 4000 nodes (24,000 GPUs)."""
    cm = CostModel()
    workers = 4000 * cm.node.gpus
    mean = cm.docking_wall_seconds(1)  # sustained (whole-app) rate
    rng = rng_stream(0, "bench/sustained")
    # enough items for ≈ 1 virtual hour of work
    n_items = int(workers * 3600.0 / mean)
    durations = rng.lognormal(np.log(mean) - 0.245, 0.7, size=n_items)
    cfg = RaptorConfig(
        n_workers=workers,
        n_masters=workers // 128,
        bulk_size=64,
        dispatch_overhead=0.05,
    )
    return simulate_raptor(durations, cfg), cm


def test_docking_hits_per_hour(benchmark, sustained_run):
    result, _ = sustained_run
    per_hour = benchmark(lambda: result.throughput * 3600.0)
    print(f"\nsustained docking throughput on 4000 simulated nodes: "
          f"{per_hour / 1e6:.1f}M hits/hour (paper: 40–50M)")
    assert 15e6 < per_hour < 80e6
    assert result.worker_utilization > 0.6


def test_ml1_per_ligand_advantage(benchmark, sustained_run):
    """ML1 must be ≥ 2 orders of magnitude cheaper per ligand than
    docking — the filter that expands screenable library size by 4-6
    orders (§5.1's 'Putting it together')."""
    _, cm = sustained_run
    ratio = benchmark(
        lambda: cm.docking_wall_seconds(1, peak=True)
        * cm.ml1_ligands_per_gpu_second
    )
    print(f"\nML1 vs docking per-ligand speedup: {ratio:.0f}x")
    assert ratio > 50


def test_campaign_scale_feasibility(benchmark):
    """§8: 'screened ~1e11 ligands' — with the measured ML1 rate, a
    1e11-compound sweep fits in the paper's reported 2.5M node-hours."""
    cm = CostModel()

    def node_hours_for_1e11():
        ml1_gpu_seconds = 1e11 / cm.ml1_ligands_per_gpu_second
        ml1_node_hours = ml1_gpu_seconds / cm.node.gpus / 3600.0
        # top 1% forwarded to docking (§5.1: "filtering the top 1%")
        dock_node_hours = 1e9 * cm.node_hours_per_ligand("S1")
        return ml1_node_hours + dock_node_hours

    total = benchmark(node_hours_for_1e11)
    print(f"\nML1(1e11) + S1(1e9) ≈ {total/1e3:.0f}k node-hours "
          f"(campaign budget: 2,500k)")
    assert total < 2.5e6
