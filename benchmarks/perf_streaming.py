"""Streaming library pipeline benchmark: throughput and flat RSS.

Exercises the §6.1.1 shape at scale on one box: a seeded compound pool is
cycled into gzip NDJSON shards on disk (streamed writes, bounded memory),
then the whole shard set flows back through ``ShardReader`` +
``PrefetchLoader`` with bounded queues while a fixed-size top-K selector
consumes the stream — the IO/selection spine of a 10^7-compound screen.
A sub-stream additionally runs full ML1 scoring (featurize + compiled
surrogate, checkpointed per shard) to measure the end-to-end scoring
rate; scoring 10^7 compounds through the CNN is a GPU-fleet job in the
paper and is extrapolated from that measured rate here.

The headline assertion is **flat RSS**: resident set size is sampled
throughout the read phase, and the run fails if late-phase RSS grows
beyond a small tolerance over the post-warmup baseline — i.e. memory
must not scale with the number of records streamed.

Usage::

    PYTHONPATH=src python benchmarks/perf_streaming.py            # 10^7 records
    PYTHONPATH=src python benchmarks/perf_streaming.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench import bench_report, write_report  # noqa: E402

from repro.chem.library import generate_library
from repro.core.streaming import _TopK
from repro.nn.dataloader import PrefetchLoader, ShardReader
from repro.surrogate.infer import InferenceEngine, ScoredCompound
from repro.surrogate.train import TrainConfig, train_surrogate
from repro.util.checkpoint import CheckpointManifest
from repro.util.shardio import shard_path, write_shard

_PAGE = os.sysconf("SC_PAGE_SIZE")


def _rss_kb() -> int:
    """Current resident set size in KiB (Linux /proc, no psutil)."""
    with open("/proc/self/statm") as fh:
        return int(fh.read().split()[1]) * _PAGE // 1024


def _write_stream_shards(
    directory: Path, pool, n_records: int, shard_size: int
) -> tuple[list[Path], float]:
    """Cycle the compound pool into ``n_records`` NDJSON shard records."""
    t0 = time.perf_counter()
    paths = []
    n_pool = len(pool)
    written = 0
    s = 0
    while written < n_records:
        count = min(shard_size, n_records - written)
        records = [
            (f"STR{written + i:09d}", pool[(written + i) % n_pool].smiles)
            for i in range(count)
        ]
        path = shard_path(directory, "bench", s, format="ndjson")
        write_shard(path, records)
        paths.append(path)
        written += count
        s += 1
    return paths, time.perf_counter() - t0


def _pipeline_phase(
    paths: list[Path], batch_size: int, keep_top: int
) -> tuple[int, float, list[int]]:
    """Stream every shard through the prefetch pipeline + top-K selector.

    The selector scores records with a cheap deterministic proxy (SMILES
    hash → [0,1]) so selection pressure — the bounded-heap part of the
    campaign — is exercised without the CNN.  Returns
    ``(records, seconds, rss_samples_kb)``.
    """
    top = _TopK(keep_top)
    rss: list[int] = []
    n = 0
    t0 = time.perf_counter()
    loader = PrefetchLoader(ShardReader(paths), batch_size=batch_size)
    for batch in loader:
        for cid, smiles in batch:
            top.offer(ScoredCompound(cid, smiles, (hash(smiles) & 0xFFFF) / 65535.0))
        n += len(batch)
        if (n // batch_size) % 32 == 0:
            rss.append(_rss_kb())
    dt = time.perf_counter() - t0
    assert len(top.ranked()) == min(keep_top, n)
    return n, dt, rss


def _score_phase(
    paths: list[Path], pool, seed: int, batch_size: int, ckpt_dir: Path
) -> tuple[int, float]:
    """Full ML1 scoring (featurize + compiled surrogate) on a sub-stream."""
    rng = np.random.default_rng(seed)
    surrogate = train_surrogate(
        [e.smiles for e in pool[:64]],
        rng.normal(size=64),
        TrainConfig(epochs=2, width=4),
        seed=seed,
    )
    engine = InferenceEngine(surrogate, batch_size=batch_size)
    manifest = CheckpointManifest(ckpt_dir / "ml1-manifest.jsonl")
    n = 0
    t0 = time.perf_counter()
    for _sid, scored in engine.iter_score_shards(
        paths, checkpoint=manifest, artifact_dir=ckpt_dir / "ml1"
    ):
        n += len(scored)
    return n, time.perf_counter() - t0


def _flatness(rss: list[int]) -> dict:
    """Flat-RSS verdict: late-phase peak vs post-warmup baseline."""
    if len(rss) < 4:
        return {"flat": True, "baseline_kb": rss[0] if rss else 0,
                "late_peak_kb": rss[-1] if rss else 0, "growth": 0.0}
    warmup = max(1, len(rss) // 10)
    baseline = max(rss[:warmup])
    late_peak = max(rss[len(rss) // 2 :])
    growth = (late_peak - baseline) / baseline
    # tolerance: allocator noise + fragmentation, not data growth
    flat = late_peak <= baseline * 1.25 + 49152
    return {
        "flat": bool(flat),
        "baseline_kb": int(baseline),
        "late_peak_kb": int(late_peak),
        "growth": round(growth, 4),
    }


def run_benchmark(
    records: int,
    shard_size: int,
    batch_size: int,
    keep_top: int,
    score_records: int,
    seed: int,
) -> dict:
    pool = generate_library(512, seed=seed, name="pool").entries
    with tempfile.TemporaryDirectory(prefix="perf-streaming-") as tmp:
        tmp = Path(tmp)
        paths, write_dt = _write_stream_shards(
            tmp / "shards", pool, records, shard_size
        )
        n_read, read_dt, rss = _pipeline_phase(paths, batch_size, keep_top)
        assert n_read == records, f"stream dropped records: {n_read} != {records}"
        score_paths, _ = _write_stream_shards(
            tmp / "score-shards", pool, score_records, min(shard_size, 2048)
        )
        n_scored, score_dt = _score_phase(
            score_paths, pool, seed, batch_size, tmp / "ckpt"
        )
        assert n_scored == score_records
    flat = _flatness(rss)
    score_rate = n_scored / score_dt
    metrics = {
        "write": {
            "records_per_sec": round(records / write_dt, 1),
            "seconds": round(write_dt, 2),
            "n_shards": len(paths),
        },
        "stream": {
            "records_per_sec": round(records / read_dt, 1),
            "seconds": round(read_dt, 2),
            "records": records,
        },
        "ml1_score": {
            "records_scored": n_scored,
            "samples_per_sec": round(score_rate, 1),
            "projected_hours_for_stream": round(records / score_rate / 3600, 2),
        },
        "rss": flat,
    }
    return bench_report(
        "streaming",
        seed=seed,
        config={
            "records": records,
            "shard_size": shard_size,
            "batch_size": batch_size,
            "keep_top": keep_top,
            "score_records": score_records,
        },
        metrics=metrics,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000_000)
    parser.add_argument("--shard-size", type=int, default=50_000)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--keep-top", type=int, default=1000)
    parser.add_argument("--score-records", type=int, default=4096,
                        help="records run through full ML1 scoring")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_streaming.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run, no JSON; exit non-zero if RSS is not flat or "
        "records are dropped",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_benchmark(
            records=120_000, shard_size=10_000, batch_size=256,
            keep_top=100, score_records=512, seed=args.seed,
        )
    else:
        report = run_benchmark(
            records=args.records,
            shard_size=args.shard_size,
            batch_size=args.batch_size,
            keep_top=args.keep_top,
            score_records=args.score_records,
            seed=args.seed,
        )
    print(json.dumps(report, indent=2))

    if not report["metrics"]["rss"]["flat"]:
        print("FAIL: RSS grew with stream length (not flat)")
        return 1
    if args.smoke:
        print(f"smoke OK: {report['metrics']['stream']['records_per_sec']} rec/s, "
              f"RSS flat (baseline {report['metrics']['rss']['baseline_kb']} KiB, "
              f"late peak {report['metrics']['rss']['late_peak_kb']} KiB)")
        return 0
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
