"""Eager vs. graph-compiled surrogate *training* benchmark.

Trains two identically-seeded SmilesNets on identical seeded batches —
one through the eager interpreter loop (forward, ``backward()``,
``Adam.step()``), one through the compiled
:class:`~repro.nn.graph.train.TrainStep` (traced fwd+bwd+optimizer
replayed as ``out=`` kernels over one arena) — and writes
``BENCH_training.json`` (the shared ``_bench`` envelope) with
steady-state steps/sec per engine, the speedup, and the compiled step's
plan statistics (op/kernel counts, in-place rewrites, arena bytes, pass
rewrite counts).

The two engines must agree **bitwise**: every per-step loss, every final
weight, every Adam moment, every BatchNorm running statistic.  The eager
loop is the oracle; the benchmark verifies the whole trajectory on every
round and fails loudly if equivalence ever drifts.

Timing rounds interleave the two engines (both keep training on the same
seeded batch stream, so their weights stay in lock-step), and the
reported time is each engine's best round — a noisy co-tenant slows both
paths rather than biasing the ratio.  The one-time trace/compile step is
excluded from timing (and reported separately).

Usage::

    PYTHONPATH=src python benchmarks/perf_training.py            # full (batch 64)
    PYTHONPATH=src python benchmarks/perf_training.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench import bench_report, write_report  # noqa: E402

from repro.nn.autograd import Tensor
from repro.nn.graph.train import TrainStep
from repro.nn.layers import BatchNorm
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.surrogate.model import build_smilesnet

N_CHANNELS = 7
IMAGE_SIZE = 24
LEARNING_RATE = 3e-3


def _make_batches(batch: int, n_batches: int, seed: int) -> list[tuple]:
    """Seeded (x, y) minibatches shared verbatim by both engines."""
    rng = np.random.default_rng(seed + 2)
    out = []
    for _ in range(n_batches):
        x = rng.normal(size=(batch, N_CHANNELS, IMAGE_SIZE, IMAGE_SIZE))
        y = rng.random((batch, 1))
        out.append((x, y))
    return out


class _EagerTrainer:
    """The oracle: interpreter loop with in-place Adam."""

    def __init__(self, seed: int, width: int) -> None:
        self.model = build_smilesnet(seed=seed, width=width)
        self.opt = Adam(self.model.parameters(), lr=LEARNING_RATE)

    def step(self, x: np.ndarray, y: np.ndarray) -> float:
        loss = mse_loss(self.model(Tensor(x)), Tensor(y))
        self.model.zero_grad()
        loss.backward()
        self.opt.step()
        return loss.item()


class _GraphTrainer:
    """The compiled path: one TrainStep replaying fwd+bwd+Adam."""

    def __init__(self, seed: int, width: int) -> None:
        self.model = build_smilesnet(seed=seed, width=width)
        self.opt = Adam(self.model.parameters(), lr=LEARNING_RATE)
        self.step_fn = TrainStep(
            lambda xb, yb: mse_loss(self.model(xb), yb), self.opt
        )

    def step(self, x: np.ndarray, y: np.ndarray) -> float:
        return self.step_fn(x, y)


def _state(trainer) -> list[np.ndarray]:
    """Everything that must match bitwise: weights, moments, BN stats."""
    arrs = [p.data for p in trainer.model.parameters()]
    arrs += [m for m in trainer.opt._m] + [v for v in trainer.opt._v]
    for mod in trainer.model.modules():
        if isinstance(mod, BatchNorm):
            arrs += [mod.running_mean, mod.running_var]
    return arrs


def _identical(a: list[np.ndarray], b: list[np.ndarray]) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(x, y) for x, y in zip(a, b)
    )


def _timed_steps(trainer, batches) -> tuple[list[float], float]:
    """Run one pass over the batches → (per-step losses, seconds)."""
    t0 = time.perf_counter()
    losses = [trainer.step(x, y) for x, y in batches]
    return losses, time.perf_counter() - t0


def run_benchmark(
    batch: int, n_batches: int, rounds: int, seed: int, width: int
) -> dict:
    """Interleaved eager/graph training rounds over identical batches."""
    eager = _EagerTrainer(seed, width)
    graph = _GraphTrainer(seed, width)
    batches = _make_batches(batch, n_batches, seed)

    # warm-up pass: the graph engine's first call is the trace+compile
    t0 = time.perf_counter()
    graph.step(*batches[0])
    trace_seconds = time.perf_counter() - t0
    eager.step(*batches[0])

    eager_times, graph_times = [], []
    identical = _identical(_state(eager), _state(graph))
    for _ in range(rounds):
        eager_losses, eager_dt = _timed_steps(eager, batches)
        graph_losses, graph_dt = _timed_steps(graph, batches)
        eager_times.append(eager_dt)
        graph_times.append(graph_dt)
        identical = (
            identical
            and eager_losses == graph_losses
            and _identical(_state(eager), _state(graph))
        )

    eager_best = min(eager_times)
    graph_best = min(graph_times)
    info = next(iter(graph.step_fn.plan_info().values()))
    metrics = {
        "eager": {
            "seconds": round(eager_best, 4),
            "steps_per_sec": round(n_batches / eager_best, 2),
        },
        "graph": {
            "seconds": round(graph_best, 4),
            "steps_per_sec": round(n_batches / graph_best, 2),
            "trace_seconds": round(trace_seconds, 4),
            "n_ops": info["n_ops"],
            "n_kernels": info["n_kernels"],
            "n_inplace": info["n_inplace"],
            "arena_bytes": info["arena_bytes"],
            "arena_elems": info["arena_elems"],
            "naive_elems": info["naive_elems"],
            "pass_stats": info["pass_stats"],
        },
        "speedup": round(eager_best / graph_best, 2),
        "identical": identical,
    }
    return bench_report(
        "training",
        seed=seed,
        config={
            "batch": batch,
            "n_batches": n_batches,
            "rounds": rounds,
            "width": width,
            "optimizer": "adam",
            "learning_rate": LEARNING_RATE,
        },
        metrics=metrics,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--batches", type=int, default=8, help="steps per round")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--width", type=int, default=12, help="SmilesNet width")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_training.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run, no JSON; exit non-zero if the compiled step is "
        "slower than eager or the trajectories drift",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_benchmark(
            batch=16, n_batches=2, rounds=1, seed=args.seed, width=6
        )
    else:
        report = run_benchmark(
            batch=args.batch,
            n_batches=args.batches,
            rounds=args.rounds,
            seed=args.seed,
            width=args.width,
        )
    print(json.dumps(report, indent=2))

    metrics = report["metrics"]
    if not metrics["identical"]:
        print("FAIL: eager and compiled training trajectories drifted")
        return 1
    if args.smoke:
        if metrics["speedup"] < 1.0:
            print("FAIL: compiled TrainStep slower than eager in smoke run")
            return 1
        print(f"smoke OK: compiled {metrics['speedup']}x, trajectories identical")
        return 0
    if metrics["speedup"] < 2.0:
        print(f"FAIL: speedup {metrics['speedup']}x below the 2x target")
        return 1
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
