"""Fig 7 — node-utilization time series of the integrated
(S3-CG)-(S2)-(S3-FG) execution.

The figure's claims, checked on the simulated Summit pilot:

* the three heterogeneous multi-stage workflows execute *integrated* on
  one pilot, with per-stage utilization bands;
* overall utilization is high while work is available;
* the scheduling overheads (light vertical gaps) are **invariant to
  scale** — "they do not depend on the number of concurrent tasks
  executed or on the length of those tasks."
"""

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.core.simulate import SimulatedCampaignConfig, simulate_integrated_run

BASE = SimulatedCampaignConfig(
    n_nodes=120, cg_compounds=96, s2_compounds=12, fg_compounds=24, cohorts=6
)


@pytest.fixture(scope="module")
def pilot():
    return simulate_integrated_run(BASE, CostModel())


def test_fig7_series(benchmark, pilot):
    series = benchmark(lambda: pilot.utilization.series())
    print("\nFig 7 — GPU utilization, integrated (S3-CG)-(S2)-(S3-FG) run")
    print(series.ascii_plot(width=66, height=10))
    print(f"  stages: {sorted(series.per_stage)}; "
          f"mean utilization {series.average_utilization():.2f}")
    assert set(series.per_stage) == {"S3-CG", "S2", "S3-FG"}
    assert series.average_utilization() > 0.25
    # every stage actually occupied GPUs at some point
    for stage, busy in series.per_stage.items():
        assert busy.max() > 0, stage


def test_stages_overlap_in_time(benchmark, pilot):
    """Integration means concurrency: some instant has ≥ 2 distinct
    stages running (pipelines progress at their own pace)."""
    series = benchmark(lambda: pilot.utilization.series())
    active = np.stack([series.per_stage[s] > 0 for s in sorted(series.per_stage)])
    assert (active.sum(axis=0) >= 2).any()


def test_overhead_invariant_to_scale(benchmark):
    """Double the nodes and the work: overhead fraction stays flat."""

    def overheads():
        out = []
        for scale in (1, 2):
            cfg = SimulatedCampaignConfig(
                n_nodes=60 * scale,
                cg_compounds=48 * scale,
                s2_compounds=6 * scale,
                fg_compounds=12 * scale,
                cohorts=3 * scale,
            )
            p = simulate_integrated_run(cfg, CostModel())
            out.append(
                p.utilization.overhead_fraction(cfg.launch_overhead, len(p.records))
            )
        return out

    small, large = benchmark.pedantic(overheads, rounds=1, iterations=1)
    print(f"\noverhead fraction: {small:.4f} (60 nodes) vs {large:.4f} (120 nodes)")
    assert large <= small * 2.0 + 1e-4


def test_makespan_close_to_critical_path(benchmark, pilot):
    """The pilot should not serialize what could run in parallel: the
    makespan is within 2x of the resource bound."""
    series = pilot.utilization.series()
    spec = CostModel().node
    total_gpu_seconds = sum(
        r.node_seconds(spec.gpus, spec.cpus) * spec.gpus for r in pilot.records
    )
    bound = benchmark(
        lambda: total_gpu_seconds / (BASE.n_nodes * spec.gpus)
    )
    makespan = series.times[-1] - series.times[0]
    print(f"\nmakespan {makespan:.0f}s vs resource bound {bound:.0f}s")
    assert makespan < 4.0 * bound
