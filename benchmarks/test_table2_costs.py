"""Table 2 — normalized computational costs on Summit.

Regenerates the node-hours-per-ligand table from the calibrated cost
model and *measures* the same quantities from a simulated pilot run, so
the table is a product of execution, not just arithmetic.

| Method   | Nodes/ligand | Node-hours/ligand (paper) |
|----------|--------------|---------------------------|
| S1       | 1/6          | ~0.0001                   |
| S3-CG    | 1            | 0.5                       |
| S2       | 2            | 4                         |
| S3-FG    | 4            | 5                         |
| TI       | 64           | 640                       |
"""

import pytest

from repro.core.costs import PAPER_TABLE2, CostModel
from repro.esmacs.protocol import CG, FG
from repro.rct.cluster import Cluster
from repro.rct.executor import SimExecutor
from repro.rct.pilot import Pilot


@pytest.fixture(scope="module")
def cost_model():
    return CostModel()


@pytest.fixture(scope="module")
def measured(cost_model):
    """Measure node-hours/ligand by running tasks on a simulated pilot."""
    cluster = Cluster(64, cost_model.node)
    n_ligands = {"S1": 600, "S3-CG": 12, "S2": 4, "S3-FG": 4}
    tasks = []
    # S1: one GPU task bundling many ligands, as RAPTOR workers run them
    tasks.append(cost_model.docking_task(n_ligands["S1"]))
    tasks += [cost_model.esmacs_task(CG, f"cg{i}", "S3-CG") for i in range(n_ligands["S3-CG"])]
    tasks += [cost_model.s2_task(f"s2-{i}") for i in range(n_ligands["S2"])]
    tasks += [cost_model.esmacs_task(FG, f"fg{i}", "S3-FG") for i in range(n_ligands["S3-FG"])]
    with Pilot(cluster.allocate(64, 0.0), SimExecutor(launch_overhead=0.0)) as pilot:
        records = pilot.run(tasks)
    spec = cost_model.node
    per_ligand = {}
    for stage, n in n_ligands.items():
        node_h = sum(
            r.node_seconds(spec.gpus, spec.cpus) / 3600.0
            for r in records
            if r.spec.stage == stage
        )
        per_ligand[stage] = node_h / n
    return per_ligand


def test_table2_rows(benchmark, cost_model, measured):
    rows = benchmark(
        lambda: {
            stage: (
                cost_model.nodes_per_ligand(stage),
                cost_model.node_hours_per_ligand(stage),
            )
            for stage in PAPER_TABLE2
        }
    )
    print("\nTable 2 — node-hours per ligand (derived | measured | paper)")
    for stage, paper in PAPER_TABLE2.items():
        nodes, derived = rows[stage]
        meas = measured.get(stage)
        meas_s = f"{meas:12.5f}" if meas is not None else "        (n/a)"
        print(f"  {stage:6s} nodes={nodes:7.3f}  {derived:12.5f} {meas_s} {paper:12.5f}")
    # every derived row within 25% of the paper's (rounded) numbers
    for stage, paper in PAPER_TABLE2.items():
        assert rows[stage][1] == pytest.approx(paper, rel=0.25)


def test_measured_matches_derived(benchmark, cost_model, measured):
    check = benchmark(lambda: measured)
    for stage, value in check.items():
        assert value == pytest.approx(
            cost_model.node_hours_per_ligand(stage), rel=0.05
        ), stage


def test_six_orders_of_magnitude_range(benchmark, cost_model):
    """§3.2: methods span >6 orders of magnitude of per-ligand cost."""
    ratio = benchmark(
        lambda: cost_model.node_hours_per_ligand("TI")
        / cost_model.node_hours_per_ligand("S1")
    )
    assert ratio > 1e6
