"""Shared benchmark-report writer.

Every ``BENCH_*.json`` artifact carries the same envelope so CI and the
analysis notebooks can consume any benchmark uniformly:

```json
{
  "schema": "repro-bench/1",
  "name": "docking",
  "seed": 11,
  "host": {"hostname": ..., "platform": ..., "python": ..., "numpy": ...},
  "git_rev": "1d1f1e7",
  "config": {... benchmark knobs ...},
  "metrics": {... measured numbers ...}
}
```

``bench_report`` builds the envelope, ``write_report`` persists it,
``merge`` combines several reports into one document keyed by benchmark
name, and ``validate_report`` checks the schema (CI runs
``python benchmarks/_bench.py --validate BENCH_*.json``).
"""

from __future__ import annotations

import argparse
import json
import platform
import socket
import subprocess
import sys
from pathlib import Path

SCHEMA = "repro-bench/1"

__all__ = ["SCHEMA", "bench_report", "write_report", "merge", "validate_report"]


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _host_info() -> dict:
    import numpy as np

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def bench_report(name: str, seed: int, config: dict, metrics: dict) -> dict:
    """Wrap one benchmark's knobs and measurements in the common envelope."""
    return {
        "schema": SCHEMA,
        "name": name,
        "seed": int(seed),
        "host": _host_info(),
        "git_rev": _git_rev(),
        "config": dict(config),
        "metrics": dict(metrics),
    }


def write_report(report: dict, path: Path | str) -> Path:
    """Write one report as indented JSON (trailing newline, stable keys)."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def merge(reports: list[dict]) -> dict:
    """Combine reports into one document keyed by benchmark name.

    The merged document keeps one shared ``host``/``git_rev`` (from the
    first report) and nests each report's ``seed``/``config``/``metrics``
    under its name; duplicate names are an error.
    """
    if not reports:
        raise ValueError("no reports to merge")
    by_name: dict[str, dict] = {}
    for rep in reports:
        errors = validate_report(rep)
        if errors:
            raise ValueError(f"invalid report {rep.get('name')!r}: {errors[0]}")
        if rep["name"] in by_name:
            raise ValueError(f"duplicate benchmark name {rep['name']!r}")
        by_name[rep["name"]] = {
            "seed": rep["seed"],
            "config": rep["config"],
            "metrics": rep["metrics"],
        }
    return {
        "schema": SCHEMA,
        "name": "merged",
        "host": reports[0]["host"],
        "git_rev": reports[0]["git_rev"],
        "benchmarks": by_name,
    }


def validate_report(data) -> list[str]:
    """Schema errors for one report dict (empty list = valid)."""
    errors = []
    if not isinstance(data, dict):
        return ["report is not a JSON object"]
    if data.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {data.get('schema')!r}")
    if not isinstance(data.get("name"), str) or not data.get("name"):
        errors.append("name must be a non-empty string")
    if not isinstance(data.get("git_rev"), str):
        errors.append("git_rev must be a string")
    host = data.get("host")
    if not isinstance(host, dict):
        errors.append("host must be an object")
    else:
        for key in ("hostname", "platform", "python", "numpy"):
            if not isinstance(host.get(key), str):
                errors.append(f"host.{key} must be a string")
    if data.get("name") == "merged":
        benches = data.get("benchmarks")
        if not isinstance(benches, dict) or not benches:
            errors.append("merged report needs a non-empty benchmarks object")
        return errors
    if not isinstance(data.get("seed"), int):
        errors.append("seed must be an integer")
    if not isinstance(data.get("config"), dict):
        errors.append("config must be an object")
    if not isinstance(data.get("metrics"), dict) or not data.get("metrics"):
        errors.append("metrics must be a non-empty object")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path, help="BENCH JSON files")
    parser.add_argument("--validate", action="store_true",
                        help="check each file against the common schema")
    parser.add_argument("--merge", type=Path, default=None, metavar="OUT",
                        help="merge the files into one document at OUT")
    args = parser.parse_args(argv)

    reports = []
    failed = False
    for path in args.paths:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = validate_report(data)
        for err in errors:
            print(f"{path}: {err}", file=sys.stderr)
        failed = failed or bool(errors)
        if not errors:
            reports.append(data)
            if args.validate:
                print(f"{path}: OK ({data['name']})")
    if failed:
        return 1
    if args.merge is not None:
        write_report(merge(reports), args.merge)
        print(f"wrote {args.merge}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
