"""Eager vs. graph-compiled surrogate inference benchmark.

Streams the same seeded image batches through both ``compile_model``
engines — ``"eager"`` (closure-per-layer interpreter) and ``"graph"``
(traced op graph, fused epilogues, arena-planned ``out=`` kernels) — and
writes ``BENCH_inference.json`` (the shared ``_bench`` envelope) with
wall-clock, samples/sec, the
speedup, steady-state allocation footprints (via ``tracemalloc``) and
the graph engine's plan statistics (arena bytes, buffer count, fused
GEMM strategy counts, pass rewrite counts).

The two engines must agree **bitwise** at the benchmark batch size (the
graph engine's core contract); the benchmark verifies that on every
round and fails loudly if equivalence ever drifts.

Rounds interleave the two engines and the reported time is each engine's
best round, so a noisy co-tenant slows both paths rather than biasing
the ratio.

Usage::

    PYTHONPATH=src python benchmarks/perf_inference.py            # full (batch 64)
    PYTHONPATH=src python benchmarks/perf_inference.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench import bench_report, write_report  # noqa: E402

from repro.nn.autograd import Tensor
from repro.nn.inference import compile_model
from repro.surrogate.model import build_smilesnet

N_CHANNELS = 7
IMAGE_SIZE = 24


def _build_model(seed: int, width: int):
    """A seeded SmilesNet with warmed BatchNorm running statistics."""
    model = build_smilesnet(seed=seed, width=width)
    rng = np.random.default_rng(seed + 1)
    for _ in range(4):
        model(Tensor(rng.normal(size=(16, N_CHANNELS, IMAGE_SIZE, IMAGE_SIZE))))
    model.eval()
    return model


def _timed_pass(compiled, batches) -> tuple[np.ndarray, float]:
    """Run every batch through one engine → (stacked outputs, seconds)."""
    t0 = time.perf_counter()
    outs = [compiled(x) for x in batches]
    return np.concatenate(outs), time.perf_counter() - t0


def _steady_alloc_bytes(compiled, x) -> int:
    """Peak bytes allocated by one steady-state (warm) batch."""
    compiled(x)  # bind plans / warm caches outside the trace
    tracemalloc.start()
    compiled(x)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def run_benchmark(
    batch: int, n_batches: int, rounds: int, seed: int, width: int
) -> dict:
    """Interleaved eager/graph rounds over identical seeded batches."""
    model = _build_model(seed, width)
    rng = np.random.default_rng(seed + 2)
    batches = [
        rng.normal(size=(batch, N_CHANNELS, IMAGE_SIZE, IMAGE_SIZE))
        for _ in range(n_batches)
    ]
    eager = compile_model(model, "fp16", engine="eager")
    graph = compile_model(model, "fp16", engine="graph")
    eager(batches[0]), graph(batches[0])  # warm index caches and plans

    n_samples = batch * n_batches
    eager_times, graph_times = [], []
    identical = True
    for _ in range(rounds):
        eager_out, eager_dt = _timed_pass(eager, batches)
        graph_out, graph_dt = _timed_pass(graph, batches)
        eager_times.append(eager_dt)
        graph_times.append(graph_dt)
        identical = identical and bool(np.array_equal(graph_out, eager_out))

    eager_best = min(eager_times)
    graph_best = min(graph_times)
    executor = graph.executor_for((N_CHANNELS, IMAGE_SIZE, IMAGE_SIZE))
    info = executor.plan_info(batch)
    metrics = {
        "eager": {
            "seconds": round(eager_best, 4),
            "samples_per_sec": round(n_samples / eager_best, 1),
            "steady_alloc_bytes": _steady_alloc_bytes(eager, batches[0]),
        },
        "graph": {
            "seconds": round(graph_best, 4),
            "samples_per_sec": round(n_samples / graph_best, 1),
            "steady_alloc_bytes": _steady_alloc_bytes(graph, batches[0]),
            "arena_bytes": info["arena_bytes"],
            "arena_elems": info["arena_elems"],
            "naive_elems": info["naive_elems"],
            "n_buffers": info["n_buffers"],
            "n_steps": info["n_steps"],
            "n_folded_gemm": info["n_folded_gemm"],
            "n_broadcast_gemm": info["n_broadcast_gemm"],
            "pass_stats": graph.pass_stats,
        },
        "speedup": round(eager_best / graph_best, 2),
        "identical": identical,
    }
    return bench_report(
        "inference",
        seed=seed,
        config={
            "batch": batch,
            "n_batches": n_batches,
            "rounds": rounds,
            "width": width,
            "precision": "fp16",
        },
        metrics=metrics,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--batches", type=int, default=8, help="batches per round")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--width", type=int, default=12, help="SmilesNet width")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_inference.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small run, no JSON; exit non-zero if the graph engine is "
        "slower than eager or predictions drift",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_benchmark(
            batch=16, n_batches=2, rounds=1, seed=args.seed, width=6
        )
    else:
        report = run_benchmark(
            batch=args.batch,
            n_batches=args.batches,
            rounds=args.rounds,
            seed=args.seed,
            width=args.width,
        )
    print(json.dumps(report, indent=2))

    metrics = report["metrics"]
    if not metrics["identical"]:
        print("FAIL: graph and eager predictions are not bit-identical")
        return 1
    if args.smoke:
        if metrics["speedup"] < 1.0:
            print("FAIL: graph engine slower than eager in smoke run")
            return 1
        print(f"smoke OK: graph {metrics['speedup']}x, predictions identical")
        return 0
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
