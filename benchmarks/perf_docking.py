"""Sequential vs. fused library-docking benchmark.

Times the same seeded library shard through both `DockingEngine` paths —
``batched=False`` (one LGA per ligand) and ``batched=True`` (the fused
multi-ligand LGA of :mod:`repro.docking.batch`) — and writes
``BENCH_docking.json`` (the shared ``_bench`` envelope) with wall-clock,
ligands/sec, fused-kernel launch counts and the speedup.  Ligand
preparation is warmed before timing so both passes measure pure docking.

The two paths must agree *bitwise* per ligand (the batch module's
determinism contract); the benchmark verifies that on every round and
fails loudly if equivalence ever drifts.

Rounds interleave the two paths and the reported time is each path's
best round, so a noisy co-tenant slows both paths rather than biasing
the ratio.

Usage::

    PYTHONPATH=src python benchmarks/perf_docking.py            # full (64 ligands)
    PYTHONPATH=src python benchmarks/perf_docking.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench import bench_report, write_report  # noqa: E402

from repro.chem.library import generate_library
from repro.docking import scoring
from repro.docking.engine import DockingEngine, DockingResult
from repro.docking.receptor import make_receptor


def _results_identical(a: list[DockingResult], b: list[DockingResult]) -> bool:
    """Bitwise per-ligand equality of two docking passes."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if (
            ra.compound_id != rb.compound_id
            or ra.score != rb.score
            or ra.n_evals != rb.n_evals
            or ra.conformer != rb.conformer
            or ra.pose_translation != rb.pose_translation
            or ra.pose_quaternion != rb.pose_quaternion
            or ra.torsion_angles != rb.torsion_angles
        ):
            return False
    return True


def _timed_pass(
    engine: DockingEngine, entries: list[tuple[str, str]], batched: bool
) -> tuple[list[DockingResult], float, int]:
    """One timed docking pass → (results, seconds, kernel launches)."""
    scoring.reset_kernel_calls()
    t0 = time.perf_counter()
    results = engine.dock_entries(entries, batched=batched)
    return results, time.perf_counter() - t0, scoring.kernel_calls()


def run_benchmark(
    n_ligands: int, rounds: int, seed: int, target: str
) -> dict:
    """Interleaved sequential/fused rounds over one seeded shard."""
    library = generate_library(n_ligands, seed=seed)
    receptor = make_receptor(target)
    receptor.stacked_grids  # noqa: B018 - warm the cached grid stack
    engine = DockingEngine(receptor, seed=seed)
    entries = [
        (library[i].smiles, library[i].compound_id) for i in range(n_ligands)
    ]
    for smiles, compound_id in entries:  # warm the prep cache
        engine._prepared(smiles, compound_id)

    seq_times, fused_times = [], []
    seq_calls = fused_calls = 0
    reference: list[DockingResult] | None = None
    identical = True
    for _ in range(rounds):
        seq_res, seq_dt, seq_calls = _timed_pass(engine, entries, batched=False)
        fused_res, fused_dt, fused_calls = _timed_pass(
            engine, entries, batched=True
        )
        seq_times.append(seq_dt)
        fused_times.append(fused_dt)
        identical = identical and _results_identical(seq_res, fused_res)
        if reference is None:
            reference = seq_res
        else:
            identical = identical and _results_identical(reference, seq_res)

    seq_best = min(seq_times)
    fused_best = min(fused_times)
    metrics = {
        "sequential": {
            "seconds": round(seq_best, 3),
            "ligands_per_sec": round(n_ligands / seq_best, 3),
            "kernel_calls": seq_calls,
        },
        "fused": {
            "seconds": round(fused_best, 3),
            "ligands_per_sec": round(n_ligands / fused_best, 3),
            "kernel_calls": fused_calls,
        },
        "speedup": round(seq_best / fused_best, 2),
        "kernel_call_ratio": round(seq_calls / max(fused_calls, 1), 2),
        "identical": identical,
    }
    return bench_report(
        "docking",
        seed=seed,
        config={"n_ligands": n_ligands, "target": target, "rounds": rounds},
        metrics=metrics,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ligands", type=int, default=64, help="shard size (default 64)"
    )
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--target", default="3CLPro")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_docking.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small shard, no JSON; exit non-zero if the fused path is "
        "slower than sequential or results drift",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_benchmark(
            n_ligands=8, rounds=1, seed=args.seed, target=args.target
        )
    else:
        report = run_benchmark(
            n_ligands=args.ligands,
            rounds=args.rounds,
            seed=args.seed,
            target=args.target,
        )
    print(json.dumps(report, indent=2))

    metrics = report["metrics"]
    if not metrics["identical"]:
        print("FAIL: fused and sequential results are not bit-identical")
        return 1
    if args.smoke:
        if metrics["speedup"] < 1.0:
            print("FAIL: fused path slower than sequential in smoke run")
            return 1
        print(f"smoke OK: fused {metrics['speedup']}x, results identical")
        return 0
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    np.seterr(all="ignore")
    sys.exit(main())
