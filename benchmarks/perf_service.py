"""Multi-tenant service benchmark (``BENCH_service.json``).

Three claims about the campaign service on a contended shared pilot:

1. **Fairness** — three tenants with weights 4:2:1 submit identical
   saturating workloads to a 2-node cluster; the node-second share each
   tenant achieves while everyone still has backlog must match its
   weight fraction to within 5 % (absolute).  The stride scheduler is
   deterministic, so this is a property check, not a statistics game.

2. **Isolation** — every tenant's result digest from the contended run
   must equal a solo run of the same workload on an idle substrate
   (``identical`` true per tenant).  Contention may reshuffle *when*
   work runs, never *what* it computes.

3. **Throughput** — aggregate scheduler events/sec (2 × attempts /
   wall) of the 3-tenant contended run vs a single tenant running the
   same aggregate task count.  The multi-tenant bookkeeping (stride
   ledger, per-tenant attribution, quota checks) should cost little.

Usage::

    PYTHONPATH=src python benchmarks/perf_service.py            # full
    PYTHONPATH=src python benchmarks/perf_service.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench import bench_report, write_report  # noqa: E402

from repro.rct.backends import create_executor
from repro.rct.cluster import Cluster, SUMMIT_NODE
from repro.rct.pilot import Pilot
from repro.service.manager import CampaignManager
from repro.service.tenant import Tenant
from repro.service.work import SyntheticWork

WEIGHTS = {"gold": 4, "silver": 2, "bronze": 1}
#: fairness tolerance on achieved-vs-target share (absolute)
SHARE_TOLERANCE = 0.05


def make_manager(n_nodes: int = 2) -> CampaignManager:
    executor = create_executor("sim", launch_overhead=0.5)
    allocation = Cluster(n_nodes, spec=SUMMIT_NODE).allocate(n_nodes, now=0.0)
    pilot = Pilot(allocation, executor, failure_policy="drop_and_continue")
    return CampaignManager(pilot)


def workload(n_tasks: int, duration: float, seed: int) -> SyntheticWork:
    """One saturating unit: every task pending at once, no science gaps."""
    return SyntheticWork(
        n_units=1, tasks_per_unit=n_tasks, duration=duration, gpus=1, seed=seed
    )


def contended_run(n_tasks: int, duration: float, seed: int) -> dict:
    """Three tenants, weights 4:2:1, on 12 GPU slots."""
    manager = make_manager()
    sids = {}
    for i, (name, weight) in enumerate(WEIGHTS.items()):
        sids[name] = manager.submit(
            Tenant(name=name, weight=weight), "job",
            workload(n_tasks, duration, seed + i),
        )

    def saturated() -> bool:
        return all(len(manager._subs[s]._pending) > 0 for s in sids.values())

    # sample served node-seconds the moment any tenant's backlog drains:
    # shares are only meaningful while everyone is still contending
    served_at_cut = None
    t0 = time.perf_counter()
    while manager._step():
        if served_at_cut is None and not saturated():
            served_at_cut = {
                name: manager.sched.entry(name).served_cost for name in WEIGHTS
            }
    wall = time.perf_counter() - t0
    assert served_at_cut is not None

    total = sum(served_at_cut.values())
    target_total = sum(WEIGHTS.values())
    fairness = {}
    for name, weight in WEIGHTS.items():
        target = weight / target_total
        achieved = served_at_cut[name] / total
        fairness[name] = {
            "weight": weight,
            "target_share": target,
            "achieved_share": achieved,
            "abs_error": abs(achieved - target),
        }
    attempts = len(manager.pilot.records)
    return {
        "digests": {
            name: manager.result_digest(sid) for name, sid in sids.items()
        },
        "fairness": fairness,
        "max_share_error": max(f["abs_error"] for f in fairness.values()),
        "attempts": attempts,
        "events_per_sec": 2 * attempts / wall,
        "makespan": manager.pilot.executor.now,
    }


def solo_digest(n_tasks: int, duration: float, seed: int) -> str:
    manager = make_manager()
    sid = manager.submit(
        Tenant(name="solo"), "job", workload(n_tasks, duration, seed)
    )
    manager.run_until_idle()
    return manager.result_digest(sid)


def baseline_events_per_sec(n_tasks: int, duration: float, seed: int) -> float:
    """Single tenant pushing the same aggregate task count."""
    manager = make_manager()
    manager.submit(Tenant(name="solo"), "job", workload(n_tasks, duration, seed))
    t0 = time.perf_counter()
    manager.run_until_idle()
    wall = time.perf_counter() - t0
    return 2 * len(manager.pilot.records) / wall


def run(n_tasks: int, duration: float, seed: int) -> dict:
    shared = contended_run(n_tasks, duration, seed)

    isolation = {}
    for i, name in enumerate(WEIGHTS):
        solo = solo_digest(n_tasks, duration, seed + i)
        isolation[name] = {
            "solo_digest": solo,
            "shared_digest": shared["digests"][name],
            "identical": solo == shared["digests"][name],
        }

    baseline = baseline_events_per_sec(3 * n_tasks, duration, seed)
    metrics = {
        "identical": all(t["identical"] for t in isolation.values()),
        "isolation": isolation,
        "fairness": shared["fairness"],
        "max_share_error": shared["max_share_error"],
        "share_tolerance": SHARE_TOLERANCE,
        "fair_within_tolerance": shared["max_share_error"] <= SHARE_TOLERANCE,
        "events_per_sec_shared": shared["events_per_sec"],
        "events_per_sec_single_tenant": baseline,
        "relative_throughput": shared["events_per_sec"] / baseline,
        "attempts": shared["attempts"],
        "makespan": shared["makespan"],
    }
    return metrics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload; still asserts all gates")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=Path("BENCH_service.json"))
    args = parser.parse_args(argv)

    n_tasks = 150 if args.smoke else 600
    duration = 60.0
    config = {
        "smoke": args.smoke,
        "n_tenants": len(WEIGHTS),
        "weights": WEIGHTS,
        "n_tasks_per_tenant": n_tasks,
        "task_seconds": duration,
        "n_nodes": 2,
        "gpus_per_node": SUMMIT_NODE.gpus,
    }
    metrics = run(n_tasks, duration, args.seed)

    report = bench_report("service", args.seed, config, metrics)
    write_report(report, args.out)
    print(f"wrote {args.out}")
    for name, f in metrics["fairness"].items():
        print(f"  {name:<8s} target={f['target_share']:.3f} "
              f"achieved={f['achieved_share']:.3f} err={f['abs_error']:.3f}")
    print(f"  identical={metrics['identical']} "
          f"max_share_error={metrics['max_share_error']:.3f} "
          f"relative_throughput={metrics['relative_throughput']:.2f}")

    ok = metrics["identical"] and metrics["fair_within_tolerance"]
    if not ok:
        print("service benchmark gates FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
