"""Table 3 — throughput and peak flop/s per component.

| Comp. | #GPUs | Tflop/s (paper) | Throughput (paper)  |
|-------|-------|-----------------|---------------------|
| ML1   | 1536  | 753.9           | 319,674 ligands/s   |
| S1    | 6000  | 112.5           | 14,252 ligands/s    |
| S3-CG | 6000  | 277.9           | 2,000 ligands/s     |
| S3-FG | 6000  | 732.4           | 200 ligands/s       |

We regenerate both columns: throughput from the cost model at the
paper's GPU counts, and flop/s from the analytic per-work-unit flop
counts of our actual kernels (§7.2's methodology).  Absolute Tflop/s of
a NumPy bead model cannot match V100 kernels — what must hold, and what
the assertions check, is the *throughput column* and the relative
ordering ML1 ≫ S1 ≫ S3-CG ≫ S3-FG with roughly order-of-magnitude steps.
"""

import pytest

from repro.core.costs import CostModel
from repro.esmacs.protocol import CG, FG
from repro.rct.flops import docking_eval_flops, md_step_flops, model_forward_flops
from repro.surrogate.model import build_smilesnet

#: Table 3 as printed.  Unit note: the S3 rows are labelled "ligand/s"
#: but are only consistent with Table 2 as ligands per *hour* (1000
#: nodes ÷ 0.5 node-h/ligand = 2000/h for CG; 1500 ÷ 4-node × 1.2 h
#: ensembles ≈ 200/h for FG) — we reproduce them as per-hour rates.
PAPER_TABLE3 = {
    # component: (gpus, tflops, throughput, unit)
    "ML1": (1536, 753.9, 319_674.0, "ligands/s"),
    "S1": (6000, 112.5, 14_252.0, "ligands/s (peak)"),
    "S3-CG": (6000, 277.9, 2_000.0, "ligands/hour"),
    "S3-FG": (6000, 732.4, 200.0, "ligands/hour"),
}


@pytest.fixture(scope="module")
def table():
    cm = CostModel()

    def stage_throughput(stage: str, gpus: int) -> float:
        """Throughput in the unit Table 3 effectively uses per row."""
        if stage == "ML1":
            return gpus * cm.ml1_ligands_per_gpu_second  # per second
        if stage == "S1":
            return gpus / cm.docking_wall_seconds(1, peak=True)  # per second
        if stage == "S3-CG":
            ensembles = gpus / (cm.esmacs_nodes(CG) * cm.node.gpus)
            return ensembles / cm.esmacs_wall_seconds(CG) * 3600.0  # per hour
        if stage == "S3-FG":
            ensembles = gpus / (cm.esmacs_nodes(FG) * cm.node.gpus)
            return ensembles / cm.esmacs_wall_seconds(FG) * 3600.0  # per hour
        raise ValueError(stage)

    # flops per ligand for each stage, from our kernels' actual shapes
    n_beads = 309 + 25  # PLPro Cα model + typical ligand
    net = build_smilesnet(0)
    ml1_flops = model_forward_flops(net, (7, 24, 24))
    s1_flops = docking_eval_flops(25) * cm.docking_evals_per_ligand
    # paper-scale MD: steps = ns × 500,000 steps/ns (2 fs timestep)
    steps_per_ns = 500_000
    cg_flops = (
        CG.replicas
        * (CG.equilibration_ns + CG.production_ns)
        * steps_per_ns
        * md_step_flops(n_beads, n_bonds=900)
    )
    fg_flops = (
        FG.replicas
        * (FG.equilibration_ns + FG.production_ns)
        * steps_per_ns
        * md_step_flops(n_beads, n_bonds=900)
    )
    flops_per_ligand = {
        "ML1": ml1_flops,
        "S1": s1_flops,
        "S3-CG": cg_flops,
        "S3-FG": fg_flops,
    }
    out = {}
    for stage, (gpus, _, _, unit) in PAPER_TABLE3.items():
        thpt = stage_throughput(stage, gpus)
        per_second = thpt / 3600.0 if "hour" in unit else thpt
        tflops = per_second * flops_per_ligand[stage] / 1e12
        out[stage] = (gpus, tflops, thpt, unit)
    return out


def test_table3_throughput_column(benchmark, table):
    rows = benchmark(lambda: table)
    print("\nTable 3 — per component at the paper's GPU counts")
    print(f"  {'comp':6s} {'#GPUs':>6s} {'Tflop/s':>10s} {'throughput':>12s} "
          f"{'paper':>12s}  unit")
    for stage, (gpus, tflops, thpt, unit) in rows.items():
        paper = PAPER_TABLE3[stage][2]
        print(f"  {stage:6s} {gpus:6d} {tflops:10.2f} {thpt:12.1f} {paper:12.1f}  {unit}")
    # throughputs within 2.5x of the paper's measured values
    for stage, (gpus, _, thpt, unit) in rows.items():
        paper = PAPER_TABLE3[stage][2]
        assert paper / 2.5 < thpt < paper * 2.5, stage


def test_throughput_ordering_and_steps(benchmark, table):
    """ML1 ≫ S1 ≫ S3-CG ≫ S3-FG in a common unit (ligands/s), each
    step one or more orders of magnitude."""
    rows = benchmark(lambda: table)
    t = {
        k: (v[2] / 3600.0 if "hour" in v[3] else v[2]) for k, v in rows.items()
    }
    assert t["ML1"] > t["S1"] > t["S3-CG"] > t["S3-FG"]
    assert 5 < t["ML1"] / t["S1"] < 100
    assert t["S1"] / t["S3-CG"] > 1e3
    assert 5 < t["S3-CG"] / t["S3-FG"] < 20


def test_fg_flops_rate_exceeds_cg(benchmark, table):
    """Paper: FG sustains higher flop/s than CG (732 vs 278) because the
    bigger ensembles keep more GPUs saturated per ligand."""
    rows = benchmark(lambda: table)
    assert rows["S3-FG"][1] > rows["S3-CG"][1] * 0.8
