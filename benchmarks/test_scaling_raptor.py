"""§6.1.2 scaling claim — RAPTOR docking throughput vs node count.

"The combination of these approaches results in a near linear scaling up
to several thousand nodes, while maintaining high utilization for large
numbers of concurrently used nodes."

We sweep simulated worker counts from 1 node (6 GPUs) to ~680 nodes
(4096 workers), with the paper's three mitigations on (bulk dispatch,
masters scaled with workers, dynamic balancing), and check near-linear
throughput plus sustained utilization.  A control sweep with a single
master shows the bottleneck the mitigations remove.
"""

import numpy as np
import pytest

from repro.rct.raptor import RaptorConfig, simulate_raptor
from repro.util.rng import rng_stream

#: docking-time distribution: long-tailed, ~0.4 s/ligand/GPU at peak
SIGMA = 0.7
MEAN = np.log(0.4)

WORKER_COUNTS = (64, 256, 1024, 4096)


def _durations(n, seed):
    return rng_stream(seed, "bench/raptor").lognormal(MEAN, SIGMA, size=n)


@pytest.fixture(scope="module")
def sweep():
    mitigated = {}
    single_master = {}
    for w in WORKER_COUNTS:
        d = _durations(w * 120, seed=w)
        mitigated[w] = simulate_raptor(
            d,
            RaptorConfig(
                n_workers=w,
                n_masters=max(1, w // 128),
                bulk_size=32,
                dispatch_overhead=0.05,
            ),
        )
        single_master[w] = simulate_raptor(
            d,
            RaptorConfig(
                n_workers=w, n_masters=1, bulk_size=32, dispatch_overhead=0.05
            ),
        )
    return mitigated, single_master


def test_near_linear_scaling(benchmark, sweep):
    mitigated, _ = sweep
    table = benchmark(
        lambda: {w: (r.throughput, r.worker_utilization) for w, r in mitigated.items()}
    )
    print("\nRAPTOR scaling (masters ∝ workers, bulk=32)")
    print(f"  {'workers':>8s} {'nodes':>6s} {'lig/s':>9s} {'util':>6s} {'efficiency':>11s}")
    base_w = WORKER_COUNTS[0]
    base_t = table[base_w][0]
    for w, (thpt, util) in table.items():
        eff = (thpt / base_t) / (w / base_w)
        print(f"  {w:8d} {w // 6:6d} {thpt:9.1f} {util:6.2f} {eff:11.2f}")
    top = WORKER_COUNTS[-1]
    eff_top = (table[top][0] / base_t) / (top / base_w)
    assert eff_top > 0.8  # near-linear to ~680 simulated nodes
    # high utilization maintained at the largest scale
    assert table[top][1] > 0.7


def test_single_master_bottleneck(benchmark, sweep):
    mitigated, single = sweep
    top = WORKER_COUNTS[-1]
    ratio = benchmark(
        lambda: mitigated[top].throughput / single[top].throughput
    )
    print(f"\nat {top} workers: mitigated/single-master throughput = {ratio:.1f}x")
    assert ratio > 2.0


def test_work_conservation(benchmark, sweep):
    mitigated, _ = sweep
    w = WORKER_COUNTS[1]
    d = _durations(w * 120, seed=w)
    total = benchmark(lambda: mitigated[w].worker_busy.sum())
    assert total == pytest.approx(d.sum())
