"""Fault tolerance — graceful degradation under injected task failures.

The acceptance scenario for the fault layer: with a seeded per-task
failure probability and ``RetryPolicy(max_retries=3)``, a simulated
pilot completes *every* task, the failure ledger reconciles exactly
(injected = retried + dropped), and the makespan inflates by less than
2x even at a 10 % failure rate.  RAPTOR throughput degrades smoothly
rather than collapsing.
"""

import numpy as np

from repro.rct import (
    Cluster,
    FaultModel,
    Pilot,
    RaptorConfig,
    RetryPolicy,
    SimExecutor,
    TaskSpec,
    simulate_raptor,
)
from repro.util.rng import rng_stream

RATES = (0.0, 0.01, 0.05, 0.10)


def _pilot_run(rate, durations):
    tasks = [TaskSpec(gpus=1, duration=float(d), stage="mixed") for d in durations]
    cluster = Cluster(100)
    fault = FaultModel(failure_rate=rate, seed=7) if rate else None
    with Pilot(
        cluster.allocate(100, 0.0),
        SimExecutor(launch_overhead=0.5, fault_model=fault),
        retry=RetryPolicy(max_retries=3, backoff_base=5.0, seed=7),
    ) as pilot:
        records = pilot.run(tasks)
    series = pilot.utilization.series()
    return {
        "rate": rate,
        "makespan": pilot.executor.now,
        "utilization": series.average_utilization(),
        "records": records,
        "failures": pilot.failures,
    }


def test_pilot_makespan_degrades_gracefully(benchmark):
    durations = rng_stream(3, "bench/fault").lognormal(
        np.log(300), 0.25, size=2000
    )

    def sweep():
        return [_pilot_run(rate, durations) for rate in RATES]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    clean = rows[0]
    print("\nfault tolerance — 2,000 tasks on 100 nodes, retries enabled")
    print(f"  {'rate':>6s} {'makespan':>9s} {'util':>6s} {'retries':>8s} {'dropped':>8s}")
    for row in rows:
        f = row["failures"]
        print(f"  {row['rate']:6.0%} {row['makespan']:8.0f}s "
              f"{row['utilization']:6.2f} {f.n_retries:8d} {f.n_dropped:8d}")
    for row in rows:
        f = row["failures"]
        # every task completed despite the injected failures
        assert len(row["records"]) == 2000
        # the ledger reconciles exactly: injected = retried + dropped
        assert f.n_failures == f.n_retries + f.n_dropped
        # graceful degradation, not collapse
        assert row["makespan"] < 2.0 * clean["makespan"]
        assert row["utilization"] > 0.5 * clean["utilization"]
    # failures cost something: makespan is monotone-ish in the rate
    assert rows[-1]["makespan"] > clean["makespan"]


def test_raptor_throughput_degrades_gracefully(benchmark):
    durations = rng_stream(4, "bench/fault-raptor").lognormal(
        np.log(0.4), 0.7, size=4000
    )
    cfg = RaptorConfig(n_workers=64, n_masters=2, bulk_size=16, dispatch_overhead=0.05)

    def sweep():
        out = {}
        for rate in RATES:
            fault = FaultModel(failure_rate=rate, seed=9) if rate else None
            retry = RetryPolicy(max_retries=3, backoff_base=0.1, seed=9)
            out[rate] = simulate_raptor(durations, cfg, fault_model=fault, retry=retry)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    clean = results[0.0]
    print("\nRAPTOR throughput under injected failures (64 workers)")
    for rate, res in results.items():
        print(f"  {rate:6.0%}  {res.throughput:8.1f} ligands/s  "
              f"dropped {res.n_failed}")
    for rate, res in results.items():
        assert res.failure_summary is None or res.failure_summary.reconciles()
        # 3 retries absorb nearly all failures (p_drop = rate^4); the
        # rare exhausted item is reported, never silently lost
        assert res.n_failed <= 0.005 * res.n_items
        assert res.n_failed == len(res.failed_indices)
        assert res.throughput > 0.5 * clean.throughput
