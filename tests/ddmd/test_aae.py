"""Tests for the 3D adversarial autoencoder."""

import numpy as np
import pytest

from repro.ddmd.aae import AAE, AAEConfig, train_aae
from repro.util.rng import rng_stream

TINY = AAEConfig(epochs=5, latent_dim=6, hidden=12, batch_size=16)


def _clouds(n=40, n_points=20, seed=0):
    rng = rng_stream(seed, "t/aae")
    v = rng.normal(size=(n, n_points, 3))
    v /= np.linalg.norm(v, axis=2, keepdims=True)
    return v + rng.normal(scale=0.05, size=v.shape)


def test_training_reduces_reconstruction_loss():
    model = AAE(TINY, n_points=20, seed=0)
    hist = model.fit(_clouds())
    assert hist.train_reconstruction[-1] < hist.train_reconstruction[0]
    assert len(hist.train_reconstruction) == TINY.epochs
    assert len(hist.val_reconstruction) == TINY.epochs
    assert np.isfinite(hist.train_adversarial).all()


def test_embedding_shape_and_determinism():
    clouds = _clouds()
    model = train_aae(clouds, TINY, seed=1)
    z = model.embed(clouds)
    assert z.shape == (40, TINY.latent_dim)
    np.testing.assert_array_equal(z, model.embed(clouds))


def test_encoder_permutation_invariant():
    """PointNet max-pool: point order must not change the embedding."""
    clouds = _clouds(n=8)
    model = AAE(TINY, n_points=20, seed=2)
    rng = rng_stream(1, "t/perm")
    perm = rng.permutation(20)
    z1 = model.embed(clouds)
    z2 = model.embed(clouds[:, perm])
    np.testing.assert_allclose(z1, z2, atol=1e-10)


def test_reconstruction_shape():
    clouds = _clouds(n=6)
    model = AAE(TINY, n_points=20, seed=3)
    recon = model.reconstruct(clouds)
    assert recon.shape == clouds.shape


def test_structurally_different_clouds_separate_in_latent():
    rng = rng_stream(2, "t/sep")

    def shape(scale, n=30):
        out = []
        for _ in range(n):
            v = rng.normal(size=(20, 3))
            v /= np.linalg.norm(v, axis=1, keepdims=True)
            v[:, 0] *= scale
            out.append(v + rng.normal(scale=0.03, size=v.shape))
        return np.array(out)

    a, b = shape(1.0), shape(3.0)
    model = train_aae(np.concatenate([a, b]), TINY, seed=4)
    za, zb = model.embed(a), model.embed(b)
    gap = np.linalg.norm(za.mean(axis=0) - zb.mean(axis=0))
    within = (za.std(axis=0).mean() + zb.std(axis=0).mean()) / 2
    assert gap > 2.0 * within


def test_training_deterministic():
    clouds = _clouds()
    a = train_aae(clouds, TINY, seed=5)
    b = train_aae(clouds, TINY, seed=5)
    np.testing.assert_array_equal(a.embed(clouds), b.embed(clouds))


def test_validates_input_shapes():
    model = AAE(TINY, n_points=20, seed=6)
    with pytest.raises(ValueError):
        model.fit(np.zeros((10, 7, 3)))  # wrong n_points
    with pytest.raises(ValueError):
        model.fit(np.zeros((2, 20, 3)))  # too few examples


def test_config_validation():
    with pytest.raises(ValueError):
        AAEConfig(latent_dim=0)
    with pytest.raises(ValueError):
        AAEConfig(prior_std=-0.1)
    with pytest.raises(ValueError):
        AAEConfig(validation_fraction=0.95)


def test_paper_hyperparameters_are_defaults():
    cfg = AAEConfig()
    assert cfg.prior_std == 0.2
    assert cfg.reconstruction_scale == 0.5
    assert cfg.gradient_penalty_scale == 10.0


# --------------------------------------------- engine parity and telemetry
def test_graph_engine_bitwise_matches_eager():
    clouds = _clouds()
    graph = AAE(AAEConfig(engine="graph", epochs=3, latent_dim=6, hidden=12,
                          batch_size=16), n_points=20, seed=2)
    eager = AAE(AAEConfig(engine="eager", epochs=3, latent_dim=6, hidden=12,
                          batch_size=16), n_points=20, seed=2)
    hg = graph.fit(clouds)
    he = eager.fit(clouds)
    assert hg.train_reconstruction == he.train_reconstruction
    assert hg.train_adversarial == he.train_adversarial
    assert hg.val_reconstruction == he.val_reconstruction
    for mg, me in ((graph.encoder, eager.encoder), (graph.decoder, eager.decoder),
                   (graph.critic, eager.critic)):
        for pg, pe in zip(mg.parameters(), me.parameters()):
            assert np.array_equal(pg.data, pe.data)


def test_aae_engine_validated():
    with pytest.raises(ValueError, match="engine"):
        AAEConfig(engine="compiled")


def test_fit_emits_spans_and_identical_traces_across_engines():
    from repro.telemetry import TickClock, Tracer

    clouds = _clouds()
    readings = {}
    for engine in ("graph", "eager"):
        tracer = Tracer(clock=TickClock())
        AAE(AAEConfig(engine=engine, epochs=2, latent_dim=6, hidden=12,
                      batch_size=16), n_points=20, seed=2).fit(clouds, tracer=tracer)
        spans = list(tracer.spans("train"))
        assert {s.name for s in spans} == {"train.epoch", "train.step"}
        epoch_spans = [s for s in spans if s.name == "train.epoch"]
        assert len(epoch_spans) == 2
        readings[engine] = (
            [s.attrs for s in epoch_spans],
            tracer.metrics.counter("train.steps").value,
            tracer.metrics.gauge("train.loss").value,
            tracer.metrics.gauge("train.critic_loss").value,
            tracer.metrics.gauge("train.grad_norm").value,
        )
    assert readings["graph"] == readings["eager"]
