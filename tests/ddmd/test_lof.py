"""Tests for Local Outlier Factor."""

import numpy as np
import pytest

from repro.ddmd.lof import lof_scores, top_outliers
from repro.util.rng import rng_stream


def test_planted_outlier_detected():
    rng = rng_stream(0, "t/lof")
    pts = rng.normal(size=(80, 4))
    pts[17] += 12.0
    scores = lof_scores(pts, k=8)
    assert np.argmax(scores) == 17
    assert scores[17] > 2.0


def test_uniform_cluster_scores_near_one():
    rng = rng_stream(1, "t/lof2")
    pts = rng.normal(size=(200, 3))
    scores = lof_scores(pts, k=15)
    inliers = np.sort(scores)[: int(0.9 * len(scores))]
    assert 0.8 < inliers.mean() < 1.3


def test_two_density_clusters():
    """A sparse point between two dense clusters is an outlier."""
    rng = rng_stream(2, "t/lof3")
    dense_a = rng.normal(scale=0.1, size=(50, 2))
    dense_b = rng.normal(scale=0.1, size=(50, 2)) + 10.0
    bridge = np.array([[5.0, 5.0]])
    pts = np.vstack([dense_a, dense_b, bridge])
    scores = lof_scores(pts, k=10)
    assert np.argmax(scores) == 100


def test_k_clamped_to_dataset_size():
    rng = rng_stream(3, "t/lof4")
    pts = rng.normal(size=(5, 2))
    scores = lof_scores(pts, k=100)  # k > N-1 must not crash
    assert scores.shape == (5,)
    assert np.isfinite(scores).all()


def test_validates_input():
    with pytest.raises(ValueError):
        lof_scores(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        lof_scores(np.zeros(10))


def test_top_outliers_ordering():
    rng = rng_stream(4, "t/lof5")
    pts = rng.normal(size=(60, 3))
    pts[5] += 20.0
    pts[40] += 10.0
    top = top_outliers(pts, 2, k=8)
    assert set(top) == {5, 40}
    assert top[0] == 5  # stronger outlier first


def test_top_outliers_count_clamped():
    rng = rng_stream(5, "t/lof6")
    pts = rng.normal(size=(10, 2))
    assert len(top_outliers(pts, 50)) == 10
    with pytest.raises(ValueError):
        top_outliers(pts, 0)
