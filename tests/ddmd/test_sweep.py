"""Tests for the AAE hyper-parameter sweep."""

import numpy as np
import pytest

from repro.ddmd.aae import AAEConfig
from repro.ddmd.sweep import sweep_aae
from repro.util.rng import rng_stream


def _clouds(n=30, n_points=15):
    rng = rng_stream(0, "t/sweep")
    v = rng.normal(size=(n, n_points, 3))
    v /= np.linalg.norm(v, axis=2, keepdims=True)
    return v


BASE = AAEConfig(epochs=2, hidden=8)


def test_sweep_covers_full_grid():
    result = sweep_aae(
        _clouds(),
        learning_rates=(1e-3,),
        batch_sizes=(8, 16),
        latent_dims=(4, 8),
        base=BASE,
        seed=0,
    )
    assert len(result.table) == 4
    losses = [loss for _, loss in result.table]
    assert result.best_val_loss == min(losses)
    assert result.best_config in [cfg for cfg, _ in result.table]


def test_sweep_deterministic():
    kwargs = dict(
        learning_rates=(1e-3,), batch_sizes=(8,), latent_dims=(4, 8),
        base=BASE, seed=3,
    )
    a = sweep_aae(_clouds(), **kwargs)
    b = sweep_aae(_clouds(), **kwargs)
    assert a.best_val_loss == b.best_val_loss
    assert a.best_config == b.best_config


def test_sweep_summary_mentions_best():
    result = sweep_aae(
        _clouds(), learning_rates=(1e-3,), batch_sizes=(8,), latent_dims=(4,),
        base=BASE, seed=0,
    )
    assert "best" in result.summary()


def test_sweep_validates_axes():
    with pytest.raises(ValueError):
        sweep_aae(_clouds(), learning_rates=(), base=BASE)


def test_best_config_carries_swept_values():
    result = sweep_aae(
        _clouds(), learning_rates=(1e-3, 1e-4), batch_sizes=(8,),
        latent_dims=(4,), base=BASE, seed=0,
    )
    assert result.best_config.learning_rate in (1e-3, 1e-4)
    assert result.best_config.batch_size == 8
    assert result.best_config.epochs == BASE.epochs  # base preserved
