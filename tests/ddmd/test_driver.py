"""Tests for the DeepDriveMD adaptive-sampling driver."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.ddmd.aae import AAEConfig
from repro.ddmd.driver import AdaptiveSampler, AdaptiveSamplingConfig
from repro.docking.receptor import make_receptor
from repro.md.builder import build_lpc
from repro.md.forcefield import ForceField
from repro.md.minimize import minimize
from repro.util.rng import rng_stream

TINY = AdaptiveSamplingConfig(
    rounds=2,
    simulations_per_round=3,
    steps_per_simulation=30,
    record_every=5,
    aae=AAEConfig(epochs=3, latent_dim=6, hidden=8, batch_size=8),
)


@pytest.fixture(scope="module")
def system():
    receptor = make_receptor("PLPro", "6W9C", seed=7)
    mol = parse_smiles("c1ccncc1CC(=O)O")
    coords = rng_stream(0, "t/drv").normal(scale=2.0, size=(mol.n_atoms, 3))
    sys_ = build_lpc(receptor, mol, coords, seed=0, n_residues=50)
    minimize(sys_, ForceField(), max_iterations=20)
    return sys_


@pytest.fixture(scope="module")
def adaptive_result(system):
    return AdaptiveSampler(system, TINY, seed=0).run()


def test_result_structure(adaptive_result):
    r = adaptive_result
    assert len(r.trajectories) == TINY.rounds * TINY.simulations_per_round
    assert len(r.coverage_per_round) == TINY.rounds
    frames_per_sim = 30 // 5
    assert r.total_frames == len(r.trajectories) * frames_per_sim
    assert r.frames.shape[1] == 50  # protein beads only
    assert r.max_rmsd > 0
    assert r.model is not None  # AAE trained between rounds


def test_template_not_mutated(system):
    before = system.positions.copy()
    AdaptiveSampler(system, TINY, seed=1).run()
    np.testing.assert_array_equal(system.positions, before)


def test_deterministic(system):
    a = AdaptiveSampler(system, TINY, seed=3).run()
    b = AdaptiveSampler(system, TINY, seed=3).run()
    np.testing.assert_array_equal(a.frames, b.frames)


def test_control_mode_has_no_model(system):
    r = AdaptiveSampler(system, TINY.replace(adaptive=False), seed=0).run()
    assert r.model is None
    assert len(r.coverage_per_round) == TINY.rounds


def test_adaptive_explores_more_than_control(system):
    """The DeepDriveMD claim, at smoke scale: adaptive restarts reach
    farther from the start than restarts from the initial structure."""
    cfg = AdaptiveSamplingConfig(
        rounds=3,
        simulations_per_round=4,
        steps_per_simulation=40,
        record_every=5,
        aae=AAEConfig(epochs=4, latent_dim=6, hidden=8, batch_size=8),
    )
    adaptive = AdaptiveSampler(system, cfg, seed=0).run()
    control = AdaptiveSampler(system, cfg.replace(adaptive=False), seed=0).run()
    assert adaptive.coverage_per_round[-1] > control.coverage_per_round[-1]
    assert adaptive.max_rmsd > control.max_rmsd


def test_config_validation():
    with pytest.raises(ValueError):
        AdaptiveSamplingConfig(rounds=0)
    with pytest.raises(ValueError):
        AdaptiveSamplingConfig(simulations_per_round=-1)
