"""Tests for the contact-map VAE baseline."""

import numpy as np
import pytest

from repro.ddmd.cmvae import CMVAEConfig, ContactMapVAE, contact_map
from repro.util.rng import rng_stream

TINY = CMVAEConfig(epochs=4, hidden=16, latent_dim=4, batch_size=16)


def _structures(n=40, n_res=20, n_folds=3, seed=0):
    out = []
    for i in range(n):
        r = rng_stream(seed + (i % n_folds), "t/cmstruct")
        pos = np.cumsum(r.normal(scale=1.5, size=(n_res, 3)), axis=0)
        jitter = rng_stream(1000 + i, "t/cmjit").normal(scale=0.2, size=pos.shape)
        out.append(pos - pos.mean(0) + jitter)
    return out


def test_contact_map_shape_and_values():
    coords = rng_stream(0, "t/cm").normal(scale=3, size=(10, 3))
    m = contact_map(coords, cutoff=8.0)
    assert m.shape == (45,)
    assert set(np.unique(m)) <= {0.0, 1.0}


def test_contact_map_cutoff_monotone():
    coords = rng_stream(1, "t/cm2").normal(scale=3, size=(12, 3))
    tight = contact_map(coords, cutoff=4.0)
    loose = contact_map(coords, cutoff=12.0)
    assert loose.sum() >= tight.sum()


def test_contact_map_validates():
    with pytest.raises(ValueError):
        contact_map(np.zeros((5, 2)))
    with pytest.raises(ValueError):
        contact_map(np.zeros((5, 3)), cutoff=0)


def test_vae_training_reduces_loss():
    structures = _structures()
    maps = np.stack([contact_map(c) for c in structures])
    vae = ContactMapVAE(TINY, n_inputs=maps.shape[1], seed=0)
    losses = vae.fit(maps)
    assert losses[-1] < losses[0]
    assert len(vae.val_losses) == TINY.epochs


def test_vae_embedding_shapes():
    structures = _structures()
    maps = np.stack([contact_map(c) for c in structures])
    vae = ContactMapVAE(TINY, n_inputs=maps.shape[1], seed=0)
    vae.fit(maps)
    z = vae.embed(maps[:7])
    assert z.shape == (7, TINY.latent_dim)
    z2 = vae.embed_coords(np.stack(structures[:7]))
    np.testing.assert_allclose(z, z2)


def test_vae_deterministic():
    structures = _structures()
    maps = np.stack([contact_map(c) for c in structures])
    a = ContactMapVAE(TINY, n_inputs=maps.shape[1], seed=5)
    a.fit(maps)
    b = ContactMapVAE(TINY, n_inputs=maps.shape[1], seed=5)
    b.fit(maps)
    np.testing.assert_array_equal(a.embed(maps), b.embed(maps))


def test_vae_validates_inputs():
    vae = ContactMapVAE(TINY, n_inputs=45, seed=0)
    with pytest.raises(ValueError):
        vae.fit(np.zeros((10, 44)))
    with pytest.raises(ValueError):
        vae.fit(np.zeros((2, 45)))
