"""Tests for the t-SNE implementation."""

import numpy as np
import pytest

from repro.ddmd.tsne import tsne
from repro.util.rng import rng_stream


def test_output_shape_and_centering():
    rng = rng_stream(0, "t/tsne")
    pts = rng.normal(size=(40, 6))
    y = tsne(pts, n_iter=100)
    assert y.shape == (40, 2)
    np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-8)


def test_separates_well_separated_clusters():
    rng = rng_stream(1, "t/tsne2")
    a = rng.normal(size=(25, 5))
    b = rng.normal(loc=10.0, size=(25, 5))
    y = tsne(np.vstack([a, b]), n_iter=200, seed=1)
    centre_gap = np.linalg.norm(y[:25].mean(axis=0) - y[25:].mean(axis=0))
    spread = max(y[:25].std(), y[25:].std())
    assert centre_gap > 2.0 * spread


def test_preserves_neighbourhoods_better_than_random():
    """Nearest neighbour in embedding should often be a high-dim neighbour."""
    rng = rng_stream(2, "t/tsne3")
    pts = rng.normal(size=(60, 8))
    y = tsne(pts, n_iter=200, seed=2)

    def nn(matrix):
        d = ((matrix[:, None] - matrix[None]) ** 2).sum(-1)
        np.fill_diagonal(d, np.inf)
        return np.argsort(d, axis=1)[:, :5]

    hi = nn(pts)
    lo = nn(y)
    overlap = np.mean([len(set(hi[i]) & set(lo[i])) / 5 for i in range(60)])
    assert overlap > 0.3  # random would be ~5/59 ≈ 0.08


def test_deterministic_given_seed():
    rng = rng_stream(3, "t/tsne4")
    pts = rng.normal(size=(30, 4))
    np.testing.assert_array_equal(
        tsne(pts, n_iter=50, seed=7), tsne(pts, n_iter=50, seed=7)
    )


def test_three_components():
    rng = rng_stream(4, "t/tsne5")
    y = tsne(rng.normal(size=(20, 6)), n_components=3, n_iter=50)
    assert y.shape == (20, 3)


def test_validates_minimum_points():
    with pytest.raises(ValueError):
        tsne(np.zeros((3, 4)))


def test_perplexity_clamped_for_small_sets():
    rng = rng_stream(5, "t/tsne6")
    y = tsne(rng.normal(size=(10, 3)), perplexity=500.0, n_iter=50)
    assert np.isfinite(y).all()
