"""Tests for the S2 adaptive driver and point-cloud dataset building.

Uses a real (tiny) S3-CG run so the integration path ESMACS → S2 is
exercised end to end.
"""

import numpy as np
import pytest

from repro.chem.library import generate_library
from repro.ddmd.aae import AAEConfig
from repro.ddmd.adaptive import AdaptiveConfig, run_s2
from repro.ddmd.pointcloud import build_dataset, normalize_cloud
from repro.docking.receptor import make_receptor
from repro.esmacs.protocol import EsmacsConfig, EsmacsRunner
from repro.md.builder import build_lpc
from repro.util.rng import rng_stream

TINY_ESMACS = EsmacsConfig(
    replicas=2,
    equilibration_ns=0.5,
    production_ns=1.0,
    steps_per_ns=16,
    n_residues=40,
    record_every=2,
    minimize_iterations=10,
)
TINY_S2 = AdaptiveConfig(
    top_compounds=2,
    outliers_per_compound=3,
    lof_neighbors=5,
    aae=AAEConfig(epochs=3, latent_dim=4, hidden=8, batch_size=8),
)


@pytest.fixture(scope="module")
def cg_results():
    receptor = make_receptor("PLPro", "6W9C", seed=7)
    lib = generate_library(4, seed=41)
    runner = EsmacsRunner(receptor, TINY_ESMACS, seed=0)
    results = []
    ligand_atoms = {}
    for i in range(4):
        mol = lib.molecule(i)
        coords = rng_stream(i, "t/s2lig").normal(scale=2.0, size=(mol.n_atoms, 3))
        res = runner.run(mol, coords, lib[i].compound_id)
        results.append(res)
        system = build_lpc(receptor, mol, coords, seed=0, n_residues=40)
        ligand_atoms[lib[i].compound_id] = system.topology.ligand_atoms
        reference = system.positions[system.topology.protein_atoms]
    return results, ligand_atoms, reference


def test_normalize_cloud_properties():
    rng = rng_stream(0, "t/norm")
    c = rng.normal(loc=5.0, scale=3.0, size=(30, 3))
    n = normalize_cloud(c)
    np.testing.assert_allclose(n.mean(axis=0), 0.0, atol=1e-10)
    assert np.sqrt((n**2).sum(axis=1).mean()) == pytest.approx(1.0)


def test_build_dataset_counts(cg_results):
    results, ligand_atoms, reference = cg_results
    r = results[0]
    ds = build_dataset(
        {r.compound_id: r.trajectories},
        protein_atoms=r.protein_atoms,
        ligand_atoms=ligand_atoms[r.compound_id],
        reference=reference,
    )
    expected = sum(t.n_frames for t in r.trajectories)
    assert len(ds) == expected
    assert ds.clouds.shape == (expected, 40, 3)
    assert len(ds.provenance) == expected
    assert np.isfinite(ds.rmsd).all()
    assert (ds.contacts >= 0).all()


def test_build_dataset_empty_rejected(cg_results):
    results, ligand_atoms, reference = cg_results
    with pytest.raises(ValueError):
        build_dataset(
            {},
            protein_atoms=results[0].protein_atoms,
            ligand_atoms=ligand_atoms[results[0].compound_id],
            reference=reference,
        )


def test_dataset_split(cg_results):
    results, ligand_atoms, reference = cg_results
    r = results[0]
    ds = build_dataset(
        {r.compound_id: r.trajectories},
        protein_atoms=r.protein_atoms,
        ligand_atoms=ligand_atoms[r.compound_id],
        reference=reference,
    )
    train, val = ds.split(0.2, rng_stream(1, "t/split"))
    assert len(train) + len(val) == len(ds)
    assert len(set(train) & set(val)) == 0
    with pytest.raises(ValueError):
        ds.split(1.5, rng_stream(1, "x"))


def test_run_s2_end_to_end(cg_results):
    results, ligand_atoms, reference = cg_results
    out = run_s2(results, reference, ligand_atoms, TINY_S2, seed=0)
    # top compounds are the best CG binders
    ranked = sorted(results, key=lambda r: r.binding_free_energy)
    assert out.top_compound_ids == [r.compound_id for r in ranked[:2]]
    # selections: per-compound outlier conformations with provenance
    assert len(out.selections) == 2 * 3
    for sel in out.selections:
        assert sel.compound_id in out.top_compound_ids
        assert sel.coordinates.ndim == 2
        assert sel.lof_score > 0
    # embeddings cover every aggregated frame
    assert len(out.embeddings) == len(out.dataset)
    assert out.lof.shape == (len(out.dataset),)


def test_run_s2_selected_frames_match_trajectories(cg_results):
    results, ligand_atoms, reference = cg_results
    out = run_s2(results, reference, ligand_atoms, TINY_S2, seed=0)
    by_id = {r.compound_id: r for r in results}
    for sel in out.selections:
        traj = by_id[sel.compound_id].trajectories[sel.replica]
        np.testing.assert_array_equal(sel.coordinates, traj.frames[sel.frame])


def test_run_s2_requires_trajectories(cg_results):
    results, ligand_atoms, reference = cg_results
    stripped = []
    for r in results:
        import copy

        r2 = copy.copy(r)
        r2.trajectories = []
        stripped.append(r2)
    with pytest.raises(ValueError):
        run_s2(stripped, reference, ligand_atoms, TINY_S2)


def test_adaptive_config_validation():
    with pytest.raises(ValueError):
        AdaptiveConfig(top_compounds=0)
    with pytest.raises(ValueError):
        AdaptiveConfig(outliers_per_compound=-1)
