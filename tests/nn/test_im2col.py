"""Tests for the shared im2col plan cache."""

import numpy as np
import pytest

from repro.nn.im2col import (
    conv_index_plan,
    conv_out_hw,
    conv_zero_slot_plan,
    plan_cache_info,
)
from repro.nn.layers import Conv2d


def _naive_cols(x, kernel, stride):
    """Reference im2col via explicit patch extraction."""
    c, h, w = x.shape
    oh, ow = conv_out_hw(kernel, stride, h, w)
    cols = np.empty((c * kernel * kernel, oh * ow), dtype=x.dtype)
    for oy in range(oh):
        for ox in range(ow):
            patch = x[:, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel]
            cols[:, oy * ow + ox] = patch.reshape(-1)
    return cols


@pytest.mark.parametrize("kernel,stride,c,h,w", [(3, 1, 2, 6, 6), (3, 2, 3, 9, 7), (1, 1, 4, 5, 5), (2, 2, 1, 8, 8)])
def test_index_plan_matches_naive_gather(kernel, stride, c, h, w):
    x = np.random.default_rng(0).normal(size=(c, h, w)).astype(np.float32)
    idx = conv_index_plan(kernel, stride, c, h, w)
    np.testing.assert_array_equal(x.reshape(-1)[idx], _naive_cols(x, kernel, stride))


def test_plans_are_shared_and_readonly():
    a = conv_index_plan(3, 1, 4, 10, 10)
    b = conv_index_plan(3, 1, 4, 10, 10)
    assert a is b  # one process-wide copy, not per-caller
    with pytest.raises(ValueError):
        a[0, 0] = 0


def test_conv2d_instances_share_one_plan():
    rng = np.random.default_rng(1)
    conv_a = Conv2d(3, 4, 3, rng, padding=1)
    conv_b = Conv2d(3, 8, 3, rng, padding=1)
    assert conv_a._gather_indices(3, 10, 10) is conv_b._gather_indices(3, 10, 10)


@pytest.mark.parametrize("kernel,stride,padding,c,h,w", [(3, 1, 1, 2, 8, 8), (3, 2, 1, 3, 9, 7), (5, 1, 2, 1, 6, 6)])
def test_zero_slot_plan_matches_pad_then_gather(kernel, stride, padding, c, h, w):
    x = np.random.default_rng(2).normal(size=(c, h, w)).astype(np.float32)
    padded = np.pad(x, [(0, 0), (padding, padding), (padding, padding)])
    ref = padded.reshape(-1)[
        conv_index_plan(kernel, stride, c, h + 2 * padding, w + 2 * padding)
    ]
    # unpadded sample + one trailing zero slot, gathered via the slot plan
    flat = np.concatenate([x.reshape(-1), np.zeros(1, dtype=x.dtype)])
    idx = conv_zero_slot_plan(kernel, stride, padding, c, h, w)
    np.testing.assert_array_equal(flat[idx], ref)


def test_zero_slot_plan_without_padding_is_plain_plan():
    assert conv_zero_slot_plan(3, 1, 0, 2, 6, 6) is conv_index_plan(3, 1, 2, 6, 6)


def test_zero_slot_sentinel_is_one_past_sample():
    idx = conv_zero_slot_plan(3, 1, 1, 2, 4, 4)
    assert idx.max() == 2 * 4 * 4  # the zero slot
    assert (idx >= 0).all()


def test_plan_cache_reports_hits():
    conv_index_plan.cache_clear()
    conv_index_plan(3, 1, 2, 12, 12)
    conv_index_plan(3, 1, 2, 12, 12)
    info = plan_cache_info()
    assert info["index"].hits >= 1
    assert info["index"].misses >= 1
