"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, RMSprop, clip_grad_norm


def _quadratic_step(opt_cls, steps=200, **kwargs):
    """Minimize f(w) = sum((w - 3)^2); returns final w."""
    w = Parameter(np.zeros(4))
    opt = opt_cls([w], **kwargs)
    for _ in range(steps):
        loss = ((w - Tensor(np.full(4, 3.0))) ** 2).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return w.data


@pytest.mark.parametrize(
    "opt_cls, kwargs",
    [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.1}),
        (RMSprop, {"lr": 0.05}),
    ],
)
def test_optimizers_converge_on_quadratic(opt_cls, kwargs):
    w = _quadratic_step(opt_cls, **kwargs)
    np.testing.assert_allclose(w, 3.0, atol=0.05)


def test_invalid_lr_rejected():
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(2))], lr=0.0)


def test_empty_params_rejected():
    with pytest.raises(ValueError):
        Adam([], lr=0.1)


def test_skips_params_without_grad():
    a = Parameter(np.zeros(2))
    b = Parameter(np.zeros(2))
    opt = SGD([a, b], lr=0.1)
    (a * 2.0).sum().backward()
    opt.step()
    assert (a.data != 0).all()
    assert (b.data == 0).all()


def test_zero_grad_clears():
    p = Parameter(np.zeros(2))
    (p * 1.0).sum().backward()
    assert p.grad is not None
    SGD([p], lr=0.1).zero_grad()
    assert p.grad is None


def test_adam_bias_correction_first_step():
    """First Adam step should be ≈ lr in the gradient direction."""
    p = Parameter(np.zeros(3))
    opt = Adam([p], lr=0.1)
    (p * Tensor(np.array([1.0, 2.0, -3.0]))).sum().backward()
    opt.step()
    np.testing.assert_allclose(p.data, [-0.1, -0.1, 0.1], atol=1e-6)


def test_clip_grad_norm():
    p = Parameter(np.zeros(4))
    (p * 10.0).sum().backward()
    norm = clip_grad_norm([p], max_norm=1.0)
    assert norm == pytest.approx(20.0)  # sqrt(4 * 100)
    assert np.linalg.norm(p.grad.data) == pytest.approx(1.0)


def test_clip_grad_norm_noop_below_threshold():
    p = Parameter(np.zeros(4))
    (p * 0.1).sum().backward()
    before = p.grad.data.copy()
    clip_grad_norm([p], max_norm=10.0)
    np.testing.assert_array_equal(p.grad.data, before)
