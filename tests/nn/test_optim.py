"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, RMSprop, clip_grad_norm


def _quadratic_step(opt_cls, steps=200, **kwargs):
    """Minimize f(w) = sum((w - 3)^2); returns final w."""
    w = Parameter(np.zeros(4))
    opt = opt_cls([w], **kwargs)
    for _ in range(steps):
        loss = ((w - Tensor(np.full(4, 3.0))) ** 2).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return w.data


@pytest.mark.parametrize(
    "opt_cls, kwargs",
    [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.1}),
        (RMSprop, {"lr": 0.05}),
    ],
)
def test_optimizers_converge_on_quadratic(opt_cls, kwargs):
    w = _quadratic_step(opt_cls, **kwargs)
    np.testing.assert_allclose(w, 3.0, atol=0.05)


def test_invalid_lr_rejected():
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(2))], lr=0.0)


def test_empty_params_rejected():
    with pytest.raises(ValueError):
        Adam([], lr=0.1)


def test_skips_params_without_grad():
    a = Parameter(np.zeros(2))
    b = Parameter(np.zeros(2))
    opt = SGD([a, b], lr=0.1)
    (a * 2.0).sum().backward()
    opt.step()
    assert (a.data != 0).all()
    assert (b.data == 0).all()


def test_zero_grad_clears():
    p = Parameter(np.zeros(2))
    (p * 1.0).sum().backward()
    assert p.grad is not None
    SGD([p], lr=0.1).zero_grad()
    assert p.grad is None


def test_adam_bias_correction_first_step():
    """First Adam step should be ≈ lr in the gradient direction."""
    p = Parameter(np.zeros(3))
    opt = Adam([p], lr=0.1)
    (p * Tensor(np.array([1.0, 2.0, -3.0]))).sum().backward()
    opt.step()
    np.testing.assert_allclose(p.data, [-0.1, -0.1, 0.1], atol=1e-6)


def test_clip_grad_norm():
    p = Parameter(np.zeros(4))
    (p * 10.0).sum().backward()
    norm = clip_grad_norm([p], max_norm=1.0)
    assert norm == pytest.approx(20.0)  # sqrt(4 * 100)
    assert np.linalg.norm(p.grad.data) == pytest.approx(1.0)


def test_clip_grad_norm_noop_below_threshold():
    p = Parameter(np.zeros(4))
    (p * 0.1).sum().backward()
    before = p.grad.data.copy()
    clip_grad_norm([p], max_norm=10.0)
    np.testing.assert_array_equal(p.grad.data, before)


# ------------------------------------------------- in-place update contract
def _reference_update(opt, p_data, g, state):
    """The textbook expression forms the in-place sequences replaced."""
    if isinstance(opt, Adam):
        t = state["t"] = state.get("t", 0) + 1
        m = state["m"] = opt.b1 * state.get("m", np.zeros_like(p_data)) + (1 - opt.b1) * g
        v = state["v"] = opt.b2 * state.get("v", np.zeros_like(p_data)) + (1 - opt.b2) * g * g
        return p_data - (opt.lr * (m / (1 - opt.b1**t))) / (
            np.sqrt(v / (1 - opt.b2**t)) + opt.eps
        )
    if isinstance(opt, RMSprop):
        sq = state["sq"] = opt.alpha * state.get("sq", np.zeros_like(p_data)) + (
            1 - opt.alpha
        ) * g * g
        return p_data - (opt.lr * g) / (np.sqrt(sq) + opt.eps)
    if opt.momentum:
        prev = state.get("vel", np.zeros_like(p_data))
        vel = state["vel"] = opt.momentum * prev - opt.lr * g
        return p_data + vel
    return p_data - opt.lr * g


@pytest.mark.parametrize(
    "opt_cls,kwargs",
    [
        (SGD, {"lr": 0.05}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.01}),
        (RMSprop, {"lr": 0.01}),
    ],
    ids=["sgd", "sgd_momentum", "adam", "rmsprop"],
)
def test_inplace_updates_bitwise_match_expression_forms(opt_cls, kwargs):
    rng = np.random.default_rng(3)
    p = Parameter(rng.normal(size=(4, 3)))
    opt = opt_cls([p], **kwargs)
    ref, state = p.data.copy(), {}
    for _ in range(25):
        g = rng.normal(size=p.data.shape)
        p.grad = Tensor(g)
        opt.step()
        ref = _reference_update(opt, ref, g, state)
        np.testing.assert_array_equal(p.data, ref)


def test_inplace_step_keeps_param_identity_and_allocates_no_temps():
    """``step()`` mutates the same arrays (the compiled path's guard
    relies on it) and stages through the two shared scratch buffers."""
    rng = np.random.default_rng(4)
    params = [Parameter(rng.normal(size=(8, 8))), Parameter(rng.normal(size=(5,)))]
    opt = Adam(params, lr=0.01)
    before = [p.data for p in params]
    for p in params:
        p.grad = Tensor(rng.normal(size=p.data.shape))
    opt.step()
    for p, b in zip(params, before):
        assert p.data is b
    assert len(opt._scratch_bufs) == 1  # one dtype → one scratch pool
    (bufs,) = opt._scratch_bufs.values()
    assert len(bufs) == 2 and all(b.size == 64 for b in bufs)


def test_bind_compiled_matches_step_bitwise():
    rng = np.random.default_rng(5)
    mk = lambda: [Parameter(rng.normal(size=(3, 3))), Parameter(rng.normal(size=(4,)))]
    rng = np.random.default_rng(5)
    params_a = mk()
    rng = np.random.default_rng(5)
    params_b = mk()
    opt_a = Adam(params_a, lr=0.02)
    opt_b = Adam(params_b, lr=0.02)
    grad_bufs = {i: np.zeros_like(p.data) for i, p in enumerate(params_b)}
    run = opt_b.bind_compiled(grad_bufs)
    grng = np.random.default_rng(6)
    for _ in range(10):
        gs = [grng.normal(size=p.data.shape) for p in params_a]
        for p, g in zip(params_a, gs):
            p.grad = Tensor(g)
        opt_a.step()
        for i, g in enumerate(gs):
            np.copyto(grad_bufs[i], g)
        run()
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)
    assert opt_a._t == opt_b._t


def test_moments_live_in_state_arenas():
    rng = np.random.default_rng(7)
    params = [Parameter(rng.normal(size=(4, 2))), Parameter(rng.normal(size=(6,)))]
    opt = Adam(params, lr=0.01)
    assert len(opt._state_arenas) == 2  # m and v
    for arena, views in zip(opt._state_arenas, (opt._m, opt._v)):
        for view in views:
            assert np.shares_memory(view, arena.buf)


def test_grad_norm_helper():
    from repro.nn.optim import grad_norm

    p1, p2 = Parameter(np.zeros(3)), Parameter(np.zeros(2))
    p1.grad = Tensor(np.array([3.0, 0.0, 0.0]))
    p2.grad = Tensor(np.array([0.0, 4.0]))
    assert grad_norm([p1, p2]) == pytest.approx(5.0)
    assert grad_norm([Parameter(np.zeros(2))]) == 0.0
