"""Tests for loss functions (incl. Chamfer and WGAN-GP)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, grad
from repro.nn.layers import Dense, Sequential, Tanh
from repro.nn.losses import (
    bce_loss,
    chamfer_distance,
    gradient_penalty,
    mae_loss,
    mse_loss,
)


def test_mse_known_value():
    pred = Tensor(np.array([1.0, 2.0]))
    target = Tensor(np.array([0.0, 4.0]))
    assert mse_loss(pred, target).item() == pytest.approx((1 + 4) / 2)


def test_mae_known_value():
    assert mae_loss(
        Tensor(np.array([1.0, -2.0])), Tensor(np.zeros(2))
    ).item() == pytest.approx(1.5)


def test_bce_perfect_prediction_near_zero():
    pred = Tensor(np.array([0.999999, 0.000001]))
    target = Tensor(np.array([1.0, 0.0]))
    assert bce_loss(pred, target).item() < 1e-4


def test_bce_gradient_direction():
    pred = Tensor(np.array([0.5]), requires_grad=True)
    (g,) = grad(bce_loss(pred, Tensor(np.array([1.0]))), [pred])
    assert g.data[0] < 0  # increasing pred decreases loss toward target 1


def test_chamfer_zero_for_identical_clouds():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(2, 6, 3))
    assert chamfer_distance(Tensor(a), Tensor(a.copy())).item() == pytest.approx(0.0)


def test_chamfer_permutation_invariant():
    rng = np.random.default_rng(1)
    a = rng.normal(size=(1, 8, 3))
    perm = rng.permutation(8)
    assert chamfer_distance(Tensor(a), Tensor(a[:, perm])).item() == pytest.approx(
        0.0, abs=1e-12
    )


def test_chamfer_grows_with_displacement():
    rng = np.random.default_rng(2)
    a = rng.normal(size=(1, 6, 3))
    small = chamfer_distance(Tensor(a), Tensor(a + 0.1)).item()
    large = chamfer_distance(Tensor(a), Tensor(a + 1.0)).item()
    assert 0 < small < large


def test_chamfer_symmetric():
    rng = np.random.default_rng(3)
    a, b = rng.normal(size=(1, 5, 3)), rng.normal(size=(1, 7, 3))
    ab = chamfer_distance(Tensor(a), Tensor(b)).item()
    ba = chamfer_distance(Tensor(b), Tensor(a)).item()
    assert ab == pytest.approx(ba)


def test_chamfer_gradient_flows():
    rng = np.random.default_rng(4)
    a = Tensor(rng.normal(size=(1, 5, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(1, 5, 3)))
    (g,) = grad(chamfer_distance(a, b), [a])
    assert np.abs(g.data).max() > 0


def _critic():
    rng = np.random.default_rng(5)
    return Sequential(Dense(4, 8, rng), Tanh(), Dense(8, 1, rng))


def test_gradient_penalty_nonnegative():
    rng = np.random.default_rng(6)
    gp = gradient_penalty(
        _critic(), Tensor(rng.normal(size=(8, 4))), Tensor(rng.normal(size=(8, 4))), rng
    )
    assert gp.item() >= 0


def test_gradient_penalty_reaches_critic_weights():
    """The double-backward path must deliver gradients to the weights
    that shape ∇ₓD (all but the output bias)."""
    rng = np.random.default_rng(7)
    critic = _critic()
    gp = gradient_penalty(
        critic, Tensor(rng.normal(size=(8, 4))), Tensor(rng.normal(size=(8, 4))), rng
    )
    critic.zero_grad()
    gp.backward()
    grads = [p.grad for p in critic.parameters()]
    # weight matrices and hidden bias get gradients; output bias cannot
    # influence ∇ₓD so its gradient is legitimately absent
    with_grad = sum(1 for g in grads if g is not None and np.abs(g.data).max() > 0)
    assert with_grad >= 3


def test_gradient_penalty_zero_for_unit_gradient_critic():
    """A critic D(x) = x·e with ‖∇D‖=1 must incur zero penalty."""
    rng = np.random.default_rng(8)

    class UnitCritic:
        def __call__(self, x):
            w = np.zeros((4, 1))
            w[0, 0] = 1.0
            return x @ Tensor(w)

    gp = gradient_penalty(
        UnitCritic(),
        Tensor(rng.normal(size=(6, 4))),
        Tensor(rng.normal(size=(6, 4))),
        rng,
    )
    assert gp.item() == pytest.approx(0.0, abs=1e-10)
