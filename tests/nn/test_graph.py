"""Bit-equivalence of the graph engine against the eager oracle.

The contract under test: for every supported layer type and for the full
surrogate network, graph execution produces **bit-identical** float64
output to the eager closure interpreter at the same precision and batch
size.  (Equivalence across *different* batch sizes is explicitly not
claimed — BLAS accumulation order varies with batch, for the eager path
too.)
"""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.graph import GraphExecutor, optimize, trace_module
from repro.nn.inference import compile_model
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool2d,
    PointwiseDense,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.surrogate.model import build_smilesnet

PRECISIONS = ["fp16", "fp32"]


def _warm_batchnorm(model, sample_shape, seed=9):
    """Run training-mode passes so BatchNorm has non-trivial stats."""
    rng = np.random.default_rng(seed)
    for _ in range(3):
        model(Tensor(rng.normal(size=(8,) + sample_shape)))
    model.eval()
    return model


def _assert_engines_identical(model, x, precision):
    model.eval()
    eager = compile_model(model, precision, engine="eager")(x)
    graph = compile_model(model, precision, engine="graph")(x)
    np.testing.assert_array_equal(graph, eager)


def _rng():
    return np.random.default_rng(0)


# one entry per layer type the tracer supports: (model factory, sample shape)
LAYER_ZOO = {
    "conv_padded": (lambda: Sequential(Conv2d(3, 5, 3, _rng(), padding=1)), (3, 8, 8)),
    "conv_valid": (lambda: Sequential(Conv2d(3, 4, 3, _rng())), (3, 8, 8)),
    "conv_strided_odd": (lambda: Sequential(Conv2d(3, 4, 3, _rng(), stride=2)), (3, 9, 7)),
    "conv_1x1": (lambda: Sequential(Conv2d(4, 6, 1, _rng())), (4, 5, 5)),
    "batchnorm_4d": (
        lambda: _warm_batchnorm(Sequential(Conv2d(2, 4, 3, _rng()), BatchNorm(4)), (2, 6, 6)),
        (2, 6, 6),
    ),
    "batchnorm_1d": (
        lambda: _warm_batchnorm(Sequential(Flatten(), Dense(12, 6, _rng()), BatchNorm(6)), (3, 2, 2)),
        (3, 2, 2),
    ),
    "dense_tanh": (lambda: Sequential(Flatten(), Dense(18, 5, _rng()), Tanh()), (2, 3, 3)),
    "dense_sigmoid": (lambda: Sequential(Flatten(), Dense(8, 1, _rng()), Sigmoid()), (2, 2, 2)),
    "pointwise_dense": (lambda: Sequential(PointwiseDense(4, 6, _rng()), ReLU()), (5, 4)),
    "leaky_relu": (lambda: Sequential(Flatten(), Dense(8, 8, _rng()), LeakyReLU(0.1)), (2, 2, 2)),
    "maxpool": (lambda: Sequential(Conv2d(2, 3, 3, _rng(), padding=1), MaxPool2d(2)), (2, 8, 8)),
    "global_avg_pool": (lambda: Sequential(Conv2d(2, 3, 3, _rng()), GlobalAvgPool2d()), (2, 6, 6)),
    "residual_identity": (
        lambda: _warm_batchnorm(
            ResidualBlock(Sequential(Conv2d(3, 3, 3, _rng(), padding=1), BatchNorm(3))),
            (3, 6, 6),
        ),
        (3, 6, 6),
    ),
    "residual_projected": (
        lambda: _warm_batchnorm(
            ResidualBlock(
                Sequential(Conv2d(3, 6, 3, _rng(), padding=1), BatchNorm(6)),
                projection=Conv2d(3, 6, 1, _rng()),
            ),
            (3, 6, 6),
        ),
        (3, 6, 6),
    ),
}


@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("name", sorted(LAYER_ZOO))
def test_layer_bit_identical_to_eager(name, precision):
    factory, sample_shape = LAYER_ZOO[name]
    x = np.random.default_rng(3).normal(size=(4,) + sample_shape)
    _assert_engines_identical(factory(), x, precision)


@pytest.fixture(scope="module")
def surrogate_net():
    model = build_smilesnet(seed=5, width=6)
    return _warm_batchnorm(model, (7, 24, 24))


@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("batch", [1, 5, 64])
def test_full_surrogate_bit_identical(surrogate_net, precision, batch):
    x = np.random.default_rng(4).normal(size=(batch, 7, 24, 24))
    _assert_engines_identical(surrogate_net, x, precision)


def test_repeated_runs_reuse_arena_correctly(surrogate_net):
    """A second batch through the same plan must not see stale arena data."""
    compiled = compile_model(surrogate_net, "fp16", engine="graph")
    eager = compile_model(surrogate_net, "fp16", engine="eager")
    rng = np.random.default_rng(6)
    x1, x2 = rng.normal(size=(2, 8, 7, 24, 24))
    out1 = compiled(x1)
    out2 = compiled(x2)
    np.testing.assert_array_equal(out1, eager(x1))
    np.testing.assert_array_equal(out2, eager(x2))
    executor = compiled.executor_for((7, 24, 24))
    assert len(executor._plans) == 1  # one bound plan serves both calls


def test_unoptimized_trace_also_bit_identical(surrogate_net):
    """The raw trace (no passes) must execute identically too."""
    graph = trace_module(surrogate_net, (7, 24, 24), "fp16")
    x = np.random.default_rng(7).normal(size=(3, 7, 24, 24))
    xq = x.astype(np.float16).astype(np.float32)
    out = GraphExecutor(graph).run(xq).astype(np.float64)
    eager = compile_model(surrogate_net, "fp16", engine="eager")(x)
    np.testing.assert_array_equal(out, eager)


def test_optimization_shrinks_node_count(surrogate_net):
    graph = trace_module(surrogate_net, (7, 24, 24), "fp16")
    n_traced = len(graph.nodes)
    optimize(graph)
    assert len(graph.nodes) < n_traced / 2


def test_plan_info_accounts_every_conv(surrogate_net):
    compiled = compile_model(surrogate_net, "fp16", engine="graph")
    info = compiled.executor_for((7, 24, 24)).plan_info(16)
    assert info["n_folded_gemm"] + info["n_broadcast_gemm"] == 6  # 6 convs
    assert info["arena_elems"] < info["naive_elems"]
    assert info["arena_bytes"] == info["arena_elems"] * 4  # fp32 compute


def test_graph_output_dtype_and_shape(surrogate_net):
    out = compile_model(surrogate_net, "fp16")(np.zeros((3, 7, 24, 24)))
    assert out.dtype == np.float64
    assert out.shape == (3, 1)


def test_unknown_engine_rejected(surrogate_net):
    with pytest.raises(ValueError):
        compile_model(surrogate_net, "fp16", engine="jit")


def test_graph_engine_rejects_unknown_module_at_compile_time():
    from repro.nn.layers import Module

    class Weird(Module):
        def forward(self, x):
            return x

    with pytest.raises(TypeError):
        compile_model(Sequential(Weird()), engine="graph")


def test_graph_faster_than_eager_at_campaign_batch(surrogate_net):
    """The point of the rewrite: graph must beat eager at batch 64."""
    import time

    x = np.random.default_rng(8).normal(size=(64, 7, 24, 24))
    graph = compile_model(surrogate_net, "fp16", engine="graph")
    eager = compile_model(surrogate_net, "fp16", engine="eager")
    graph(x), eager(x)  # warm plans and index caches

    t0 = time.perf_counter()
    for _ in range(3):
        eager(x)
    eager_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(3):
        graph(x)
    graph_time = time.perf_counter() - t0
    assert graph_time < eager_time
