"""Tests for the autograd engine, including higher-order gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor, grad, no_grad


def _numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    out = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = out.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f(x)
        flat[i] = orig - eps
        dn = f(x)
        flat[i] = orig
        gflat[i] = (up - dn) / (2 * eps)
    return out


@pytest.mark.parametrize(
    "op, domain",
    [
        (lambda t: (t * t).sum(), (-2, 2)),
        (lambda t: ag.exp(t).sum(), (-1, 1)),
        (lambda t: ag.log(t).sum(), (0.5, 3)),
        (lambda t: ag.tanh(t).sum(), (-2, 2)),
        (lambda t: ag.sigmoid(t).sum(), (-2, 2)),
        (lambda t: ag.sqrt(t).sum(), (0.5, 3)),
        (lambda t: ag.power(t, 3.0).sum(), (-2, 2)),
        (lambda t: (t / (t + 5.0)).sum(), (0.5, 3)),
        (lambda t: ag.absolute(t).sum(), (0.5, 3)),
        (lambda t: ag.leaky_relu(t).sum(), (0.5, 3)),
    ],
)
def test_elementwise_gradients_match_numeric(op, domain):
    rng = np.random.default_rng(0)
    x = rng.uniform(*domain, size=(3, 4))
    t = Tensor(x, requires_grad=True)
    (g,) = grad(op(t), [t])
    num = _numeric_grad(lambda a: op(Tensor(a)).item(), x.copy())
    np.testing.assert_allclose(g.data, num, rtol=1e-4, atol=1e-6)


def test_matmul_gradients():
    rng = np.random.default_rng(1)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    ga, gb = grad(ag.tanh(ta @ tb).sum(), [ta, tb])
    num_a = _numeric_grad(lambda x: np.tanh(x @ b).sum(), a.copy())
    num_b = _numeric_grad(lambda x: np.tanh(a @ x).sum(), b.copy())
    np.testing.assert_allclose(ga.data, num_a, rtol=1e-4)
    np.testing.assert_allclose(gb.data, num_b, rtol=1e-4)


def test_batched_matmul_broadcast_gradient():
    rng = np.random.default_rng(2)
    w = rng.normal(size=(5, 3))
    x = rng.normal(size=(4, 3, 7))
    tw = Tensor(w, requires_grad=True)
    out = (Tensor(x).transpose(0, 2, 1) @ tw.T).sum()
    (gw,) = grad(out, [tw])
    num = _numeric_grad(lambda a: (x.transpose(0, 2, 1) @ a.T).sum(), w.copy())
    np.testing.assert_allclose(gw.data, num, rtol=1e-4)


def test_broadcast_add_mul():
    b = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    z = (Tensor(np.ones((5, 2))) * b + b).sum()
    (gb,) = grad(z, [b])
    np.testing.assert_allclose(gb.data, [10.0, 10.0])


def test_reshape_transpose_roundtrip_grad():
    x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
    y = (x.reshape(4, 3).T * 2.0).sum()
    (g,) = grad(y, [x])
    np.testing.assert_allclose(g.data, 2.0)


def test_getitem_scatter_gradient():
    x = Tensor(np.arange(10.0), requires_grad=True)
    y = (x[2:5] * 3.0).sum()
    (g,) = grad(y, [x])
    expected = np.zeros(10)
    expected[2:5] = 3.0
    np.testing.assert_allclose(g.data, expected)


def test_take_gradient_accumulates_duplicates():
    x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    y = ag.take(x, np.array([2, 0, 2]), axis=1).sum()
    (g,) = grad(y, [x])
    np.testing.assert_allclose(g.data, [[1, 0, 2], [1, 0, 2]])


def test_concatenate_gradient():
    a = Tensor(np.ones(3), requires_grad=True)
    b = Tensor(np.ones(2), requires_grad=True)
    y = (ag.concatenate([a, b]) * Tensor(np.array([1, 2, 3, 4, 5.0]))).sum()
    ga, gb = grad(y, [a, b])
    np.testing.assert_allclose(ga.data, [1, 2, 3])
    np.testing.assert_allclose(gb.data, [4, 5])


def test_stack_gradient():
    a = Tensor(np.ones(3), requires_grad=True)
    b = Tensor(np.ones(3), requires_grad=True)
    y = (ag.stack([a, b], axis=0) * Tensor(np.array([[1.0], [2.0]]))).sum()
    ga, gb = grad(y, [a, b])
    np.testing.assert_allclose(ga.data, 1.0)
    np.testing.assert_allclose(gb.data, 2.0)


def test_max_gradient_ties_split():
    x = Tensor(np.array([[1.0, 5.0, 5.0]]), requires_grad=True)
    (g,) = grad(x.max(axis=1).sum(), [x])
    np.testing.assert_allclose(g.data, [[0, 0.5, 0.5]])


def test_min_gradient():
    x = Tensor(np.array([[3.0, 1.0, 2.0]]), requires_grad=True)
    (g,) = grad(x.min(axis=1).sum(), [x])
    np.testing.assert_allclose(g.data, [[0, 1, 0]])


def test_mean_gradient():
    x = Tensor(np.ones((2, 4)), requires_grad=True)
    (g,) = grad(x.mean(), [x])
    np.testing.assert_allclose(g.data, 1.0 / 8)


def test_pad2d_gradient():
    x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
    (g,) = grad(ag.pad2d(x, 2).sum(), [x])
    np.testing.assert_allclose(g.data, 1.0)


def test_double_backward_polynomial():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    y = ag.tensor_sum(x * x * x)
    (g1,) = grad(y, [x], create_graph=True)
    f = ag.tensor_sum(g1 * g1)  # sum 9x^4
    (g2,) = grad(f, [x])  # 36x^3
    np.testing.assert_allclose(g2.data, 36 * np.array([1.0, 8.0]))


def test_double_backward_through_tanh():
    x = Tensor(np.array([0.3, -0.7]), requires_grad=True)
    y = ag.tensor_sum(ag.tanh(x))
    (g1,) = grad(y, [x], create_graph=True)
    f = ag.tensor_sum(g1)
    (g2,) = grad(f, [x])  # d/dx (1 - tanh²x) = -2 tanh x (1 - tanh²x)
    expected = -2 * np.tanh(x.data) * (1 - np.tanh(x.data) ** 2)
    np.testing.assert_allclose(g2.data, expected, rtol=1e-10)


def test_no_grad_blocks_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = (x * x).sum()
    assert not y.requires_grad


def test_backward_accumulates_on_leaves():
    x = Tensor(np.ones(3), requires_grad=True)
    (x * 2.0).sum().backward()
    np.testing.assert_allclose(x.grad.data, 2.0)
    (x * 3.0).sum().backward()
    np.testing.assert_allclose(x.grad.data, 5.0)  # accumulated


def test_grad_zero_for_unused_leaf():
    x = Tensor(np.ones(3), requires_grad=True)
    z = Tensor(np.ones(3), requires_grad=True)
    (g,) = grad((x * 2).sum(), [z])
    np.testing.assert_allclose(g.data, 0.0)


def test_shared_subexpression_gradient():
    x = Tensor(np.array([2.0]), requires_grad=True)
    h = x * x
    y = (h + h).sum()  # d/dx 2x² = 4x
    (g,) = grad(y, [x])
    np.testing.assert_allclose(g.data, [8.0])


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_mlp_gradcheck_property(seed):
    """Random small MLPs pass numeric grad-check on all weights."""
    rng = np.random.default_rng(seed)
    w1 = rng.normal(size=(4, 5))
    w2 = rng.normal(size=(5, 1))
    x = rng.normal(size=(3, 4))

    def f(w1d):
        return np.tanh(x @ w1d).clip(0) @ w2  # relu∘? no: tanh then matmul

    t1 = Tensor(w1, requires_grad=True)
    out = ag.tensor_sum(ag.relu(ag.tanh(Tensor(x) @ t1)) @ Tensor(w2))
    (g,) = grad(out, [t1])
    num = _numeric_grad(
        lambda a: (np.clip(np.tanh(x @ a), 0, None) @ w2).sum(), w1.copy()
    )
    np.testing.assert_allclose(g.data, num, rtol=1e-3, atol=1e-6)
