"""Tests for the liveness-based arena memory planner."""

import numpy as np
import pytest

from repro.nn.graph import optimize, plan_memory, trace_module, validate_plan
from repro.nn.graph.planner import _ALIGN, _align
from repro.surrogate.model import build_smilesnet


@pytest.fixture(scope="module")
def graph():
    model = build_smilesnet(seed=1, width=6)
    model.eval()
    g = trace_module(model, (7, 24, 24), "fp16")
    optimize(g)
    return g


@pytest.mark.parametrize("batch", [1, 5, 64])
def test_plan_has_no_live_range_overlap(graph, batch):
    assert validate_plan(graph, plan_memory(graph, batch))


def test_plan_is_deterministic(graph):
    a = plan_memory(graph, 16)
    b = plan_memory(graph, 16)
    assert a.slots == b.slots
    assert a.intervals == b.intervals
    assert a.total_elems == b.total_elems


def test_arena_reuses_memory(graph):
    plan = plan_memory(graph, 64)
    assert plan.total_elems < plan.naive_elems  # packing beats no-reuse
    assert plan.n_buffers > 3


def test_offsets_are_aligned(graph):
    plan = plan_memory(graph, 7)
    for off, size in plan.slots.values():
        assert off % _ALIGN == 0
        assert size % _ALIGN == 0


def test_padded_conv_inputs_get_zero_slot_rows(graph):
    plan = plan_memory(graph, 4)
    assert plan.slot_roots  # SmilesNet is all padded convs
    for root in plan.slot_roots:
        _, size = plan.slots[("value", root)]
        assert size == _align(4 * (graph.values[root].ps_elems + 1))


def test_scratch_slots_live_only_at_their_step(graph):
    mm_steps = [i for i, n in enumerate(graph.nodes) if n.kind == "matmul"]
    scratch = {mm_steps[0]: (1024, 2048)}
    plan = plan_memory(graph, 4, scratch)
    assert validate_plan(graph, plan)
    for j, elems in enumerate((1024, 2048)):
        key = ("scratch", mm_steps[0], j)
        assert plan.slots[key][1] == _align(elems)
        assert plan.intervals[key] == (mm_steps[0], mm_steps[0])


def test_validate_plan_detects_corruption(graph):
    plan = plan_memory(graph, 4)
    # force two temporally-overlapping slots onto the same offset
    keys = sorted(plan.slots, key=lambda k: plan.intervals[k][0])
    a, b = keys[0], keys[1]
    plan.slots[b] = (plan.slots[a][0], plan.slots[b][1])
    with pytest.raises(AssertionError):
        validate_plan(graph, plan)


def test_validate_plan_detects_out_of_bounds(graph):
    plan = plan_memory(graph, 4)
    key = next(iter(plan.slots))
    plan.slots[key] = (plan.total_elems, 16)
    with pytest.raises(AssertionError):
        validate_plan(graph, plan)


def test_plan_scales_with_batch(graph):
    small = plan_memory(graph, 1)
    big = plan_memory(graph, 64)
    assert big.total_elems > small.total_elems
    assert big.total_bytes == big.total_elems * np.dtype(np.float32).itemsize
