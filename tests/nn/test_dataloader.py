"""Tests for the sharded, threaded data pipeline."""

import gzip
import pickle
import threading
import time
from pathlib import Path

import pytest

from repro.nn.dataloader import PrefetchLoader, ShardReader, partition_shards
from repro.util.shardio import shard_path, write_shard


def _write_shards(tmp_path, n_shards=4, per_shard=10):
    paths = []
    for s in range(n_shards):
        records = [(f"ID{s}-{i}", f"C" * (i + 1)) for i in range(per_shard)]
        p = tmp_path / f"shard-{s}.pkl.gz"
        with gzip.open(p, "wb") as fh:
            pickle.dump(records, fh)
        paths.append(p)
    return paths


def test_partition_round_robin():
    paths = [f"s{i}" for i in range(7)]
    p0 = partition_shards(paths, 0, 3)
    p1 = partition_shards(paths, 1, 3)
    p2 = partition_shards(paths, 2, 3)
    assert [str(p) for p in p0] == ["s0", "s3", "s6"]
    assert [str(p) for p in p1] == ["s1", "s4"]
    assert len(p0) + len(p1) + len(p2) == 7


def test_partition_validates():
    with pytest.raises(ValueError):
        partition_shards(["a"], 2, 2)
    with pytest.raises(ValueError):
        partition_shards(["a"], 0, 0)


def test_reader_yields_all_records(tmp_path):
    paths = _write_shards(tmp_path)
    reader = ShardReader(paths)
    records = list(reader)
    assert len(records) == 40
    assert reader.stats.shards_read == 4
    assert reader.stats.records_yielded == 40
    assert reader.stats.io_errors == 0


def test_reader_skips_corrupt_shard(tmp_path):
    paths = _write_shards(tmp_path, n_shards=3)
    paths[1].write_bytes(b"this is not gzip")
    reader = ShardReader(paths)
    records = list(reader)
    assert len(records) == 20
    assert reader.stats.io_errors == 1
    assert reader.stats.shards_read == 2


def test_reader_skips_missing_shard(tmp_path):
    paths = _write_shards(tmp_path, n_shards=2)
    paths.append(tmp_path / "missing.pkl.gz")
    reader = ShardReader(paths)
    assert len(list(reader)) == 20
    assert reader.stats.io_errors == 1


def test_reader_strict_mode_raises(tmp_path):
    paths = _write_shards(tmp_path, n_shards=2)
    paths[0].write_bytes(b"garbage")
    with pytest.raises(OSError):
        list(ShardReader(paths, strict=True))


def test_prefetch_loader_batches(tmp_path):
    paths = _write_shards(tmp_path, n_shards=2, per_shard=7)  # 14 records
    loader = PrefetchLoader(ShardReader(paths), batch_size=4)
    batches = list(loader)
    assert [len(b) for b in batches] == [4, 4, 4, 2]
    flat = [r for b in batches for r in b]
    assert len({r[0] for r in flat}) == 14


def test_prefetch_loader_transform(tmp_path):
    paths = _write_shards(tmp_path, n_shards=1, per_shard=5)
    loader = PrefetchLoader(
        ShardReader(paths), batch_size=2, transform=lambda rec: len(rec[1])
    )
    flat = [x for b in loader for x in b]
    assert flat == [1, 2, 3, 4, 5]


def test_prefetch_loader_reiterable(tmp_path):
    paths = _write_shards(tmp_path, n_shards=1, per_shard=6)
    loader = PrefetchLoader(ShardReader(paths), batch_size=3)
    first = [r for b in loader for r in b]
    second = [r for b in loader for r in b]
    assert first == second


def test_prefetch_loader_validates_batch_size(tmp_path):
    with pytest.raises(ValueError):
        PrefetchLoader(ShardReader([]), batch_size=0)


def test_loader_with_library_shards(tmp_path):
    """Integration with CompoundLibrary's shard format."""
    from repro.chem.library import generate_library

    lib = generate_library(12, seed=21)
    paths = lib.to_shards(tmp_path, shard_size=5)
    loader = PrefetchLoader(ShardReader(paths), batch_size=4)
    records = [r for b in loader for r in b]
    assert [r[0] for r in records] == [e.compound_id for e in lib]


def test_staging_copies_shards_locally(tmp_path):
    """§6.1.1: shards are staged GPFS → node-local storage before reading."""
    src = tmp_path / "gpfs"
    src.mkdir()
    paths = _write_shards(src, n_shards=3, per_shard=4)
    staging = tmp_path / "nvme"
    reader = ShardReader(paths, staging_dir=staging)
    records = list(reader)
    assert len(records) == 12
    assert reader.stats.shards_staged == 3
    assert sorted(p.name for p in staging.iterdir()) == sorted(p.name for p in paths)
    # second pass reads the staged copies without re-staging
    records2 = list(reader)
    assert records2 == records
    assert reader.stats.shards_staged == 3


def test_reader_mixes_ndjson_and_pickle_shards(tmp_path):
    nd = shard_path(tmp_path, "m", 0, format="ndjson")
    pk = shard_path(tmp_path, "m", 1, format="pickle")
    write_shard(nd, [("N1", "CCO"), ("N2", "CCN")])
    write_shard(pk, [("P1", "CCC")])
    reader = ShardReader([nd, pk])
    assert list(reader) == [("N1", "CCO"), ("N2", "CCN"), ("P1", "CCC")]
    assert reader.stats.shards_read == 2


def _no_prefetch_threads(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(t.name == "shard-prefetch" for t in threading.enumerate()):
            return True
        time.sleep(0.01)
    return False


def test_early_break_unblocks_producer(tmp_path):
    """Regression: with a full depth-1 queue, abandoning iteration used to
    leave the producer blocked forever in ``q.put``."""
    paths = _write_shards(tmp_path, n_shards=4, per_shard=50)  # 200 records
    loader = PrefetchLoader(ShardReader(paths), batch_size=5, queue_depth=1)
    it = iter(loader)
    assert len(next(it)) == 5
    it.close()  # consumer walks away mid-stream
    assert _no_prefetch_threads(), "producer thread leaked after early break"


def test_repeated_early_breaks_do_not_leak_threads(tmp_path):
    paths = _write_shards(tmp_path, n_shards=4, per_shard=50)
    loader = PrefetchLoader(ShardReader(paths), batch_size=5, queue_depth=1)
    for _ in range(5):
        for _batch in loader:
            break
    assert _no_prefetch_threads()


def test_producer_error_reraised_not_silent_eof(tmp_path):
    """Regression: a producer-side exception (corrupt shard under
    ``strict=True``) used to be swallowed, truncating the stream into
    what looked like a clean end-of-data."""
    paths = _write_shards(tmp_path, n_shards=3, per_shard=4)
    paths[1].write_bytes(b"garbage")
    loader = PrefetchLoader(ShardReader(paths, strict=True), batch_size=4)
    seen = []
    with pytest.raises(OSError):
        for batch in loader:
            seen.append(batch)
    assert len(seen) <= 1  # at most shard 0; never shard 2's records


def test_producer_error_beats_pending_partial_batch(tmp_path):
    """The error must surface before any trailing partial batch is
    yielded — a half-delivered stream is an error, not data."""
    paths = _write_shards(tmp_path, n_shards=2, per_shard=4)
    paths[1].write_bytes(b"garbage")
    loader = PrefetchLoader(ShardReader(paths, strict=True), batch_size=100)
    with pytest.raises(OSError):
        list(loader)
    assert _no_prefetch_threads()


def test_staging_interrupted_copy_is_crash_safe(tmp_path, monkeypatch):
    """Regression: an interrupted stage copy used to leave a truncated
    file at the final staged name, which later passes silently reused."""
    import shutil

    src = tmp_path / "gpfs"
    src.mkdir()
    paths = _write_shards(src, n_shards=1, per_shard=4)
    staging = tmp_path / "nvme"

    real_copyfile = shutil.copyfile
    calls = {"n": 0}

    def flaky(srcp, dstp, **kw):
        calls["n"] += 1
        if calls["n"] == 1:
            Path(dstp).write_bytes(Path(srcp).read_bytes()[:10])  # torn copy
            raise OSError("interrupted mid-copy")
        return real_copyfile(srcp, dstp, **kw)

    monkeypatch.setattr("shutil.copyfile", flaky)

    reader = ShardReader(paths, staging_dir=staging)
    assert list(reader) == []
    assert reader.stats.io_errors == 1
    # nothing truncated left behind — neither final name nor temp
    assert list(staging.iterdir()) == []
    # the retry pass stages cleanly and reads every record
    records = list(reader)
    assert len(records) == 4
    assert (staging / paths[0].name).exists()


def test_staging_tolerates_missing_source(tmp_path):
    src = tmp_path / "gpfs"
    src.mkdir()
    paths = _write_shards(src, n_shards=2, per_shard=4)
    paths.append(src / "gone.pkl.gz")
    reader = ShardReader(paths, staging_dir=tmp_path / "nvme")
    assert len(list(reader)) == 8
    assert reader.stats.io_errors == 1
