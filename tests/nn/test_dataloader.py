"""Tests for the sharded, threaded data pipeline."""

import gzip
import pickle

import pytest

from repro.nn.dataloader import PrefetchLoader, ShardReader, partition_shards


def _write_shards(tmp_path, n_shards=4, per_shard=10):
    paths = []
    for s in range(n_shards):
        records = [(f"ID{s}-{i}", f"C" * (i + 1)) for i in range(per_shard)]
        p = tmp_path / f"shard-{s}.pkl.gz"
        with gzip.open(p, "wb") as fh:
            pickle.dump(records, fh)
        paths.append(p)
    return paths


def test_partition_round_robin():
    paths = [f"s{i}" for i in range(7)]
    p0 = partition_shards(paths, 0, 3)
    p1 = partition_shards(paths, 1, 3)
    p2 = partition_shards(paths, 2, 3)
    assert [str(p) for p in p0] == ["s0", "s3", "s6"]
    assert [str(p) for p in p1] == ["s1", "s4"]
    assert len(p0) + len(p1) + len(p2) == 7


def test_partition_validates():
    with pytest.raises(ValueError):
        partition_shards(["a"], 2, 2)
    with pytest.raises(ValueError):
        partition_shards(["a"], 0, 0)


def test_reader_yields_all_records(tmp_path):
    paths = _write_shards(tmp_path)
    reader = ShardReader(paths)
    records = list(reader)
    assert len(records) == 40
    assert reader.stats.shards_read == 4
    assert reader.stats.records_yielded == 40
    assert reader.stats.io_errors == 0


def test_reader_skips_corrupt_shard(tmp_path):
    paths = _write_shards(tmp_path, n_shards=3)
    paths[1].write_bytes(b"this is not gzip")
    reader = ShardReader(paths)
    records = list(reader)
    assert len(records) == 20
    assert reader.stats.io_errors == 1
    assert reader.stats.shards_read == 2


def test_reader_skips_missing_shard(tmp_path):
    paths = _write_shards(tmp_path, n_shards=2)
    paths.append(tmp_path / "missing.pkl.gz")
    reader = ShardReader(paths)
    assert len(list(reader)) == 20
    assert reader.stats.io_errors == 1


def test_reader_strict_mode_raises(tmp_path):
    paths = _write_shards(tmp_path, n_shards=2)
    paths[0].write_bytes(b"garbage")
    with pytest.raises(OSError):
        list(ShardReader(paths, strict=True))


def test_prefetch_loader_batches(tmp_path):
    paths = _write_shards(tmp_path, n_shards=2, per_shard=7)  # 14 records
    loader = PrefetchLoader(ShardReader(paths), batch_size=4)
    batches = list(loader)
    assert [len(b) for b in batches] == [4, 4, 4, 2]
    flat = [r for b in batches for r in b]
    assert len({r[0] for r in flat}) == 14


def test_prefetch_loader_transform(tmp_path):
    paths = _write_shards(tmp_path, n_shards=1, per_shard=5)
    loader = PrefetchLoader(
        ShardReader(paths), batch_size=2, transform=lambda rec: len(rec[1])
    )
    flat = [x for b in loader for x in b]
    assert flat == [1, 2, 3, 4, 5]


def test_prefetch_loader_reiterable(tmp_path):
    paths = _write_shards(tmp_path, n_shards=1, per_shard=6)
    loader = PrefetchLoader(ShardReader(paths), batch_size=3)
    first = [r for b in loader for r in b]
    second = [r for b in loader for r in b]
    assert first == second


def test_prefetch_loader_validates_batch_size(tmp_path):
    with pytest.raises(ValueError):
        PrefetchLoader(ShardReader([]), batch_size=0)


def test_loader_with_library_shards(tmp_path):
    """Integration with CompoundLibrary's shard format."""
    from repro.chem.library import generate_library

    lib = generate_library(12, seed=21)
    paths = lib.to_shards(tmp_path, shard_size=5)
    loader = PrefetchLoader(ShardReader(paths), batch_size=4)
    records = [r for b in loader for r in b]
    assert [r[0] for r in records] == [e.compound_id for e in lib]


def test_staging_copies_shards_locally(tmp_path):
    """§6.1.1: shards are staged GPFS → node-local storage before reading."""
    src = tmp_path / "gpfs"
    src.mkdir()
    paths = _write_shards(src, n_shards=3, per_shard=4)
    staging = tmp_path / "nvme"
    reader = ShardReader(paths, staging_dir=staging)
    records = list(reader)
    assert len(records) == 12
    assert reader.stats.shards_staged == 3
    assert sorted(p.name for p in staging.iterdir()) == sorted(p.name for p in paths)
    # second pass reads the staged copies without re-staging
    records2 = list(reader)
    assert records2 == records
    assert reader.stats.shards_staged == 3


def test_staging_tolerates_missing_source(tmp_path):
    src = tmp_path / "gpfs"
    src.mkdir()
    paths = _write_shards(src, n_shards=2, per_shard=4)
    paths.append(src / "gone.pkl.gz")
    reader = ShardReader(paths, staging_dir=tmp_path / "nvme")
    assert len(list(reader)) == 8
    assert reader.stats.io_errors == 1
