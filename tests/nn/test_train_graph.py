"""Compiled TrainStep vs. the eager interpreter: bitwise trajectories.

The compiled training path's hard contract — weights, losses and
optimizer state bit-identical to the eager loop at the same seed,
precision and batch size — checked across a layer zoo (dense, conv,
BatchNorm, pooling, residual skip, leaky/sigmoid/tanh activations) ×
every optimizer × fp64 and fp32, plus the compile-time plumbing:
multi-shape plans for partial batches, validated arena plans, the
parameter-rebind guard, and the optimizer StateArena.
"""

import numpy as np
import pytest

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor
from repro.nn.graph.planner import plan_state_arena, validate_train_plan
from repro.nn.graph.train import TrainStep
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool2d,
    Module,
    PointwiseDense,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import mse_loss
from repro.nn.optim import SGD, Adam, RMSprop


def _mlp(rng):
    return Sequential(Dense(6, 8, rng), ReLU(), Dense(8, 8, rng), Tanh(), Dense(8, 1, rng))


def _bn_mlp(rng):
    return Sequential(Dense(6, 8, rng), BatchNorm(8), LeakyReLU(0.2), Dense(8, 1, rng))


def _convnet(rng):
    return Sequential(
        Conv2d(2, 4, 3, rng, padding=1),
        BatchNorm(4),
        ReLU(),
        MaxPool2d(2),
        Conv2d(4, 4, 3, rng, padding=1),
        Sigmoid(),
        GlobalAvgPool2d(),
        Dense(4, 1, rng),
    )


def _resnet(rng):
    body = Sequential(Dense(6, 6, rng), Tanh())
    return Sequential(ResidualBlock(body), ReLU(), Dense(6, 1, rng))


class _PointNet(Module):
    """Pointwise MLP + max over points — the AAE encoder skeleton."""

    def __init__(self, rng):
        super().__init__()
        self.mlp = Sequential(PointwiseDense(3, 6, rng), ReLU(), PointwiseDense(6, 6, rng))
        self.head = Dense(6, 1, rng)

    def forward(self, x):
        return self.head(ag.tensor_max(self.mlp(x), axis=1))


ZOO = {
    "mlp": (_mlp, (6,)),
    "bn_mlp": (_bn_mlp, (6,)),
    "convnet": (_convnet, (2, 8, 8)),
    "resnet": (_resnet, (6,)),
    "pointnet": (_PointNet, (5, 3)),
}

OPTIMIZERS = {
    "sgd": lambda ps: SGD(ps, lr=0.05),
    "sgd_momentum": lambda ps: SGD(ps, lr=0.05, momentum=0.9),
    "adam": lambda ps: Adam(ps, lr=0.01),
    "rmsprop": lambda ps: RMSprop(ps, lr=0.01),
}


def _batches(feature_shape, n_steps, batch, dtype, seed=5):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.normal(size=(batch, *feature_shape)).astype(dtype),
            rng.random((batch, 1)).astype(dtype),
        )
        for _ in range(n_steps)
    ]


def _run_eager(build, make_opt, batches, seed=9):
    model = build(np.random.default_rng(seed))
    opt = make_opt(model.parameters())
    losses = []
    for x, y in batches:
        loss = mse_loss(model(Tensor(x)), Tensor(y))
        model.zero_grad()
        loss.backward()
        opt.step()
        losses.append(loss.item())
    return model, opt, losses


def _run_graph(build, make_opt, batches, seed=9):
    model = build(np.random.default_rng(seed))
    opt = make_opt(model.parameters())
    step = TrainStep(lambda xb, yb: mse_loss(model(xb), yb), opt)
    losses = [step(x, y) for x, y in batches]
    return model, opt, losses, step


def _assert_same_state(m_e, m_g):
    for pe, pg in zip(m_e.parameters(), m_g.parameters()):
        assert np.array_equal(pe.data, pg.data)
    for me, mg in zip(m_e.modules(), m_g.modules()):
        if isinstance(me, BatchNorm):
            assert np.array_equal(me.running_mean, mg.running_mean)
            assert np.array_equal(me.running_var, mg.running_var)


@pytest.mark.parametrize("arch", sorted(ZOO))
@pytest.mark.parametrize("opt_name", sorted(OPTIMIZERS))
def test_trajectory_bitwise_identical_fp64(arch, opt_name):
    build, feat = ZOO[arch]
    batches = _batches(feat, n_steps=5, batch=8, dtype=np.float64)
    m_e, o_e, l_e = _run_eager(build, OPTIMIZERS[opt_name], batches)
    m_g, o_g, l_g, _ = _run_graph(build, OPTIMIZERS[opt_name], batches)
    assert l_e == l_g
    _assert_same_state(m_e, m_g)


@pytest.mark.parametrize("arch", ["mlp", "convnet", "pointnet"])
def test_trajectory_bitwise_identical_fp32(arch):
    build, feat = ZOO[arch]
    with ag.default_dtype(np.float32):
        batches = _batches(feat, n_steps=4, batch=8, dtype=np.float32)
        m_e, o_e, l_e = _run_eager(build, OPTIMIZERS["adam"], batches)
        m_g, o_g, l_g, _ = _run_graph(build, OPTIMIZERS["adam"], batches)
    assert l_e == l_g
    _assert_same_state(m_e, m_g)
    assert all(p.data.dtype == np.float32 for p in m_g.parameters())


def test_adam_moments_bitwise_identical():
    build, feat = ZOO["mlp"]
    batches = _batches(feat, n_steps=6, batch=8, dtype=np.float64)
    _, o_e, _ = _run_eager(build, OPTIMIZERS["adam"], batches)
    _, o_g, _, _ = _run_graph(build, OPTIMIZERS["adam"], batches)
    assert o_e._t == o_g._t
    for me, mg in zip(o_e._m, o_g._m):
        assert np.array_equal(me, mg)
    for ve, vg in zip(o_e._v, o_g._v):
        assert np.array_equal(ve, vg)


def test_partial_batches_compile_separate_plans():
    """A trailing short batch gets its own plan; both replay bitwise."""
    build, feat = ZOO["mlp"]
    full = _batches(feat, n_steps=3, batch=8, dtype=np.float64)
    tail = _batches(feat, n_steps=3, batch=3, dtype=np.float64, seed=17)
    mixed = [b for pair in zip(full, tail) for b in pair]
    m_e, _, l_e = _run_eager(build, OPTIMIZERS["adam"], mixed)
    m_g, _, l_g, step = _run_graph(build, OPTIMIZERS["adam"], mixed)
    assert l_e == l_g
    _assert_same_state(m_e, m_g)
    assert len(step._plans) == 2  # one plan per input-shape signature


def test_compiled_plans_validate_and_report():
    build, feat = ZOO["convnet"]
    batches = _batches(feat, n_steps=2, batch=4, dtype=np.float64)
    _, _, _, step = _run_graph(build, OPTIMIZERS["adam"], batches)
    for compiled in step._plans.values():
        validate_train_plan(compiled.plan)  # no live-range overlap
    info = next(iter(step.plan_info().values()))
    assert info["n_ops"] >= info["n_kernels"] > 0
    assert info["n_inplace"] > 0  # coalescing actually fired
    assert info["arena_bytes"] > 0
    assert info["arena_elems"] < info["naive_elems"]  # packing reuses buffers
    assert info["pass_stats"]["coalesce_inplace"] > 0


def test_parameter_rebind_guard():
    build, feat = ZOO["mlp"]
    batches = _batches(feat, n_steps=2, batch=4, dtype=np.float64)
    model = build(np.random.default_rng(9))
    opt = OPTIMIZERS["adam"](model.parameters())
    step = TrainStep(lambda xb, yb: mse_loss(model(xb), yb), opt)
    step(*batches[0])
    model.parameters()[0].data = model.parameters()[0].data.copy()  # rebind
    with pytest.raises(RuntimeError, match="rebound"):
        step(*batches[1])


def test_grad_norm_matches_across_engines():
    build, feat = ZOO["mlp"]
    batches = _batches(feat, n_steps=3, batch=8, dtype=np.float64)
    model_e = build(np.random.default_rng(9))
    opt_e = OPTIMIZERS["adam"](model_e.parameters())
    model_g = build(np.random.default_rng(9))
    opt_g = OPTIMIZERS["adam"](model_g.parameters())
    step = TrainStep(lambda xb, yb: mse_loss(model_g(xb), yb), opt_g)
    from repro.nn.optim import grad_norm

    for x, y in batches:
        loss = mse_loss(model_e(Tensor(x)), Tensor(y))
        model_e.zero_grad()
        loss.backward()
        eager_norm = grad_norm(opt_e.params)
        opt_e.step()
        step(x, y)
        assert step.grad_norm() == eager_norm


def test_multiple_outputs_returned_as_floats():
    rng = np.random.default_rng(3)
    model = Sequential(Dense(4, 4, rng), Tanh(), Dense(4, 1, rng))
    opt = Adam(model.parameters(), lr=0.01)

    def fn(x, y):
        pred = model(x)
        loss = mse_loss(pred, y)
        aux = ag.tensor_mean(pred * pred)
        return loss, aux

    step = TrainStep(fn, opt)
    batches = _batches((4,), n_steps=3, batch=6, dtype=np.float64)
    for x, y in batches:
        out = step(x, y)
        assert isinstance(out, tuple) and len(out) == 2
        assert all(isinstance(v, float) for v in out)


# --------------------------------------------------------------- StateArena
def test_plan_state_arena_layout():
    shapes = [(3, 4), (7,), (2, 2, 2)]
    arena = plan_state_arena(shapes, np.float64)
    assert len(arena.views) == 3
    for view, shape in zip(arena.views, shapes):
        assert view.shape == shape
        assert not view.flags.owndata  # views into the one buffer
        assert np.shares_memory(view, arena.buf)
        assert (view == 0).all()  # moments start zeroed
    # aligned, non-overlapping offsets
    offs = [off for off, _ in arena.slots]
    assert offs == sorted(offs)
    for (off, size), shape in zip(arena.slots, shapes):
        assert size >= int(np.prod(shape))
    assert arena.total_bytes == arena.buf.nbytes


def test_state_arena_views_survive_updates():
    arena = plan_state_arena([(4,), (4,)], np.float64)
    arena.views[0] += 1.0
    assert (arena.views[1] == 0).all()  # no aliasing between slots
