"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import BatchNorm, Dense, ReLU, Sequential
from repro.nn.serialization import load_model, save_model


def _model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(4, 8, rng), BatchNorm(8), ReLU(), Dense(8, 2, rng))


def test_roundtrip_preserves_outputs(tmp_path):
    a = _model(0)
    rng = np.random.default_rng(9)
    for _ in range(3):  # populate BatchNorm running stats
        a(Tensor(rng.normal(size=(16, 4))))
    a.eval()
    path = save_model(a, tmp_path / "model.npz")

    b = _model(1)
    load_model(b, path)
    b.eval()
    x = Tensor(rng.normal(size=(5, 4)))
    np.testing.assert_allclose(a(x).data, b(x).data)


def test_batchnorm_stats_restored(tmp_path):
    a = _model(0)
    a(Tensor(np.random.default_rng(1).normal(loc=7, size=(32, 4))))
    path = save_model(a, tmp_path / "m.npz")
    b = _model(2)
    load_model(b, path)
    bn_a = [m for m in a.modules() if isinstance(m, BatchNorm)][0]
    bn_b = [m for m in b.modules() if isinstance(m, BatchNorm)][0]
    np.testing.assert_allclose(bn_a.running_mean, bn_b.running_mean)
    np.testing.assert_allclose(bn_a.running_var, bn_b.running_var)


def test_architecture_mismatch_rejected(tmp_path):
    path = save_model(_model(0), tmp_path / "m.npz")
    rng = np.random.default_rng(3)
    wrong = Sequential(Dense(4, 9, rng))
    with pytest.raises(ValueError):
        load_model(wrong, path)


def test_file_is_compressed_npz(tmp_path):
    path = save_model(_model(0), tmp_path / "m.npz")
    with open(path, "rb") as fh:
        assert fh.read(2) == b"PK"  # zip container
