"""Tests for NN layers and the module system."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool2d,
    PointwiseDense,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Tanh,
)


def _rng():
    return np.random.default_rng(0)


def test_dense_shapes_and_grads():
    layer = Dense(4, 3, _rng())
    x = Tensor(np.ones((5, 4)), requires_grad=True)
    out = layer(x)
    assert out.shape == (5, 3)
    out.sum().backward()
    assert layer.weight.grad is not None
    assert layer.bias.grad is not None
    np.testing.assert_allclose(layer.bias.grad.data, 5.0)


def test_pointwise_dense_shares_weights_across_points():
    layer = PointwiseDense(3, 2, _rng())
    x = np.zeros((1, 4, 3))
    x[0, 2] = [1.0, 2.0, 3.0]
    out = layer(Tensor(x)).data
    # all points with identical input give identical output
    np.testing.assert_allclose(out[0, 0], out[0, 1])
    assert not np.allclose(out[0, 2], out[0, 0])


def test_conv2d_matches_manual_convolution():
    rng = _rng()
    conv = Conv2d(1, 1, 3, rng, padding=0)
    x = rng.normal(size=(1, 1, 5, 5))
    out = conv(Tensor(x)).data
    w = conv.weight.data.reshape(3, 3)
    expected = np.zeros((3, 3))
    for i in range(3):
        for j in range(3):
            expected[i, j] = (x[0, 0, i : i + 3, j : j + 3] * w).sum()
    expected += conv.bias.data[0]
    np.testing.assert_allclose(out[0, 0], expected, rtol=1e-10)


def test_conv2d_padding_preserves_shape():
    conv = Conv2d(3, 8, 3, _rng(), padding=1)
    out = conv(Tensor(np.zeros((2, 3, 8, 8))))
    assert out.shape == (2, 8, 8, 8)


def test_conv2d_stride():
    conv = Conv2d(1, 2, 3, _rng(), stride=2)
    out = conv(Tensor(np.zeros((1, 1, 9, 9))))
    assert out.shape == (1, 2, 4, 4)


def test_conv2d_gradcheck():
    rng = _rng()
    conv = Conv2d(2, 3, 3, rng, padding=1)
    x = rng.normal(size=(2, 2, 4, 4))
    out = conv(Tensor(x)).sum()
    conv.zero_grad()
    out.backward()
    g = conv.weight.grad.data.copy()
    eps = 1e-6
    i, j = 1, 5
    conv.weight.data[i, j] += eps
    up = conv(Tensor(x)).sum().item()
    conv.weight.data[i, j] -= 2 * eps
    dn = conv(Tensor(x)).sum().item()
    conv.weight.data[i, j] += eps
    assert g[i, j] == pytest.approx((up - dn) / (2 * eps), rel=1e-4)


def test_maxpool_shapes_and_values():
    pool = MaxPool2d(2)
    x = np.arange(16.0).reshape(1, 1, 4, 4)
    out = pool(Tensor(x)).data
    np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_rejects_indivisible():
    with pytest.raises(ValueError):
        MaxPool2d(2)(Tensor(np.zeros((1, 1, 5, 4))))


def test_global_avg_pool():
    out = GlobalAvgPool2d()(Tensor(np.ones((2, 3, 4, 4)) * 5.0))
    assert out.shape == (2, 3)
    np.testing.assert_allclose(out.data, 5.0)


def test_flatten():
    assert Flatten()(Tensor(np.zeros((2, 3, 4)))).shape == (2, 12)


@pytest.mark.parametrize("act", [ReLU(), LeakyReLU(), Tanh(), Sigmoid()])
def test_activations_shape_preserving(act):
    x = Tensor(np.linspace(-2, 2, 12).reshape(3, 4))
    assert act(x).shape == (3, 4)


def test_batchnorm_normalizes_in_train_mode():
    bn = BatchNorm(3)
    rng = _rng()
    x = rng.normal(loc=5.0, scale=3.0, size=(64, 3))
    out = bn(Tensor(x)).data
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_eval_uses_running_stats():
    bn = BatchNorm(2, momentum=1.0)  # running stats = last batch
    x = np.array([[0.0, 10.0], [2.0, 14.0]])
    bn(Tensor(x))
    bn.eval()
    out = bn(Tensor(np.array([[1.0, 12.0]]))).data
    np.testing.assert_allclose(out, 0.0, atol=1e-2)


def test_batchnorm_4d_per_channel():
    bn = BatchNorm(3)
    rng = _rng()
    x = rng.normal(size=(8, 3, 5, 5)) * np.array([1, 10, 100]).reshape(1, 3, 1, 1)
    out = bn(Tensor(x)).data
    for c in range(3):
        assert abs(out[:, c].mean()) < 1e-7


def test_batchnorm_rejects_3d():
    with pytest.raises(ValueError):
        BatchNorm(3)(Tensor(np.zeros((2, 3, 4))))


def test_sequential_composition_and_parameters():
    rng = _rng()
    net = Sequential(Dense(4, 8, rng), ReLU(), Dense(8, 2, rng))
    assert len(net) == 3
    assert len(net.parameters()) == 4
    out = net(Tensor(np.ones((1, 4))))
    assert out.shape == (1, 2)


def test_residual_block_identity_skip():
    rng = _rng()

    class Zero(Dense):
        def __init__(self):
            super().__init__(4, 4, rng)
            self.weight.data[:] = 0
            self.bias.data[:] = 0

    block = ResidualBlock(Zero())
    x = np.abs(_rng().normal(size=(3, 4)))
    np.testing.assert_allclose(block(Tensor(x)).data, x)  # relu(0 + x) = x for x>0


def test_residual_block_projection():
    rng = _rng()
    block = ResidualBlock(Dense(4, 6, rng), projection=Dense(4, 6, rng))
    assert block(Tensor(np.ones((2, 4)))).shape == (2, 6)


def test_train_eval_mode_propagates():
    rng = _rng()
    net = Sequential(Dense(2, 2, rng), Sequential(BatchNorm(2)))
    net.eval()
    assert all(not m.training for m in net.modules())
    net.train()
    assert all(m.training for m in net.modules())


def test_state_dict_roundtrip():
    rng = _rng()
    a = Sequential(Dense(3, 4, rng), Dense(4, 2, rng))
    b = Sequential(Dense(3, 4, rng), Dense(4, 2, rng))
    b.load_state_dict(a.state_dict())
    x = Tensor(np.ones((1, 3)))
    np.testing.assert_allclose(a(x).data, b(x).data)


def test_load_state_dict_shape_mismatch():
    rng = _rng()
    a = Sequential(Dense(3, 4, rng))
    b = Sequential(Dense(3, 5, rng))
    with pytest.raises(ValueError):
        b.load_state_dict(a.state_dict())


def test_n_parameters():
    net = Sequential(Dense(3, 4, _rng()))
    assert net.n_parameters() == 3 * 4 + 4
