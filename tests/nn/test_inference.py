"""Tests for compiled (FP16) inference."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad
from repro.nn.inference import compile_model
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    ResidualBlock,
    Sequential,
    Sigmoid,
    Tanh,
)


def _model():
    rng = np.random.default_rng(0)
    return Sequential(
        Conv2d(2, 4, 3, rng, padding=1),
        BatchNorm(4),
        ReLU(),
        ResidualBlock(
            Sequential(Conv2d(4, 4, 3, rng, padding=1), BatchNorm(4)),
        ),
        MaxPool2d(2),
        GlobalAvgPool2d(),
        Dense(4, 3, rng),
        Tanh(),
        Dense(3, 1, rng),
        Sigmoid(),
    )


@pytest.fixture(scope="module")
def trained_model():
    model = _model()
    rng = np.random.default_rng(1)
    # run a few training-mode passes so BatchNorm has running stats
    for _ in range(5):
        model(Tensor(rng.normal(size=(16, 2, 8, 8))))
    model.eval()
    return model


def test_fp32_matches_reference(trained_model):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(4, 2, 8, 8))
    with no_grad():
        ref = trained_model(Tensor(x)).data
    out = compile_model(trained_model, "fp32")(x)
    np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)


def test_fp16_matches_to_half_precision(trained_model):
    rng = np.random.default_rng(3)
    x = rng.normal(size=(4, 2, 8, 8))
    with no_grad():
        ref = trained_model(Tensor(x)).data
    out = compile_model(trained_model, "fp16")(x)
    np.testing.assert_allclose(out, ref, atol=5e-2)
    assert not np.allclose(out, ref, atol=1e-10)  # genuinely lower precision


def test_output_dtype_is_float64(trained_model):
    out = compile_model(trained_model, "fp16")(np.zeros((1, 2, 8, 8)))
    assert out.dtype == np.float64


def test_flatten_and_leaky_compile():
    rng = np.random.default_rng(4)
    model = Sequential(Flatten(), Dense(8, 4, rng), LeakyReLU(0.1))
    model.eval()
    x = rng.normal(size=(3, 2, 2, 2))
    with no_grad():
        ref = model(Tensor(x)).data
    np.testing.assert_allclose(compile_model(model, "fp32")(x), ref, rtol=1e-5)


def test_unknown_precision_rejected(trained_model):
    with pytest.raises(ValueError):
        compile_model(trained_model, "int8")


def test_uncompilable_module_rejected():
    class Weird:
        pass

    from repro.nn.layers import Module

    class WeirdModule(Module):
        def forward(self, x):
            return x

    with pytest.raises(TypeError):
        compile_model(Sequential(WeirdModule()))


def test_compiled_is_faster_than_graph(trained_model):
    """The point of compilation: beat graph construction on throughput."""
    import time

    x = np.random.default_rng(5).normal(size=(64, 2, 8, 8))
    compiled = compile_model(trained_model, "fp16")
    compiled(x)  # warm index caches

    t0 = time.perf_counter()
    for _ in range(3):
        with no_grad():
            trained_model(Tensor(x))
    graph_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(3):
        compiled(x)
    compiled_time = time.perf_counter() - t0
    assert compiled_time < graph_time
