"""Finite-difference gradient checks for every autograd op the compiled
training path replays.

The op list is exactly the primitive surface SmilesNet (conv, BN, pool,
dense, ReLU/sigmoid, MSE) and the 3D-AAE (pointwise dense, max-pool over
points, tanh, Chamfer, WGAN gradient penalty) trace onto the tape —
every VJP the backward-graph builder derives is checked against central
differences at fp64, including the double-backward VJPs inside
``gradient_penalty_at``.
"""

import numpy as np
import pytest

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor
from repro.nn.layers import Dense, Sequential, Tanh
from repro.nn.losses import chamfer_distance, gradient_penalty_at, mse_loss

EPS = 1e-6
RTOL = 1e-5
ATOL = 1e-7


def _numeric_grad(f, x: np.ndarray) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x``
    (mutated in place and restored)."""
    g = np.zeros_like(x)
    flat, gf = x.reshape(-1), g.reshape(-1)
    for i in range(flat.size):  # repro: disable=vectorization -- finite differencing
        old = flat[i]
        flat[i] = old + EPS
        fp = f()
        flat[i] = old - EPS
        fm = f()
        flat[i] = old
        gf[i] = (fp - fm) / (2 * EPS)
    return g


def _check(build, arrays: list[np.ndarray]) -> None:
    """``build(*tensors)`` → scalar Tensor; check grads of every input."""
    xs = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build(*xs)
    loss.backward()
    for x, a in zip(xs, arrays):
        num = _numeric_grad(lambda: build(*(Tensor(b) for b in arrays)).item(), a)
        np.testing.assert_allclose(x.grad.data, num, rtol=RTOL, atol=ATOL)


def _proj(t: Tensor, seed: int = 7) -> Tensor:
    """Random fixed projection → scalar, so full Jacobians are exercised."""
    w = np.random.default_rng(seed).normal(size=t.shape)
    return ag.tensor_sum(t * Tensor(w))


RNG = np.random.default_rng(42)

_CONST = np.random.default_rng(11).normal(size=(3, 4))

ELEMENTWISE = [
    ("add", lambda x: x + Tensor(_CONST), None),
    ("mul", lambda x: x * Tensor(_CONST), None),
    ("power2", lambda x: x**2.0, None),
    ("power_neg", lambda x: x**-1.5, "positive"),
    ("exp", ag.exp, None),
    ("log", ag.log, "positive"),
    ("sqrt", ag.sqrt, "positive"),
    ("tanh", ag.tanh, None),
    ("sigmoid", ag.sigmoid, None),
    ("relu", ag.relu, "offset"),
    ("leaky_relu", lambda x: ag.leaky_relu(x, 0.2), "offset"),
    ("abs", ag.absolute, "offset"),
]


@pytest.mark.parametrize("name,op,domain", ELEMENTWISE, ids=[e[0] for e in ELEMENTWISE])
def test_elementwise_ops_gradcheck(name, op, domain):
    x = RNG.normal(size=(3, 4))
    if domain == "positive":
        x = np.abs(x) + 0.5
    elif domain == "offset":
        x = x + np.where(x >= 0, 0.3, -0.3)  # keep clear of the kink
    _check(lambda t: _proj(op(t)), [x])


def test_matmul_gradcheck_both_args():
    _check(
        lambda a, b: _proj(a @ b),
        [RNG.normal(size=(3, 4)), RNG.normal(size=(4, 2))],
    )


def test_batched_matmul_gradcheck():
    _check(
        lambda a, b: _proj(a @ b),
        [RNG.normal(size=(2, 3, 4)), RNG.normal(size=(2, 4, 2))],
    )


def test_reshape_transpose_getitem_gradcheck():
    _check(
        lambda x: _proj(ag.transpose(ag.reshape(x, (4, 3)), (1, 0))),
        [RNG.normal(size=(3, 4))],
    )
    _check(lambda x: _proj(x[1:, ::2]), [RNG.normal(size=(4, 6))])


def test_take_gradcheck_with_duplicates():
    idx = np.array([0, 2, 2, 1])
    _check(lambda x: _proj(ag.take(x, idx, axis=0)), [RNG.normal(size=(3, 5))])


def test_pad_concat_stack_gradcheck():
    _check(lambda x: _proj(ag.pad2d(x, 1)), [RNG.normal(size=(2, 2, 3, 3))])
    _check(
        lambda a, b: _proj(ag.concatenate([a, b], axis=1)),
        [RNG.normal(size=(2, 3)), RNG.normal(size=(2, 2))],
    )
    _check(
        lambda a, b: _proj(ag.stack([a, b], axis=1)),
        [RNG.normal(size=(2, 3)), RNG.normal(size=(2, 3))],
    )


@pytest.mark.parametrize("axis,keepdims", [(None, False), (1, False), (1, True)])
def test_reductions_gradcheck(axis, keepdims):
    x = RNG.normal(size=(3, 4))
    _check(lambda t: _proj(ag.tensor_sum(t, axis=axis, keepdims=keepdims)), [x])
    _check(lambda t: _proj(ag.tensor_mean(t, axis=axis, keepdims=keepdims)), [x])


def test_max_gradcheck_distinct_entries():
    # distinct values keep the argmax stable under the eps perturbation
    x = np.arange(12, dtype=np.float64).reshape(3, 4) * 0.37 + RNG.normal(size=(3, 4)) * 0.01
    _check(lambda t: _proj(ag.tensor_max(t, axis=1)), [x])


def test_mse_loss_gradcheck():
    y = RNG.normal(size=(5, 1))
    _check(lambda p: mse_loss(p, Tensor(y)), [RNG.normal(size=(5, 1))])


def test_chamfer_distance_gradcheck():
    # distinct pairwise distances keep nearest-neighbour matches stable
    a = RNG.normal(size=(2, 4, 3))
    b = a[:, ::-1] + 0.3 * RNG.normal(size=(2, 4, 3))
    _check(lambda x, y: chamfer_distance(x, y), [a, b])


def _tiny_critic(seed: int = 3):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(4, 5, rng), Tanh(), Dense(5, 1, rng))


def test_gradient_penalty_interp_gradcheck():
    """First-order check of the penalty w.r.t. the interpolates."""
    critic = _tiny_critic()
    interp = RNG.normal(size=(3, 4))

    def value() -> float:
        return gradient_penalty_at(critic, Tensor(interp, requires_grad=True)).item()

    t = Tensor(interp, requires_grad=True)
    gradient_penalty_at(critic, t).backward()
    num = _numeric_grad(value, interp)
    np.testing.assert_allclose(t.grad.data, num, rtol=RTOL, atol=ATOL)


def test_gradient_penalty_double_backward_param_gradcheck():
    """The penalty's gradient w.r.t. the *critic parameters* flows through
    the inner ``create_graph=True`` gradient — this checks every
    double-backward VJP the compiled critic step replays."""
    critic = _tiny_critic()
    interp = RNG.normal(size=(3, 4))

    def value() -> float:
        return gradient_penalty_at(critic, Tensor(interp, requires_grad=True)).item()

    gradient_penalty_at(critic, Tensor(interp, requires_grad=True)).backward()
    for p in critic.parameters():
        num = _numeric_grad(value, p.data)
        if p.grad is None:
            # the final bias never reaches d(score)/d(interp): its true
            # gradient is exactly zero and autograd correctly skips it
            np.testing.assert_allclose(num, 0.0, atol=1e-7)
            continue
        np.testing.assert_allclose(p.grad.data, num, rtol=1e-4, atol=1e-6)
