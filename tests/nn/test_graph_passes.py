"""Unit tests for the graph optimization passes."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.graph import GraphExecutor, optimize, trace_module
from repro.nn.graph.ir import Graph, Node, quantize
from repro.nn.graph.passes import (
    default_passes,
    eliminate_dead,
    fold_batchnorm,
    fold_constants,
    fuse_activations,
    fuse_bias,
    fuse_residual,
)
from repro.nn.inference import compile_model
from repro.nn.layers import BatchNorm, Conv2d, ReLU, ResidualBlock, Sequential
from repro.surrogate.model import build_smilesnet


def _conv_bn_relu():
    rng = np.random.default_rng(0)
    model = Sequential(Conv2d(2, 4, 3, rng, padding=1), BatchNorm(4), ReLU())
    warm = np.random.default_rng(1)
    for _ in range(3):
        model(Tensor(warm.normal(size=(8, 2, 6, 6))))
    model.eval()
    return model


def test_fold_constants_materializes_bias_broadcast():
    model = _conv_bn_relu()
    g = trace_module(model, (2, 6, 6), "fp16")
    # traced: the (oc,) bias is reshaped to (oc, 1) by a const reshape node
    n_before = len(g.nodes)
    folded = fold_constants(g)
    assert folded >= 3  # conv bias + bn scale + bn shift broadcasts
    assert len(g.nodes) == n_before - folded
    for node in g.nodes:
        assert not (node.kind == "reshape" and not g.values[node.out].batched)


def test_fuse_bias_moves_const_add_into_epilogue():
    g = trace_module(_conv_bn_relu(), (2, 6, 6), "fp16")
    fold_constants(g)
    assert fuse_bias(g) == 1
    (mm,) = [n for n in g.nodes if n.kind == "matmul"]
    assert mm.epilogue[0].fn == "add"
    bias = g.const_array(mm.epilogue[0].operand)
    assert bias.shape == (4, 1)


def test_fold_batchnorm_records_analytic_scale_shift():
    model = _conv_bn_relu()
    g = trace_module(model, (2, 6, 6), "fp16")
    fold_constants(g)
    fuse_bias(g)
    assert fold_batchnorm(g) == 1
    (mm,) = [n for n in g.nodes if n.kind == "matmul"]
    scale_vid, shift_vid = mm.attrs["bn"]
    bn = model.layers[1]
    scale64 = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
    shift64 = bn.beta.data - bn.running_mean * scale64
    np.testing.assert_array_equal(
        g.const_array(scale_vid).reshape(-1),
        quantize(scale64, np.float16, np.float32),
    )
    np.testing.assert_array_equal(
        g.const_array(shift_vid).reshape(-1),
        quantize(shift64, np.float16, np.float32),
    )


def test_conv_bn_relu_collapses_to_one_op_with_ordered_epilogue():
    g, _ = optimize(trace_module(_conv_bn_relu(), (2, 6, 6), "fp16"))
    compute = [n for n in g.nodes if n.kind != "reshape"]
    assert [n.kind for n in compute] == ["gather", "matmul"]
    (mm,) = [n for n in compute if n.kind == "matmul"]
    # exact eager order: +bias, *bn_scale, +bn_shift, relu
    assert [s.fn for s in mm.epilogue] == ["add", "mul", "add", "max0"]


def test_fuse_residual_absorbs_skip_add():
    rng = np.random.default_rng(2)
    model = ResidualBlock(
        Sequential(Conv2d(3, 3, 3, rng, padding=1), BatchNorm(3)),
    )
    warm = np.random.default_rng(3)
    for _ in range(3):
        model(Tensor(warm.normal(size=(4, 3, 6, 6))))
    model.eval()
    g = trace_module(model, (3, 6, 6), "fp16")
    fold_constants(g)
    fuse_bias(g)
    fold_batchnorm(g)
    fuse_activations(g)
    assert fuse_residual(g) == 1
    (mm,) = [n for n in g.nodes if n.kind == "matmul"]
    # tail of the epilogue: skip add (batched operand) then the block ReLU
    assert [s.fn for s in mm.epilogue[-2:]] == ["add", "max0"]
    assert g.values[mm.epilogue[-2].operand].batched


def test_eliminate_dead_drops_unreachable_nodes():
    g = Graph(store=np.float32, compute=np.float32)
    g.input_vid = g.new_value((4,), name="input")
    live = g.new_value((4,), name="live")
    g.nodes.append(Node("ewise", (g.input_vid,), live, {"fn": "max0"}))
    dead = g.new_value((4,), name="dead")
    g.nodes.append(Node("ewise", (g.input_vid,), dead, {"fn": "tanh"}))
    g.output_vid = live
    assert eliminate_dead(g) == 1
    assert [n.out for n in g.nodes] == [live]
    assert dead not in g.values


def test_smilesnet_pass_stats():
    model = build_smilesnet(seed=0, width=6)
    model.eval()
    g = trace_module(model, (7, 24, 24), "fp16")
    _, stats = optimize(g)
    assert stats["fuse_bias"] == 7  # 6 convs + 1 dense
    assert stats["fold_batchnorm"] == 5  # one per BatchNorm layer
    assert stats["fuse_residual"] == 2  # one per ResidualBlock
    assert stats["fuse_activations"] == 6  # 3 inner ReLU + 2 block ReLU + sigmoid
    assert stats["eliminate_dead"] == 0  # fusion leaves no orphans


@pytest.mark.parametrize("n_passes", range(len(default_passes()) + 1))
def test_every_pass_prefix_preserves_bit_identity(n_passes):
    """Each pass is a pure rescheduling: any prefix of the pipeline must
    leave the numerics untouched."""
    model = _conv_bn_relu()
    x = np.random.default_rng(4).normal(size=(3, 2, 6, 6))
    eager = compile_model(model, "fp16", engine="eager")(x)
    g = trace_module(model, (2, 6, 6), "fp16")
    optimize(g, default_passes()[:n_passes])
    xq = x.astype(np.float16).astype(np.float32)
    out = GraphExecutor(g).run(xq).astype(np.float64)
    np.testing.assert_array_equal(out, eager)
