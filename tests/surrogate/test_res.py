"""Tests for Regression Enrichment Surfaces."""

import numpy as np
import pytest

from repro.surrogate.res import RESResult, res_surface, top_fraction_recall


def test_perfect_predictor_full_recall():
    rng = np.random.default_rng(0)
    y = rng.normal(size=200)
    assert top_fraction_recall(y, y.copy(), 0.1, 0.1) == 1.0
    assert top_fraction_recall(y, y.copy(), 0.01, 0.01) == 1.0


def test_anticorrelated_predictor_zero_recall_at_top():
    y = np.arange(100.0)
    assert top_fraction_recall(y, -y, 0.1, 0.1) == 0.0


def test_random_predictor_recall_near_budget():
    """With random predictions, recall ≈ budget fraction in expectation."""
    rng = np.random.default_rng(1)
    y = rng.normal(size=4000)
    pred = rng.normal(size=4000)
    r = top_fraction_recall(y, pred, 0.3, 0.1)
    assert 0.2 < r < 0.4


def test_budget_one_gives_full_recall():
    rng = np.random.default_rng(2)
    y = rng.normal(size=50)
    assert top_fraction_recall(y, rng.normal(size=50), 1.0, 0.2) == 1.0


def test_recall_monotone_in_budget():
    rng = np.random.default_rng(3)
    y = rng.normal(size=500)
    pred = y + rng.normal(scale=1.0, size=500)
    recalls = [top_fraction_recall(y, pred, b, 0.1) for b in (0.05, 0.2, 0.5, 1.0)]
    assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))


def test_higher_is_better_convention():
    y = np.arange(100.0)
    # with higher-is-better, top = largest values
    assert top_fraction_recall(y, y, 0.1, 0.1, lower_is_better=False) == 1.0
    assert top_fraction_recall(y, -y, 0.1, 0.1, lower_is_better=False) == 0.0


def test_validation():
    y = np.zeros(10)
    with pytest.raises(ValueError):
        top_fraction_recall(y, np.zeros(9), 0.1, 0.1)
    with pytest.raises(ValueError):
        top_fraction_recall(y, y, 0.0, 0.1)
    with pytest.raises(ValueError):
        top_fraction_recall(np.array([]), np.array([]), 0.1, 0.1)


def test_surface_shape_and_corner():
    rng = np.random.default_rng(4)
    y = rng.normal(size=300)
    pred = y + rng.normal(scale=0.5, size=300)
    res = res_surface(y, pred, n_budget=5, n_top=4)
    assert res.surface.shape == (4, 5)
    # budget = 1 column is all ones
    np.testing.assert_allclose(res.surface[:, -1], 1.0)
    assert (res.surface >= 0).all() and (res.surface <= 1).all()


def test_surface_better_model_dominates():
    rng = np.random.default_rng(5)
    y = rng.normal(size=500)
    good = y + rng.normal(scale=0.2, size=500)
    bad = y + rng.normal(scale=3.0, size=500)
    s_good = res_surface(y, good, n_budget=4, n_top=3).surface
    s_bad = res_surface(y, bad, n_budget=4, n_top=3).surface
    assert s_good.mean() > s_bad.mean()


def test_recall_at_nearest_grid_point():
    rng = np.random.default_rng(6)
    y = rng.normal(size=200)
    res = res_surface(y, y.copy(), n_budget=4, n_top=3)
    assert res.recall_at(0.01, 0.01) == 1.0


def test_surface_requires_enough_compounds():
    with pytest.raises(ValueError):
        res_surface(np.zeros(5), np.zeros(5))


def test_ascii_plot_renders():
    rng = np.random.default_rng(7)
    y = rng.normal(size=100)
    text = res_surface(y, y, n_budget=3, n_top=2).ascii_plot()
    assert "RES surface" in text
    assert len(text.splitlines()) == 4
