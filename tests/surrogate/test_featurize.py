"""Tests for surrogate featurization and score normalization."""

import numpy as np
import pytest

from repro.chem.depict import N_CHANNELS
from repro.surrogate.featurize import (
    IMAGE_SIZE,
    ScoreNormalizer,
    featurize_batch,
    featurize_smiles,
)


def test_featurize_shapes():
    img = featurize_smiles("c1ccccc1")
    assert img.shape == (N_CHANNELS, IMAGE_SIZE, IMAGE_SIZE)
    batch = featurize_batch(["CCO", "c1ccccc1", "CC(=O)O"])
    assert batch.shape == (3, N_CHANNELS, IMAGE_SIZE, IMAGE_SIZE)


def test_featurize_deterministic():
    np.testing.assert_array_equal(featurize_smiles("CCO"), featurize_smiles("CCO"))


def test_normalizer_maps_best_to_one():
    scores = np.linspace(-50, 10, 200)  # lower = better binding
    norm = ScoreNormalizer().fit(scores)
    y = norm.transform(scores)
    assert y[0] > y[-1]  # -50 (best) maps high
    assert y.min() >= 0 and y.max() <= 1
    assert norm.transform(np.array([-50.0]))[0] == pytest.approx(1.0, abs=0.05)


def test_normalizer_inverse_roundtrip():
    scores = np.linspace(-40, 0, 100)
    norm = ScoreNormalizer().fit(scores)
    mid = np.array([-30.0, -20.0, -10.0])
    back = norm.inverse(norm.transform(mid))
    np.testing.assert_allclose(back, mid, rtol=1e-10)


def test_normalizer_robust_to_outliers():
    scores = np.concatenate([np.linspace(-30, 0, 100), [-1e6]])
    norm = ScoreNormalizer().fit(scores)
    # the outlier must not squash the bulk of the distribution
    y = norm.transform(np.linspace(-30, 0, 100))
    assert y.std() > 0.1


def test_normalizer_clips_out_of_range():
    norm = ScoreNormalizer().fit(np.linspace(-10, 0, 50))
    assert norm.transform(np.array([-100.0]))[0] == 1.0
    assert norm.transform(np.array([100.0]))[0] == 0.0


def test_normalizer_unfitted_raises():
    with pytest.raises(RuntimeError):
        ScoreNormalizer().transform(np.array([1.0]))
    with pytest.raises(RuntimeError):
        ScoreNormalizer().inverse(np.array([0.5]))


def test_normalizer_validates_input():
    with pytest.raises(ValueError):
        ScoreNormalizer().fit(np.array([1.0]))
    with pytest.raises(ValueError):
        ScoreNormalizer().fit(np.zeros(10))  # degenerate range
