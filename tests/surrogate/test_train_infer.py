"""Tests for surrogate training and the inference engine.

Training tests use a synthetic structure→score rule (no docking) so they
run fast; the full docking-trained path is exercised by the Fig 4 bench.
"""

import numpy as np
import pytest

from repro.chem.library import generate_library
from repro.surrogate.infer import InferenceEngine
from repro.surrogate.train import TrainConfig, train_surrogate

FAST = TrainConfig(epochs=6, batch_size=16, width=6)


@pytest.fixture(scope="module")
def dataset():
    """A library whose 'docking score' rewards aromatic nitrogen content."""
    lib = generate_library(80, seed=31)
    scores = np.array(
        [
            -3.0 * sum(1 for a in lib.molecule(i).atoms if a.symbol == "N")
            - 1.0 * lib.descriptors(i).aromatic_rings
            + 0.05 * lib.descriptors(i).molecular_weight
            for i in range(len(lib))
        ]
    )
    return lib, scores


@pytest.fixture(scope="module")
def surrogate(dataset):
    lib, scores = dataset
    return train_surrogate(lib.smiles(), scores, FAST, seed=0)


def test_training_reduces_loss(surrogate):
    assert surrogate.train_losses[-1] < surrogate.train_losses[0]
    assert len(surrogate.train_losses) == FAST.epochs
    assert len(surrogate.val_losses) == FAST.epochs


def test_predictions_correlate_with_truth(dataset, surrogate):
    lib, scores = dataset
    pred = surrogate.predict_scores(lib.smiles())
    corr = np.corrcoef(pred, scores)[0, 1]
    assert corr > 0.5


def test_predict_normalized_in_unit_interval(dataset, surrogate):
    lib, _ = dataset
    p = surrogate.predict_normalized(lib.smiles()[:10])
    assert p.shape == (10,)
    assert (p >= 0).all() and (p <= 1).all()


def test_training_deterministic(dataset):
    lib, scores = dataset
    tiny = TrainConfig(epochs=2, batch_size=16, width=4)
    a = train_surrogate(lib.smiles()[:30], scores[:30], tiny, seed=7)
    b = train_surrogate(lib.smiles()[:30], scores[:30], tiny, seed=7)
    np.testing.assert_array_equal(
        a.predict_normalized(lib.smiles()[:5]), b.predict_normalized(lib.smiles()[:5])
    )


def test_training_validates_inputs(dataset):
    lib, scores = dataset
    with pytest.raises(ValueError):
        train_surrogate(lib.smiles()[:10], scores[:5], FAST)
    with pytest.raises(ValueError):
        train_surrogate(lib.smiles()[:2], scores[:2], FAST)


def test_inference_engine_matches_model(dataset, surrogate):
    lib, _ = dataset
    engine = InferenceEngine(surrogate, precision="fp32")
    out = engine.score_smiles(lib.smiles()[:12])
    direct = surrogate.predict_normalized(lib.smiles()[:12])
    np.testing.assert_allclose([o.score for o in out], direct, atol=1e-5)


def test_inference_fp16_close_to_fp32(dataset, surrogate):
    lib, _ = dataset
    fp16 = InferenceEngine(surrogate, precision="fp16").score_smiles(lib.smiles()[:12])
    fp32 = InferenceEngine(surrogate, precision="fp32").score_smiles(lib.smiles()[:12])
    diff = np.abs(np.array([o.score for o in fp16]) - np.array([o.score for o in fp32]))
    assert diff.max() < 0.05


def test_inference_shards_match_in_memory(tmp_path, dataset, surrogate):
    lib, _ = dataset
    sub = lib.subset(range(20), name="shardtest")
    paths = sub.to_shards(tmp_path, shard_size=7)
    engine = InferenceEngine(surrogate, precision="fp32")
    from_shards = engine.score_shards(paths)
    in_memory = engine.score_smiles(sub.smiles(), [e.compound_id for e in sub])
    shard_map = {o.compound_id: o.score for o in from_shards}
    for o in in_memory:
        assert shard_map[o.compound_id] == pytest.approx(o.score, abs=1e-9)


def test_inference_world_partitioning_equivalent(tmp_path, dataset, surrogate):
    lib, _ = dataset
    sub = lib.subset(range(16), name="worldtest")
    paths = sub.to_shards(tmp_path, shard_size=4)
    engine = InferenceEngine(surrogate, precision="fp32")
    w1 = {o.compound_id: o.score for o in engine.score_shards(paths, world=1)}
    w3 = {o.compound_id: o.score for o in engine.score_shards(paths, world=3)}
    assert w1 == w3


def test_top_fraction_filter(dataset, surrogate):
    lib, _ = dataset
    engine = InferenceEngine(surrogate)
    scored = engine.score_smiles(lib.smiles()[:40])
    top = InferenceEngine.top_fraction(scored, 0.1)
    assert len(top) == 4
    floor = min(o.score for o in top)
    assert sum(1 for o in scored if o.score > floor) <= 4


def test_top_fraction_validates():
    with pytest.raises(ValueError):
        InferenceEngine.top_fraction([], 0)


def test_ids_length_mismatch(dataset, surrogate):
    lib, _ = dataset
    with pytest.raises(ValueError):
        InferenceEngine(surrogate).score_smiles(lib.smiles()[:5], ids=["a"])


def test_surrogate_checkpoint_roundtrip(tmp_path, dataset, surrogate):
    from repro.surrogate.train import TrainedSurrogate

    lib, _ = dataset
    path = tmp_path / "surrogate.npz"
    surrogate.save(path)
    restored = TrainedSurrogate.load(path)
    np.testing.assert_allclose(
        restored.predict_normalized(lib.smiles()[:8]),
        surrogate.predict_normalized(lib.smiles()[:8]),
        atol=1e-10,
    )
    np.testing.assert_allclose(
        restored.predict_scores(lib.smiles()[:4]),
        surrogate.predict_scores(lib.smiles()[:4]),
        atol=1e-8,
    )
    assert restored.train_losses == surrogate.train_losses
    assert restored.image_size == surrogate.image_size
