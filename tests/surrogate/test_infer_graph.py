"""Graph-engine regression tests for the ML1 inference engine.

The InferenceEngine pads every batch — including the final partial one —
to a fixed batch size before scoring, so the graph and eager engines see
identical batch geometry and must produce identical scores; the padding
also makes scores independent of how records split into batches.
"""

import numpy as np
import pytest

from repro.chem.library import generate_library
from repro.surrogate.featurize import featurize_batch
from repro.surrogate.infer import InferenceEngine
from repro.surrogate.train import TrainConfig, train_surrogate


@pytest.fixture(scope="module")
def dataset():
    lib = generate_library(48, seed=17)
    scores = np.array(
        [-0.1 * len(lib.smiles()[i]) - lib.descriptors(i).aromatic_rings for i in range(len(lib))]
    )
    return lib, scores


@pytest.fixture(scope="module")
def surrogate(dataset):
    lib, scores = dataset
    cfg = TrainConfig(epochs=3, batch_size=16, width=6)
    return train_surrogate(lib.smiles(), scores, cfg, seed=2)


@pytest.mark.parametrize("precision", ["fp16", "fp32"])
def test_graph_engine_scores_identical_to_eager(dataset, surrogate, precision):
    lib, _ = dataset
    smiles = lib.smiles()[:20]
    graph = InferenceEngine(surrogate, precision=precision, engine="graph")
    eager = InferenceEngine(surrogate, precision=precision, engine="eager")
    assert graph.score_smiles(smiles) == eager.score_smiles(smiles)


def test_scores_independent_of_batch_split(dataset, surrogate):
    """Padding to a fixed batch size makes scoring split-invariant."""
    lib, _ = dataset
    smiles = lib.smiles()[:10]
    engine = InferenceEngine(surrogate, batch_size=16)
    whole = engine.score_smiles(smiles)
    split = engine.score_smiles(smiles[:6]) + engine.score_smiles(
        smiles[6:], ids=[f"CPD{i:07d}" for i in range(6, 10)]
    )
    assert [o.score for o in whole] == [o.score for o in split]


def test_final_partial_batch_is_padded_not_truncated(dataset, surrogate):
    lib, _ = dataset
    smiles = lib.smiles()[:19]  # 19 = 16 + 3: second batch is padded
    scored = InferenceEngine(surrogate, batch_size=16).score_smiles(smiles)
    assert len(scored) == 19
    assert all(np.isfinite(o.score) for o in scored)


def test_shard_path_matches_in_memory_with_graph_engine(tmp_path, dataset, surrogate):
    lib, _ = dataset
    sub = lib.subset(range(20), name="graphshards")
    paths = sub.to_shards(tmp_path, shard_size=7)
    engine = InferenceEngine(surrogate, engine="graph")
    from_shards = {o.compound_id: o.score for o in engine.score_shards(paths)}
    in_memory = engine.score_smiles(sub.smiles(), [e.compound_id for e in sub])
    assert from_shards == {o.compound_id: o.score for o in in_memory}


def test_graph_and_eager_rank_identically(dataset, surrogate):
    lib, _ = dataset
    smiles = lib.smiles()
    rank = lambda eng: [
        o.compound_id
        for o in InferenceEngine.top_fraction(
            InferenceEngine(surrogate, engine=eng).score_smiles(smiles), 0.25
        )
    ]
    assert rank("graph") == rank("eager")


def test_unknown_engine_rejected(surrogate):
    with pytest.raises(ValueError):
        InferenceEngine(surrogate, engine="tensorrt")


def test_records_scored_counter(dataset, surrogate):
    lib, _ = dataset
    engine = InferenceEngine(surrogate)
    engine.score_smiles(lib.smiles()[:7])
    engine.score_smiles(lib.smiles()[:5])
    assert engine.records_scored == 12


def test_featurize_batch_into_caller_buffer(dataset):
    lib, _ = dataset
    smiles = lib.smiles()[:6]
    fresh = featurize_batch(smiles, size=24)
    buf = np.full((6, fresh.shape[1], 24, 24), 7.0, dtype=np.float32)
    out = featurize_batch(smiles, size=24, out=buf)
    assert out is buf
    np.testing.assert_array_equal(buf, fresh)


def test_featurize_batch_rejects_bad_buffer(dataset):
    lib, _ = dataset
    bad = np.zeros((2, 1, 24, 24), dtype=np.float32)
    with pytest.raises(ValueError):
        featurize_batch(lib.smiles()[:3], size=24, out=bad)
