"""Surrogate training engines: graph vs. eager parity, chunked
validation, and telemetry instrumentation."""

import numpy as np
import pytest

from repro.chem.library import generate_library
from repro.nn.autograd import Tensor
from repro.nn.losses import mse_loss
from repro.surrogate.train import TrainConfig, train_surrogate, validation_loss
from repro.telemetry import TickClock, Tracer


@pytest.fixture(scope="module")
def dataset():
    lib = generate_library(40, seed=47)
    scores = np.array(
        [
            -2.0 * lib.descriptors(i).aromatic_rings
            + 0.03 * lib.descriptors(i).molecular_weight
            for i in range(len(lib))
        ]
    )
    return lib.smiles(), scores


SMALL = dict(epochs=3, batch_size=16, width=6)


def test_graph_engine_bitwise_matches_eager(dataset):
    smiles, scores = dataset
    graph = train_surrogate(
        smiles, scores, TrainConfig(engine="graph", **SMALL), seed=3
    )
    eager = train_surrogate(
        smiles, scores, TrainConfig(engine="eager", **SMALL), seed=3
    )
    assert graph.train_losses == eager.train_losses
    assert graph.val_losses == eager.val_losses
    for pg, pe in zip(graph.model.parameters(), eager.model.parameters()):
        assert np.array_equal(pg.data, pe.data)
    # identical models ⇒ identical predictions, bitwise
    preds_g = graph.predict_normalized(smiles[:8])
    preds_e = eager.predict_normalized(smiles[:8])
    assert np.array_equal(preds_g, preds_e)


def test_validation_loss_matches_single_pass(dataset):
    smiles, scores = dataset
    trained = train_surrogate(
        smiles, scores, TrainConfig(engine="eager", **SMALL), seed=3
    )
    model = trained.model
    model.eval()
    rng = np.random.default_rng(8)
    X = rng.normal(size=(23, 7, 24, 24))  # deliberately not a chunk multiple
    y = rng.random((23, 1))
    single = mse_loss(model(Tensor(X)), Tensor(y)).item()
    # the reduction arithmetic is exact; chunked forwards match the full
    # pass bitwise unless a degenerate tail selects another GEMM kernel
    for chunk in (4, 16, 64):
        assert validation_loss(model, X, y, chunk) == single
    assert validation_loss(model, X, y, 7) == pytest.approx(single, rel=1e-12)


def test_validation_loss_empty_split():
    assert validation_loss(None, np.zeros((0, 1)), np.zeros((0, 1)), 8) == 0.0


def test_engine_validated():
    with pytest.raises(ValueError, match="engine"):
        TrainConfig(engine="jit")


@pytest.mark.parametrize("engine", ["graph", "eager"])
def test_trainer_emits_spans_and_metrics(dataset, engine):
    smiles, scores = dataset
    tracer = Tracer(clock=TickClock())
    train_surrogate(
        smiles, scores, TrainConfig(engine=engine, **SMALL), seed=3, tracer=tracer
    )
    epochs = list(tracer.spans("train"))
    names = {s.name for s in epochs}
    assert names == {"train.epoch", "train.step"}
    epoch_spans = [s for s in epochs if s.name == "train.epoch"]
    assert len(epoch_spans) == SMALL["epochs"]
    for s in epoch_spans:
        assert "train_loss" in s.attrs and "val_loss" in s.attrs
    assert tracer.metrics.counter("train.steps").value == sum(
        1 for s in epochs if s.name == "train.step"
    )


def test_traces_identical_across_engines(dataset):
    """Same seed ⇒ byte-identical loss/grad-norm telemetry, either engine."""
    smiles, scores = dataset
    readings = {}
    for engine in ("graph", "eager"):
        tracer = Tracer(clock=TickClock())
        train_surrogate(
            smiles,
            scores,
            TrainConfig(engine=engine, **SMALL),
            seed=3,
            tracer=tracer,
        )
        readings[engine] = (
            [s.attrs for s in tracer.spans() if s.name == "train.epoch"],
            tracer.metrics.gauge("train.loss").value,
            tracer.metrics.gauge("train.grad_norm").value,
        )
    assert readings["graph"] == readings["eager"]
