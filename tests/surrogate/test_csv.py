"""Tests for the ML1 → S1 CSV hand-off."""

import pytest

from repro.surrogate.infer import InferenceEngine, ScoredCompound


def test_csv_roundtrip(tmp_path):
    rows = [
        ScoredCompound("C1", "CCO", 0.91),
        ScoredCompound("C2", "c1ccccc1", 0.123456),
    ]
    path = InferenceEngine.write_csv(rows, tmp_path / "ml1.csv")
    back = InferenceEngine.read_csv(path)
    assert [r.compound_id for r in back] == ["C1", "C2"]
    assert back[1].smiles == "c1ccccc1"
    assert back[1].score == pytest.approx(0.123456)


def test_csv_has_header(tmp_path):
    path = InferenceEngine.write_csv(
        [ScoredCompound("X", "C", 0.5)], tmp_path / "a.csv"
    )
    first = path.read_text().splitlines()[0]
    assert first == "compound_id,smiles,score"
