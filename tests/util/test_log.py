"""Tests for the logging helper."""

import logging

from repro.util.log import get_logger


def test_logger_namespaced_under_repro():
    log = get_logger("core.campaign")
    assert log.name == "repro.core.campaign"
    already = get_logger("repro.docking")
    assert already.name == "repro.docking"


def test_root_handler_installed_once():
    get_logger("a")
    get_logger("b")
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1


def test_default_level_warning():
    get_logger("x")
    assert logging.getLogger("repro").level == logging.WARNING


def test_messages_propagate_to_root(caplog):
    log = get_logger("test.module")
    with caplog.at_level(logging.INFO, logger="repro"):
        log.info("hello %d", 42)
    assert "hello 42" in caplog.text
