"""Tests for the logging helper."""

import logging

from repro.util.log import get_logger


def test_logger_namespaced_under_repro():
    log = get_logger("core.campaign")
    assert log.name == "repro.core.campaign"
    already = get_logger("repro.docking")
    assert already.name == "repro.docking"


def test_root_handler_installed_once():
    get_logger("a")
    get_logger("b")
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1


def test_default_level_warning():
    get_logger("x")
    assert logging.getLogger("repro").level == logging.WARNING


def test_messages_propagate_to_root(caplog):
    log = get_logger("test.module")
    with caplog.at_level(logging.INFO, logger="repro"):
        log.info("hello %d", 42)
    assert "hello 42" in caplog.text


def test_context_adapter_name_and_field(caplog):
    log = get_logger("ctx.module", context={"shard": 3, "rank": 1})
    assert log.name == "repro.ctx.module"
    with caplog.at_level(logging.INFO, logger="repro"):
        log.info("working")
    record = caplog.records[-1]
    assert record.context == " [rank=1 shard=3]"


def test_context_keys_sorted_and_empty_dict_renders_nothing(caplog):
    log = get_logger("ctx.empty", context={})
    with caplog.at_level(logging.INFO, logger="repro"):
        log.info("plain")
    assert caplog.records[-1].context == ""


def test_plain_records_format_without_context_field():
    # the handler's filter must default %(context)s for non-adapter records
    handler = logging.getLogger("repro").handlers[0]
    record = logging.LogRecord(
        "repro.x", logging.WARNING, __file__, 1, "msg", (), None
    )
    for f in handler.filters:
        f.filter(record)
    assert handler.format(record).endswith("WARNING msg")


def test_repro_log_env_sets_level(monkeypatch):
    import repro.util.log as log_mod

    root = logging.getLogger("repro")
    saved_handlers, saved_level = root.handlers[:], root.level
    try:
        root.handlers[:] = []
        monkeypatch.setattr(log_mod, "_configured", False)
        monkeypatch.setenv("REPRO_LOG", "debug")
        log_mod.get_logger("env.test")
        assert root.level == logging.DEBUG
    finally:
        root.handlers[:] = saved_handlers
        root.setLevel(saved_level)
        log_mod._configured = True
