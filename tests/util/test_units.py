"""Tests for unit conversions."""

import pytest

from repro.util.units import node_hours, ns_to_steps, seconds_to_hours


def test_seconds_to_hours():
    assert seconds_to_hours(3600) == 1.0
    assert seconds_to_hours(0) == 0.0


def test_node_hours():
    assert node_hours(2, 3600) == 2.0
    assert node_hours(0.5, 7200) == 1.0


def test_node_hours_rejects_negative():
    with pytest.raises(ValueError):
        node_hours(-1, 10)
    with pytest.raises(ValueError):
        node_hours(1, -10)


def test_ns_to_steps_basic():
    # 1 ns at 2 fs = 500,000 steps; here timestep is in ps
    assert ns_to_steps(1.0, 0.002) == 500_000
    assert ns_to_steps(0.0, 0.002) == 0


def test_ns_to_steps_floor_of_one():
    # scaled-down protocols must never lose all their work
    assert ns_to_steps(1e-9, 1.0) == 1


def test_ns_to_steps_validates():
    with pytest.raises(ValueError):
        ns_to_steps(1.0, 0.0)
    with pytest.raises(ValueError):
        ns_to_steps(-1.0, 0.002)
