"""Tests for the dual-format (NDJSON / pickle) shard IO layer."""

import gzip
import json

import pytest

from repro.util.shardio import (
    SHARD_READ_ERRORS,
    shard_format,
    shard_path,
    read_shard,
    write_shard,
)

RECORDS = [("CPD0000001", "CCO"), ("CPD0000002", "c1ccccc1"), ("CPD0000003", "CC(=O)O")]


def test_shard_format_dispatch():
    assert shard_format("lib-shard-00000.ndjson.gz") == "ndjson"
    assert shard_format("lib-shard-00000.jsonl.gz") == "ndjson"
    assert shard_format("lib-shard-00000.pkl.gz") == "pickle"
    assert shard_format("whatever.gz") == "pickle"  # legacy default


def test_shard_path_naming(tmp_path):
    p = shard_path(tmp_path, "OZD", 3, format="ndjson")
    assert p.name == "OZD-shard-00003.ndjson.gz"
    p = shard_path(tmp_path, "OZD", 3, format="pickle")
    assert p.name == "OZD-shard-00003.pkl.gz"
    with pytest.raises(ValueError):
        shard_path(tmp_path, "OZD", 0, format="parquet")


@pytest.mark.parametrize("fmt", ["ndjson", "pickle"])
def test_roundtrip(tmp_path, fmt):
    p = shard_path(tmp_path, "lib", 0, format=fmt)
    write_shard(p, RECORDS)
    assert read_shard(p) == RECORDS


def test_formats_read_identically(tmp_path):
    """Satellite contract: NDJSON and pickle shards of the same records
    are interchangeable to every consumer."""
    nd = shard_path(tmp_path, "a", 0, format="ndjson")
    pk = shard_path(tmp_path, "b", 0, format="pickle")
    write_shard(nd, RECORDS)
    write_shard(pk, RECORDS)
    assert read_shard(nd) == read_shard(pk)


def test_ndjson_is_one_json_object_per_line(tmp_path):
    p = shard_path(tmp_path, "lib", 0, format="ndjson")
    write_shard(p, RECORDS)
    with gzip.open(p, "rt", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    assert len(lines) == len(RECORDS)
    row = json.loads(lines[0])
    assert row == {"id": "CPD0000001", "smiles": "CCO"}


def test_write_is_atomic_no_partial_file(tmp_path, monkeypatch):
    """A crash mid-write must not leave a (truncated) shard at the final
    path, nor the temp file."""
    p = shard_path(tmp_path, "lib", 0, format="ndjson")

    bad = [("ok", "CCO"), None]  # None explodes during serialization
    with pytest.raises(Exception):
        write_shard(p, bad)
    assert not p.exists()
    assert list(tmp_path.iterdir()) == []


def test_corrupt_shards_raise_read_errors(tmp_path):
    garbage = tmp_path / "x-shard-00000.ndjson.gz"
    garbage.write_bytes(b"not gzip at all")
    with pytest.raises(SHARD_READ_ERRORS):
        read_shard(garbage)

    truncated = tmp_path / "y-shard-00000.ndjson.gz"
    truncated.write_bytes(gzip.compress(b'{"id": "a", "smiles"'))
    with pytest.raises(SHARD_READ_ERRORS):
        read_shard(truncated)

    with pytest.raises(SHARD_READ_ERRORS):
        read_shard(tmp_path / "missing-shard-00000.pkl.gz")


def test_malformed_ndjson_row_raises(tmp_path):
    p = tmp_path / "z-shard-00000.ndjson.gz"
    with gzip.open(p, "wt", encoding="utf-8") as fh:
        fh.write('{"id": "a", "smiles": "CCO"}\n{"wrong": "keys"}\n')
    with pytest.raises(SHARD_READ_ERRORS):
        read_shard(p)
