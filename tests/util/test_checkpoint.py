"""Tests for the checkpoint manifest and exact-precision artifacts."""

import math

import pytest

from repro.util.checkpoint import (
    CheckpointManifest,
    load_artifact,
    save_artifact,
    shard_fingerprint,
)


def test_manifest_round_trip(tmp_path):
    m = CheckpointManifest(tmp_path / "manifest.jsonl")
    assert len(m) == 0
    assert not m.is_done("a")
    m.mark_done("a", n_records=3, fingerprint="deadbeef")
    m.mark_done("b", n_records=5)
    assert m.is_done("a") and "a" in m
    assert m.completed() == ["a", "b"]
    assert m.payload("a")["n_records"] == 3

    # a fresh instance reads the same state back from disk
    m2 = CheckpointManifest(tmp_path / "manifest.jsonl")
    assert m2.completed() == ["a", "b"]
    assert m2.payload("a") == m.payload("a")


def test_manifest_tolerates_truncated_tail(tmp_path):
    """A crash mid-append leaves a partial final line; the loader must
    treat it as not-completed, never as corruption."""
    path = tmp_path / "manifest.jsonl"
    m = CheckpointManifest(path)
    m.mark_done("shard-0", n_records=4)
    m.mark_done("shard-1", n_records=4)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"shard": "shard-2", "n_rec')  # killed mid-write

    m2 = CheckpointManifest(path)
    assert m2.completed() == ["shard-0", "shard-1"]
    assert not m2.is_done("shard-2")
    # and appending still works after the torn line
    m2.mark_done("shard-2", n_records=4)
    assert CheckpointManifest(path).is_done("shard-2")


def test_manifest_ignores_non_shard_lines(tmp_path):
    path = tmp_path / "manifest.jsonl"
    path.write_text('[1, 2]\n{"no_shard_key": 1}\n{"shard": "ok"}\n')
    m = CheckpointManifest(path)
    assert m.completed() == ["ok"]


def test_manifest_clear(tmp_path):
    m = CheckpointManifest(tmp_path / "manifest.jsonl")
    m.mark_done("a")
    m.clear()
    assert len(m) == 0
    assert not (tmp_path / "manifest.jsonl").exists()


def test_artifact_floats_round_trip_exactly(tmp_path):
    """Resume correctness rests on this: reloaded floats are the same
    bits, not merely close."""
    rows = [
        {"id": "a", "score": 0.1 + 0.2},
        {"id": "b", "score": 1.0 / 3.0},
        {"id": "c", "score": -7.25e-17, "pose": [math.pi, 2**-30, 1e300]},
    ]
    p = save_artifact(tmp_path / "s.scores.jsonl.gz", rows)
    loaded = load_artifact(p)
    assert loaded == rows
    for got, want in zip(loaded, rows):
        assert got["score"].hex() == want["score"].hex()


def test_artifact_write_is_atomic(tmp_path):
    p = tmp_path / "s.scores.jsonl.gz"
    with pytest.raises(TypeError):
        save_artifact(p, [{"id": "a", "bad": object()}])
    assert not p.exists()
    assert list(tmp_path.iterdir()) == []


def test_fingerprint_is_order_sensitive_and_stable():
    recs = [("x", "CCO"), ("y", "CCN"), ("z", "CCC")]
    a = shard_fingerprint(recs)
    assert a == shard_fingerprint(list(recs))
    assert a != shard_fingerprint(recs[::-1])
    assert len(a) == 16 and int(a, 16) >= 0


def test_fingerprint_covers_smiles_not_just_ids():
    """Compound ids are positional (OZD0000042) and collide across
    libraries; content changes must still change the fingerprint."""
    a = shard_fingerprint([("OZD0000000", "CCO")])
    b = shard_fingerprint([("OZD0000000", "CCN")])
    assert a != b
    # field/record boundaries are unambiguous
    assert shard_fingerprint([("ab", "c")]) != shard_fingerprint([("a", "bc")])
    assert shard_fingerprint([("a", "b"), ("c", "d")]) != shard_fingerprint(
        [("a", "b"), ("c",), ("d",)]
    )
