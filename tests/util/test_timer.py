"""Tests for timers."""

import pytest

from repro.util.timer import Timer


def test_timer_accumulates():
    t = Timer()
    with t:
        pass
    first = t.elapsed
    with t:
        pass
    assert t.elapsed >= first


def test_timer_double_start_raises():
    t = Timer()
    t.start()
    with pytest.raises(RuntimeError):
        t.start()


def test_timer_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_timer_reset():
    t = Timer()
    with t:
        pass
    t.reset()
    assert t.elapsed == 0.0
    assert not t.running


def test_timer_running_flag():
    t = Timer()
    assert not t.running
    t.start()
    assert t.running
    t.stop()
    assert not t.running
