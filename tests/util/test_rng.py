"""Tests for hierarchical RNG streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngFactory, rng_stream


def test_same_seed_key_reproduces():
    a = rng_stream(42, "docking/lga").normal(size=8)
    b = rng_stream(42, "docking/lga").normal(size=8)
    np.testing.assert_array_equal(a, b)


def test_different_keys_independent():
    a = rng_stream(42, "a").normal(size=8)
    b = rng_stream(42, "b").normal(size=8)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = rng_stream(1, "k").normal(size=8)
    b = rng_stream(2, "k").normal(size=8)
    assert not np.allclose(a, b)


def test_factory_prefix_scopes_streams():
    f = RngFactory(7)
    child = f.child("md")
    direct = f.stream("md/replica-0").normal(size=4)
    scoped = child.stream("replica-0").normal(size=4)
    np.testing.assert_array_equal(direct, scoped)


def test_factory_rejects_non_int_seed():
    with pytest.raises(TypeError):
        RngFactory("42")  # type: ignore[arg-type]


def test_spawn_seed_deterministic_and_valid():
    f = RngFactory(3)
    s1 = f.spawn_seed("x")
    s2 = f.spawn_seed("x")
    assert s1 == s2
    assert 0 <= s1 < 2**31


def test_adding_consumer_does_not_perturb_existing():
    # Key property: stream for key K must not depend on other keys in use.
    before = rng_stream(5, "stable").normal(size=4)
    _ = rng_stream(5, "new-consumer").normal(size=4)
    after = rng_stream(5, "stable").normal(size=4)
    np.testing.assert_array_equal(before, after)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=30))
def test_streams_deterministic_property(seed, key):
    a = rng_stream(seed, key).integers(0, 1000, size=4)
    b = rng_stream(seed, key).integers(0, 1000, size=4)
    np.testing.assert_array_equal(a, b)
