"""Tests for config helpers."""

from dataclasses import dataclass

import pytest

from repro.util.config import FrozenConfig, validate_positive, validate_range


@dataclass(frozen=True)
class _Cfg(FrozenConfig):
    replicas: int = 6
    duration_ns: float = 4.0

    def __post_init__(self):
        validate_positive("replicas", self.replicas)
        validate_positive("duration_ns", self.duration_ns, strict=False)


def test_replace_returns_new_validated_instance():
    cfg = _Cfg()
    cfg2 = cfg.replace(replicas=24)
    assert cfg2.replicas == 24
    assert cfg.replicas == 6


def test_replace_revalidates():
    with pytest.raises(ValueError):
        _Cfg().replace(replicas=0)


def test_as_dict():
    assert _Cfg().as_dict() == {"replicas": 6, "duration_ns": 4.0}


def test_validate_positive_strict_and_lax():
    validate_positive("x", 1)
    validate_positive("x", 0, strict=False)
    with pytest.raises(ValueError):
        validate_positive("x", 0)
    with pytest.raises(ValueError):
        validate_positive("x", -1, strict=False)


def test_validate_range():
    validate_range("x", 0.5, 0, 1)
    with pytest.raises(ValueError):
        validate_range("x", 1.5, 0, 1)
