"""Tests for receptor grid construction."""

import numpy as np
import pytest

from repro.docking.receptor import TARGETS, make_receptor


def test_known_targets_exist():
    assert set(TARGETS) == {"3CLPro", "PLPro", "ADRP", "NSP15"}
    assert "6W9C" in TARGETS["PLPro"]


def test_unknown_target_rejected():
    with pytest.raises(ValueError, match="unknown target"):
        make_receptor("SPIKE")


def test_unknown_pdb_rejected():
    with pytest.raises(ValueError, match="unknown PDB id"):
        make_receptor("PLPro", "9XYZ")


def test_default_pdb_is_first_variant():
    rec = make_receptor("PLPro")
    assert rec.pdb_id == TARGETS["PLPro"][0]


def test_grid_shapes_consistent():
    rec = make_receptor("3CLPro", box_size=12.0, spacing=1.0)
    assert rec.phi.shape == rec.hydro.shape == rec.steric.shape
    assert rec.n_grid == 13
    axis = rec.grid_coords()
    assert axis[0] == pytest.approx(-6.0)
    assert axis[-1] == pytest.approx(6.0)


def test_construction_deterministic():
    a = make_receptor("PLPro", "6W9C", seed=5)
    b = make_receptor("PLPro", "6W9C", seed=5)
    np.testing.assert_array_equal(a.phi, b.phi)


def test_different_seeds_differ():
    a = make_receptor("PLPro", "6W9C", seed=5)
    b = make_receptor("PLPro", "6W9C", seed=6)
    assert not np.allclose(a.phi, b.phi)


def test_pdb_variants_similar_but_distinct():
    a = make_receptor("PLPro", "6W9C", seed=5)
    b = make_receptor("PLPro", "6WX4", seed=5)
    assert not np.allclose(a.phi, b.phi)
    # but the pocket is the same protein: fields strongly correlated
    corr = np.corrcoef(a.phi.ravel(), b.phi.ravel())[0, 1]
    assert corr > 0.7


def test_fields_bounded():
    rec = make_receptor("NSP15")
    assert np.isfinite(rec.phi).all()
    assert np.abs(rec.phi).max() < 200
    assert rec.steric.min() >= 0.0


def test_contains():
    rec = make_receptor("ADRP", box_size=10.0)
    inside = np.array([[0.0, 0.0, 0.0], [4.9, 0, 0]])
    outside = np.array([[5.1, 0, 0]])
    assert rec.contains(inside).all()
    assert not rec.contains(outside).any()


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        make_receptor("PLPro", box_size=-1)
    with pytest.raises(ValueError):
        make_receptor("PLPro", spacing=0)
