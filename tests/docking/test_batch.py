"""Fused multi-ligand docking: bit-equivalence with the sequential path.

The contract under test is the hard one from the batch module: docking a
compound through the fused shard path (``batched=True``) must produce
*bit-identical* poses, scores and eval counts to docking it alone
(``batched=False``), for any shard composition or ordering.
"""

from __future__ import annotations

import pytest

import repro.docking.engine as engine_mod
from repro.chem.library import generate_library
from repro.chem.smiles import parse_smiles
from repro.docking.batch import _partition_by_size, dock_shard
from repro.docking.engine import DockingEngine
from repro.docking.lga import LGAConfig
from repro.docking.ligand import prepare_ligand
from repro.docking.receptor import make_receptor
from repro.rct.raptor import RaptorConfig, dock_library_raptor
from repro.util.rng import rng_stream

receptor = make_receptor("3CLPro")
library = generate_library(10, seed=23)
# a small LGA keeps each docking ~10x cheaper than the defaults while
# still exercising init, selection, crossover, mutation and local search
small = LGAConfig(population=8, generations=3, local_search_rate=0.3)


def _engine(local_search: str = "adadelta") -> DockingEngine:
    return DockingEngine(
        receptor, seed=5, config=small, local_search=local_search
    )


def _assert_bitwise_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.compound_id == rb.compound_id
        assert ra.score == rb.score
        assert ra.n_evals == rb.n_evals
        assert ra.conformer == rb.conformer
        assert ra.pose_translation == rb.pose_translation
        assert ra.pose_quaternion == rb.pose_quaternion
        assert ra.torsion_angles == rb.torsion_angles


@pytest.mark.parametrize("local_search", ["adadelta", "solis-wets"])
def test_batched_matches_sequential_bitwise(local_search):
    seq = _engine(local_search).dock_library(library, batched=False)
    fused = _engine(local_search).dock_library(library, batched=True)
    _assert_bitwise_equal(seq, fused)


def test_batched_independent_of_shard_order():
    entries = [(e.smiles, e.compound_id) for e in library]
    forward = _engine().dock_entries(entries, batched=True)
    backward = _engine().dock_entries(entries[::-1], batched=True)
    _assert_bitwise_equal(forward, backward[::-1])


def test_batched_member_matches_dock_smiles():
    fused = _engine().dock_library(library, batched=True)
    entry = library[3]
    solo = _engine().dock_smiles(entry.smiles, entry.compound_id)
    _assert_bitwise_equal([solo], [fused[3]])


def test_counters_match_across_paths():
    eng_seq = _engine()
    eng_fused = _engine()
    eng_seq.dock_library(library, batched=False)
    eng_fused.dock_library(library, batched=True)
    assert eng_fused.total_evals == eng_seq.total_evals
    assert eng_fused.total_ligands == eng_seq.total_ligands == len(library)


def test_prep_cache_parses_each_compound_once(monkeypatch):
    calls: list[str] = []
    real_parse = engine_mod.parse_smiles

    def counting_parse(smiles):
        calls.append(smiles)
        return real_parse(smiles)

    monkeypatch.setattr(engine_mod, "parse_smiles", counting_parse)
    eng = _engine()
    results = eng.dock_library(library, batched=True)
    for r in results:  # pose reconstruction reuses the cached prep
        eng.pose_coordinates(r)
    eng.dock_library(library, batched=False)
    assert sorted(calls) == sorted(e.smiles for e in library)


def test_raptor_shards_match_dock_library():
    plain = _engine().dock_library(library, batched=True)
    eng = _engine()
    outcome = dock_library_raptor(
        eng, library, RaptorConfig(n_workers=2), shard_size=3
    )
    assert outcome.failed_indices == []
    _assert_bitwise_equal(plain, outcome.results)
    assert eng.total_evals == sum(r.n_evals for r in plain)
    assert eng.total_ligands == len(library)


def test_dock_shard_validates_rng_count():
    beads = [
        prepare_ligand(parse_smiles("CCO"), rng_stream(0, "t/batch/a")),
        prepare_ligand(parse_smiles("CCN"), rng_stream(0, "t/batch/b")),
    ]
    with pytest.raises(ValueError, match="one RNG stream per ligand"):
        dock_shard(receptor, beads, [rng_stream(0, "t/batch/c")])


def test_dock_shard_rejects_unknown_local_search():
    beads = [prepare_ligand(parse_smiles("CCO"), rng_stream(0, "t/batch/d"))]
    with pytest.raises(ValueError, match="unknown local search"):
        dock_shard(
            receptor, beads, [rng_stream(0, "t/batch/e")], local_search="bfgs"
        )


def test_dock_shard_empty_is_empty():
    assert dock_shard(receptor, [], []) == []


def test_partition_covers_every_ligand_once():
    beads = [
        prepare_ligand(
            parse_smiles(e.smiles), rng_stream(1, f"t/batch/part/{i}")
        )
        for i, e in enumerate(generate_library(17, seed=41))
    ]
    buckets = _partition_by_size(beads)
    seen = sorted(i for bucket in buckets for i in bucket)
    assert seen == list(range(len(beads)))
    # buckets are torsion-homogeneous up to the small-bucket merge rule,
    # so within a bucket torsion counts may only grow
    for bucket in buckets:
        torsions = [beads[i].n_torsions for i in bucket]
        assert torsions == sorted(torsions)


def test_n_evals_identical_per_ligand():
    seq = _engine().dock_library(library, batched=False)
    fused = _engine().dock_library(library, batched=True)
    assert [r.n_evals for r in fused] == [r.n_evals for r in seq]
    assert all(r.n_evals > 0 for r in fused)
