"""Tests for the grid scoring function and its gradients."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.ligand import Pose, prepare_ligand, random_quaternion
from repro.docking.receptor import make_receptor
from repro.docking.scoring import (
    apply_rigid_step,
    apply_rigid_steps_batch,
    interpolate,
    score_and_gradient,
    score_and_gradient_batch,
    score_pose,
    score_poses_batch,
)
from repro.util.rng import rng_stream


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("PLPro", "6W9C", seed=7, box_size=12.0, spacing=1.0)


@pytest.fixture(scope="module")
def beads():
    return prepare_ligand(parse_smiles("c1ccccc1C(=O)O"), rng_stream(0, "t/beads"))


def _pose(rng_key="t/pose"):
    rng = rng_stream(3, rng_key)
    return Pose(0, rng.uniform(-2, 2, size=3), random_quaternion(rng))


def test_interpolation_exact_at_grid_points(receptor):
    axis = receptor.grid_coords()
    pts = np.array([[axis[3], axis[4], axis[5]], [axis[0], axis[0], axis[0]]])
    vals, _ = interpolate(receptor.phi, receptor, pts)
    assert vals[0] == pytest.approx(receptor.phi[3, 4, 5])
    assert vals[1] == pytest.approx(receptor.phi[0, 0, 0])


def test_interpolation_gradient_matches_finite_difference(receptor):
    rng = rng_stream(1, "t/interp")
    pts = rng.uniform(-4, 4, size=(10, 3))
    _, grad = interpolate(receptor.phi, receptor, pts)
    eps = 1e-5
    for axis in range(3):
        shift = np.zeros(3)
        shift[axis] = eps
        up, _ = interpolate(receptor.phi, receptor, pts + shift)
        dn, _ = interpolate(receptor.phi, receptor, pts - shift)
        fd = (up - dn) / (2 * eps)
        np.testing.assert_allclose(grad[:, axis], fd, rtol=1e-4, atol=1e-6)


def test_score_breakdown_total(receptor, beads):
    b = score_pose(receptor, beads, _pose())
    assert b.total == pytest.approx(
        b.electrostatic + b.hydrophobic + b.steric + b.wall
    )


def test_wall_penalty_outside_box(receptor, beads):
    inside = Pose(0, np.zeros(3), np.array([0.0, 0, 0, 1.0]))
    outside = Pose(0, np.array([20.0, 0, 0]), np.array([0.0, 0, 0, 1.0]))
    assert score_pose(receptor, beads, inside).wall == 0.0
    assert score_pose(receptor, beads, outside).wall > 0.0
    assert score_pose(receptor, beads, outside).total > score_pose(
        receptor, beads, inside
    ).total


def test_translation_gradient_matches_finite_difference(receptor, beads):
    pose = _pose()
    _, d_trans, _, _ = score_and_gradient(receptor, beads, pose)
    eps = 1e-5
    for axis in range(3):
        shift = np.zeros(3)
        shift[axis] = eps
        up = score_pose(receptor, beads, apply_rigid_step(pose, shift, np.zeros(3))).total
        dn = score_pose(receptor, beads, apply_rigid_step(pose, -shift, np.zeros(3))).total
        assert d_trans[axis] == pytest.approx((up - dn) / (2 * eps), rel=1e-3, abs=1e-5)


def test_rotation_gradient_matches_finite_difference(receptor, beads):
    pose = _pose("t/pose-rot")
    _, _, d_rot, _ = score_and_gradient(receptor, beads, pose)
    eps = 1e-5
    for axis in range(3):
        dw = np.zeros(3)
        dw[axis] = eps
        up = score_pose(receptor, beads, apply_rigid_step(pose, np.zeros(3), dw)).total
        dn = score_pose(receptor, beads, apply_rigid_step(pose, np.zeros(3), -dw)).total
        assert d_rot[axis] == pytest.approx((up - dn) / (2 * eps), rel=1e-3, abs=1e-5)


def test_batch_scores_match_single(receptor, beads):
    rng = rng_stream(2, "t/batch")
    k = 6
    conf = rng.integers(beads.n_conformers, size=k)
    trans = rng.uniform(-3, 3, size=(k, 3))
    quats = np.stack([random_quaternion(rng) for _ in range(k)])
    batch = score_poses_batch(receptor, beads, conf, trans, quats)
    for i in range(k):
        single = score_pose(receptor, beads, Pose(int(conf[i]), trans[i], quats[i]))
        assert batch[i] == pytest.approx(single.total)


def test_batch_gradients_match_single(receptor, beads):
    rng = rng_stream(4, "t/batchg")
    k = 4
    conf = rng.integers(beads.n_conformers, size=k)
    trans = rng.uniform(-3, 3, size=(k, 3))
    quats = np.stack([random_quaternion(rng) for _ in range(k)])
    totals, dts, drs, _ = score_and_gradient_batch(receptor, beads, conf, trans, quats)
    for i in range(k):
        s, dt, dr, _ = score_and_gradient(
            receptor, beads, Pose(int(conf[i]), trans[i], quats[i])
        )
        assert totals[i] == pytest.approx(s)
        np.testing.assert_allclose(dts[i], dt, rtol=1e-10)
        np.testing.assert_allclose(drs[i], dr, rtol=1e-10)


def test_rigid_step_zero_is_identity():
    pose = _pose()
    out = apply_rigid_step(pose, np.zeros(3), np.zeros(3))
    np.testing.assert_array_equal(out.translation, pose.translation)
    np.testing.assert_array_equal(out.quaternion, pose.quaternion)


def test_rigid_step_preserves_unit_quaternion():
    pose = _pose()
    out = apply_rigid_step(pose, np.ones(3), np.array([0.3, -0.2, 0.5]))
    assert np.linalg.norm(out.quaternion) == pytest.approx(1.0)


def test_rigid_steps_batch_mixed_zero_and_nonzero():
    rng = rng_stream(5, "t/steps")
    trans = rng.normal(size=(3, 3))
    quats = np.stack([random_quaternion(rng) for _ in range(3)])
    d_rot = np.zeros((3, 3))
    d_rot[1] = [0.1, 0.2, -0.1]
    new_t, new_q = apply_rigid_steps_batch(trans, quats, np.zeros((3, 3)), d_rot)
    np.testing.assert_array_equal(new_q[0], quats[0])
    np.testing.assert_array_equal(new_q[2], quats[2])
    assert not np.allclose(new_q[1], quats[1])


def test_charged_ligand_prefers_complementary_region(receptor):
    """A cation should score best where the potential is most negative."""
    cation = prepare_ligand(parse_smiles("C[N+](C)(C)C"), rng_stream(6, "t/cat"))
    idx_min = np.unravel_index(np.argmin(receptor.phi), receptor.phi.shape)
    idx_max = np.unravel_index(np.argmax(receptor.phi), receptor.phi.shape)
    axis = receptor.grid_coords()
    at_min = Pose(0, np.array([axis[i] for i in idx_min]), np.array([0.0, 0, 0, 1.0]))
    at_max = Pose(0, np.array([axis[i] for i in idx_max]), np.array([0.0, 0, 0, 1.0]))
    e_min = score_pose(receptor, cation, at_min).electrostatic
    e_max = score_pose(receptor, cation, at_max).electrostatic
    assert e_min < e_max
