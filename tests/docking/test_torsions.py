"""Tests for torsional flexibility in docking."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.lga import LamarckianGA, LGAConfig, _random_quaternions
from repro.docking.ligand import (
    Pose,
    apply_torsions_batch,
    find_torsions,
    prepare_ligand,
    random_quaternion,
)
from repro.docking.local_search import Adadelta, AdadeltaConfig, SolisWets, SolisWetsConfig
from repro.docking.receptor import make_receptor
from repro.docking.scoring import (
    score_and_gradient_batch,
    score_poses_batch,
)
from repro.util.rng import rng_stream

#: flexible molecule: biphenyl + acid tail → several rotatable bonds
FLEXIBLE = "c1ccc(cc1)c1ccc(CCC(=O)O)cc1"


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("PLPro", "6W9C", seed=7)


@pytest.fixture(scope="module")
def beads():
    return prepare_ligand(parse_smiles(FLEXIBLE), rng_stream(0, "t/tor"))


# ---------------------------------------------------------------- detection


def test_find_torsions_matches_descriptor_count():
    from repro.chem.descriptors import compute_descriptors

    for smi in ["CCCC", FLEXIBLE, "c1ccccc1", "CC(=O)O"]:
        mol = parse_smiles(smi)
        assert len(find_torsions(mol)) == compute_descriptors(mol).rotatable_bonds


def test_torsion_moving_side_is_smaller():
    mol = parse_smiles("c1ccccc1CCC")  # propylbenzene: tail rotates, not ring
    for tor in find_torsions(mol):
        n = mol.n_atoms
        assert len(tor.moving) <= n - len(tor.moving)
        assert tor.b not in tor.moving or True  # moving excludes the axis atom b
        assert tor.a not in tor.moving


def test_rigid_molecule_has_no_torsions():
    assert find_torsions(parse_smiles("c1ccccc1")) == []
    assert prepare_ligand(
        parse_smiles("c1ccccc1"), rng_stream(1, "t/rig")
    ).n_torsions == 0


# -------------------------------------------------------------- application


def test_apply_torsions_preserves_bond_lengths(beads):
    rng = rng_stream(2, "t/app")
    mol = parse_smiles(FLEXIBLE)
    coords = beads.conformers[:1]
    angles = rng.uniform(-np.pi, np.pi, size=(1, beads.n_torsions))
    out = apply_torsions_batch(coords, beads.torsions, angles)
    for bond in mol.bonds:
        before = np.linalg.norm(coords[0, bond.a] - coords[0, bond.b])
        after = np.linalg.norm(out[0, bond.a] - out[0, bond.b])
        assert after == pytest.approx(before, abs=1e-9)


def test_apply_zero_torsions_is_identity(beads):
    coords = beads.conformers[:2]
    out = apply_torsions_batch(
        coords, beads.torsions, np.zeros((2, beads.n_torsions))
    )
    np.testing.assert_allclose(out, coords, atol=1e-12)


def test_apply_torsions_moves_only_moving_atoms(beads):
    coords = beads.conformers[:1]
    angles = np.zeros((1, beads.n_torsions))
    angles[0, 0] = 1.0
    out = apply_torsions_batch(coords, beads.torsions, angles)
    tor = beads.torsions[0]
    static = np.setdiff1d(np.arange(beads.n_atoms), tor.moving)
    np.testing.assert_allclose(out[0, static], coords[0, static], atol=1e-12)
    assert not np.allclose(out[0, tor.moving], coords[0, tor.moving])


def test_apply_torsions_validates_shape(beads):
    with pytest.raises(ValueError):
        apply_torsions_batch(beads.conformers[:1], beads.torsions, np.zeros((1, 99)))


# ----------------------------------------------------------------- gradient


def test_torsion_gradient_matches_finite_difference(receptor, beads):
    rng = rng_stream(3, "t/grad")
    k = 3
    conf = np.zeros(k, dtype=int)
    trans = rng.uniform(-2, 2, size=(k, 3))
    quats = _random_quaternions(rng, k)
    angles = rng.uniform(-1, 1, size=(k, beads.n_torsions))
    _, _, _, d_tor = score_and_gradient_batch(
        receptor, beads, conf, trans, quats, angles
    )
    eps = 1e-6
    for t in range(beads.n_torsions):
        up = angles.copy()
        up[:, t] += eps
        dn = angles.copy()
        dn[:, t] -= eps
        s_up = score_poses_batch(receptor, beads, conf, trans, quats, up)
        s_dn = score_poses_batch(receptor, beads, conf, trans, quats, dn)
        fd = (s_up - s_dn) / (2 * eps)
        # independent-torsion approximation: exact when subtrees are
        # disjoint, very close otherwise
        np.testing.assert_allclose(d_tor[:, t], fd, rtol=5e-2, atol=1e-4)


# ------------------------------------------------------------ optimization


@pytest.mark.parametrize("method", [Adadelta(AdadeltaConfig(max_iters=25)),
                                    SolisWets(SolisWetsConfig(max_iters=15))])
def test_local_search_returns_torsions_and_improves(receptor, beads, method):
    rng = rng_stream(4, "t/ls")
    k = 6
    conf = np.zeros(k, dtype=int)
    trans = rng.uniform(-4, 4, size=(k, 3))
    quats = _random_quaternions(rng, k)
    angles = rng.uniform(-np.pi, np.pi, size=(k, beads.n_torsions))
    before = score_poses_batch(receptor, beads, conf, trans, quats, angles)
    out = method.refine_batch(
        receptor, beads, conf, trans, quats, rng_stream(5, "t/run"), angles
    )
    assert out.torsion_angles is not None
    assert out.torsion_angles.shape == (k, beads.n_torsions)
    assert (out.scores <= before + 1e-9).all()
    assert out.scores.mean() < before.mean()


def test_flexible_docking_beats_rigid(receptor):
    """Torsional genes must help: flexible docking finds scores at least
    as good as freezing the torsions at their conformer values."""
    mol = parse_smiles(FLEXIBLE)
    beads = prepare_ligand(mol, rng_stream(6, "t/flex"))
    assert beads.n_torsions >= 2
    cfg = LGAConfig(population=16, generations=8)
    flexible = LamarckianGA(cfg).dock(receptor, beads, rng_stream(7, "t/ga"))
    rigid_beads = prepare_ligand(mol, rng_stream(6, "t/flex"))
    rigid_beads.torsions = []
    rigid = LamarckianGA(cfg).dock(receptor, rigid_beads, rng_stream(7, "t/ga"))
    assert flexible.best_score <= rigid.best_score + 1.0


def test_docking_result_roundtrips_torsions(receptor):
    """Engine results must reproduce the exact scored pose coordinates."""
    from repro.docking.engine import DockingEngine
    from repro.docking.lga import LGAConfig

    engine = DockingEngine(
        receptor, seed=0, config=LGAConfig(population=10, generations=4)
    )
    result = engine.dock_smiles(FLEXIBLE, "FLEX1")
    assert len(result.torsion_angles) > 0
    coords = engine.pose_coordinates(result)
    # re-scoring the reconstructed coordinates reproduces the result score
    from repro.docking.scoring import _batch_atom_energies

    beads = prepare_ligand(
        parse_smiles(FLEXIBLE),
        engine.rng_factory.stream("prep/FLEX1"),
        n_conformers=engine.n_conformers,
    )
    totals, _, _ = _batch_atom_energies(receptor, beads, coords[None])
    assert totals[0] == pytest.approx(result.score, abs=1e-9)
