"""Tests for Solis–Wets and ADADELTA local search."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.lga import _random_quaternions
from repro.docking.ligand import Pose, prepare_ligand, random_quaternion
from repro.docking.local_search import (
    Adadelta,
    AdadeltaConfig,
    SolisWets,
    SolisWetsConfig,
)
from repro.docking.receptor import make_receptor
from repro.docking.scoring import score_pose
from repro.util.rng import rng_stream


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("PLPro", "6W9C", seed=7)


@pytest.fixture(scope="module")
def beads():
    return prepare_ligand(parse_smiles("c1ccncc1CC(=O)O"), rng_stream(0, "t/ls"))


def _start_pose():
    rng = rng_stream(1, "t/ls-pose")
    return Pose(0, rng.uniform(-3, 3, size=3), random_quaternion(rng))


@pytest.mark.parametrize("method", [SolisWets(), Adadelta()])
def test_refinement_never_worsens(receptor, beads, method):
    pose = _start_pose()
    before = score_pose(receptor, beads, pose).total
    out = method.refine(receptor, beads, pose, rng_stream(2, "t/ls-run"))
    assert out.score <= before + 1e-9
    # the returned score is consistent with re-scoring the returned pose
    assert score_pose(receptor, beads, out.pose).total == pytest.approx(out.score)


@pytest.mark.parametrize("method", [SolisWets(), Adadelta()])
def test_refinement_actually_improves(receptor, beads, method):
    pose = _start_pose()
    before = score_pose(receptor, beads, pose).total
    out = method.refine(receptor, beads, pose, rng_stream(3, "t/ls-run2"))
    assert out.score < before  # from a random pose there is always downhill


def test_solis_wets_deterministic(receptor, beads):
    pose = _start_pose()
    a = SolisWets().refine(receptor, beads, pose, rng_stream(4, "t/sw"))
    b = SolisWets().refine(receptor, beads, pose, rng_stream(4, "t/sw"))
    assert a.score == b.score


def test_adadelta_ignores_rng(receptor, beads):
    pose = _start_pose()
    a = Adadelta().refine(receptor, beads, pose, rng_stream(5, "t/ad1"))
    b = Adadelta().refine(receptor, beads, pose, rng_stream(99, "t/ad2"))
    assert a.score == b.score


def test_eval_counting(receptor, beads):
    pose = _start_pose()
    ad = Adadelta(AdadeltaConfig(max_iters=10)).refine(
        receptor, beads, pose, rng_stream(6, "t/cnt")
    )
    assert ad.n_evals == 11  # initial + one per iteration
    sw = SolisWets(SolisWetsConfig(max_iters=10)).refine(
        receptor, beads, pose, rng_stream(6, "t/cnt")
    )
    # initial + up to 2 per iteration (forward + mirrored), unless early stop
    assert 11 <= sw.n_evals <= 21


def test_batch_refinement_matches_interface(receptor, beads):
    rng = rng_stream(7, "t/batchls")
    k = 5
    conf = rng.integers(beads.n_conformers, size=k)
    trans = rng.uniform(-3, 3, size=(k, 3))
    quats = _random_quaternions(rng, k)
    out = Adadelta().refine_batch(
        receptor, beads, conf, trans, quats, rng_stream(8, "t/b")
    )
    assert out.translations.shape == (k, 3)
    assert out.quaternions.shape == (k, 4)
    assert out.scores.shape == (k,)
    np.testing.assert_allclose(np.linalg.norm(out.quaternions, axis=1), 1.0)


def test_adadelta_beats_solis_wets_at_matched_budget(receptor, beads):
    """The §5.1.1 claim: gradient local search improves docking quality."""
    rng = rng_stream(9, "t/quality")
    k = 12
    conf = rng.integers(beads.n_conformers, size=k)
    trans = rng.uniform(-5, 5, size=(k, 3))
    quats = _random_quaternions(rng, k)
    # SW uses 2 evals/iter, so 20 SW iters ≈ 40 AD iters in budget
    ad = Adadelta(AdadeltaConfig(max_iters=40)).refine_batch(
        receptor, beads, conf, trans.copy(), quats.copy(), rng_stream(10, "t/ad")
    )
    sw = SolisWets(SolisWetsConfig(max_iters=20)).refine_batch(
        receptor, beads, conf, trans.copy(), quats.copy(), rng_stream(10, "t/sw")
    )
    assert ad.scores.mean() < sw.scores.mean()


def test_config_validation():
    with pytest.raises(ValueError):
        AdadeltaConfig(max_iters=0)
    with pytest.raises(ValueError):
        SolisWetsConfig(rho_trans=-1)
