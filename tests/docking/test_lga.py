"""Tests for the Lamarckian genetic algorithm."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.lga import LamarckianGA, LGAConfig
from repro.docking.ligand import prepare_ligand
from repro.docking.receptor import make_receptor
from repro.docking.scoring import score_pose
from repro.util.rng import rng_stream


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("3CLPro", seed=7)


@pytest.fixture(scope="module")
def beads():
    return prepare_ligand(parse_smiles("Cc1ccccc1C#N"), rng_stream(0, "t/lga"))


FAST = LGAConfig(population=10, generations=4)


def test_docking_returns_consistent_result(receptor, beads):
    run = LamarckianGA(FAST).dock(receptor, beads, rng_stream(1, "t/run"))
    rescored = score_pose(receptor, beads, run.best_pose).total
    assert rescored == pytest.approx(run.best_score)
    assert run.n_evals > 0
    assert len(run.history) == FAST.generations + 1


def test_history_monotone_nonincreasing(receptor, beads):
    """Elitism guarantees the best score never regresses."""
    run = LamarckianGA(FAST).dock(receptor, beads, rng_stream(2, "t/mono"))
    assert all(b <= a + 1e-9 for a, b in zip(run.history, run.history[1:]))


def test_deterministic_given_stream(receptor, beads):
    a = LamarckianGA(FAST).dock(receptor, beads, rng_stream(3, "t/det"))
    b = LamarckianGA(FAST).dock(receptor, beads, rng_stream(3, "t/det"))
    assert a.best_score == b.best_score
    np.testing.assert_array_equal(a.best_pose.translation, b.best_pose.translation)


def test_search_improves_over_random(receptor, beads):
    """GA must beat the best of an equal-size random sample."""
    rng = rng_stream(4, "t/rand")
    from repro.docking.lga import _random_quaternions
    from repro.docking.scoring import score_poses_batch

    run = LamarckianGA(FAST).dock(receptor, beads, rng_stream(5, "t/ga"))
    k = 40
    conf = rng.integers(beads.n_conformers, size=k)
    trans = rng.uniform(-6, 6, size=(k, 3))
    quats = _random_quaternions(rng, k)
    random_best = score_poses_batch(receptor, beads, conf, trans, quats).min()
    assert run.best_score < random_best


def test_more_generations_no_worse(receptor, beads):
    short = LamarckianGA(LGAConfig(population=10, generations=2)).dock(
        receptor, beads, rng_stream(6, "t/gen")
    )
    long = LamarckianGA(LGAConfig(population=10, generations=10)).dock(
        receptor, beads, rng_stream(6, "t/gen")
    )
    assert long.best_score <= short.best_score + 1e-9


def test_unknown_local_search_rejected():
    with pytest.raises(ValueError, match="unknown local search"):
        LamarckianGA(local_search="newton")


def test_config_validation():
    with pytest.raises(ValueError):
        LGAConfig(population=0)
    with pytest.raises(ValueError):
        LGAConfig(crossover_rate=1.5)
    with pytest.raises(ValueError):
        LGAConfig(population=4, elitism=4)


def test_best_pose_inside_box(receptor, beads):
    """The optimum must be a physically placed pose, not a wall artifact."""
    run = LamarckianGA(FAST).dock(receptor, beads, rng_stream(7, "t/box"))
    assert np.abs(run.best_pose.translation).max() < receptor.box_size / 2.0
