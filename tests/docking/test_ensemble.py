"""Tests for ensemble docking across crystal structures."""

import pytest

from repro.chem.library import generate_library
from repro.docking.ensemble import dock_against_ensemble
from repro.docking.lga import LGAConfig

FAST = LGAConfig(population=8, generations=3)


@pytest.fixture(scope="module")
def ensemble_result():
    lib = generate_library(6, seed=61)
    return dock_against_ensemble("PLPro", lib, seed=0, config=FAST), lib


def test_all_structures_docked(ensemble_result):
    result, lib = ensemble_result
    assert set(result.per_structure) == {"6W9C", "6WX4"}
    for results in result.per_structure.values():
        assert len(results) == len(lib)


def test_consensus_is_per_compound_minimum(ensemble_result):
    result, lib = ensemble_result
    for entry in lib:
        scores = [
            r.score
            for results in result.per_structure.values()
            for r in results
            if r.compound_id == entry.compound_id
        ]
        assert result.consensus[entry.compound_id] == pytest.approx(min(scores))


def test_best_structure_lookup(ensemble_result):
    result, lib = ensemble_result
    cid = lib[0].compound_id
    pdb = result.best_structure_for(cid)
    assert pdb in result.per_structure
    best = result.consensus[cid]
    assert any(
        r.compound_id == cid and r.score == pytest.approx(best)
        for r in result.per_structure[pdb]
    )
    with pytest.raises(KeyError):
        result.best_structure_for("NOPE")


def test_top_compounds_ranked(ensemble_result):
    result, _ = ensemble_result
    top = result.top_compounds(3)
    assert len(top) == 3
    scores = [result.consensus[c] for c in top]
    assert scores == sorted(scores)


def test_structures_disagree_sometimes(ensemble_result):
    """Different crystal structures rank compounds differently — the
    reason the paper docks against several."""
    result, lib = ensemble_result
    a = {r.compound_id: r.score for r in result.per_structure["6W9C"]}
    b = {r.compound_id: r.score for r in result.per_structure["6WX4"]}
    diffs = [abs(a[e.compound_id] - b[e.compound_id]) for e in lib]
    assert max(diffs) > 0.5


def test_subset_of_pdb_ids():
    lib = generate_library(3, seed=62)
    result = dock_against_ensemble(
        "PLPro", lib, pdb_ids=["6W9C"], seed=0, config=FAST
    )
    assert list(result.per_structure) == ["6W9C"]


def test_empty_pdb_ids_rejected():
    lib = generate_library(2, seed=63)
    with pytest.raises(ValueError):
        dock_against_ensemble("PLPro", lib, pdb_ids=[], config=FAST)
