"""Packed multi-ligand kernels: fused stencil and mask behaviour.

These pin the two invariants the fused docking path rests on: the
stacked trilinear gather is *bitwise* the three separate per-grid
interpolations, and ligand padding is inert — padded atom slots come
back with exactly zero energy and exactly zero gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.ligand import pack_ligands, prepare_ligand
from repro.docking.receptor import make_receptor
from repro.docking.scoring import (
    interpolate,
    interpolate_stacked,
    packed_atom_energies,
    packed_score_batch,
)
from repro.util.rng import rng_stream


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("NSP15", seed=3, box_size=12.0, spacing=1.0)


@pytest.fixture(scope="module")
def beads_pair():
    # deliberately ragged: different atom, torsion and pair counts so the
    # pack actually pads
    small = prepare_ligand(parse_smiles("CCO"), rng_stream(0, "t/pk/small"))
    big = prepare_ligand(
        parse_smiles("CC(=O)Oc1ccccc1C(=O)O"), rng_stream(0, "t/pk/big")
    )
    return small, big


def _probe_coords(receptor, rng, n=40):
    half = receptor.box_size / 2.0
    inside = rng.uniform(-half + 0.3, half - 0.3, size=(n, 3))
    edges = np.array(
        [
            [-half, -half, -half],  # box corner
            [half, half, half],  # opposite corner (top cell edge)
            [0.0, 0.0, half],  # face centre
            [half + 1.7, 0.0, 0.0],  # outside the box entirely
            [-half - 2.4, half + 0.9, 0.0],
        ]
    )
    return np.concatenate([inside, edges])


def test_stacked_gather_matches_separate_interpolations(receptor):
    coords = _probe_coords(receptor, np.random.default_rng(11))
    stacked_v, stacked_g = interpolate_stacked(
        receptor.stacked_grids, receptor, coords
    )
    for gi, grid in enumerate(
        (receptor.phi, receptor.hydro, receptor.steric)
    ):
        v, g = interpolate(grid, receptor, coords)
        np.testing.assert_array_equal(stacked_v[gi], v)
        np.testing.assert_array_equal(stacked_g[gi], g)


def test_stacked_gather_score_only_path(receptor):
    coords = _probe_coords(receptor, np.random.default_rng(12))
    v_only, g = interpolate_stacked(
        receptor.stacked_grids, receptor, coords, want_grad=False
    )
    v_full, _ = interpolate_stacked(receptor.stacked_grids, receptor, coords)
    assert g is None
    np.testing.assert_array_equal(v_only, v_full)


def test_stacked_gather_batched_shapes(receptor):
    coords = np.random.default_rng(13).uniform(-4, 4, size=(5, 7, 3))
    v, g = interpolate_stacked(receptor.stacked_grids, receptor, coords)
    assert v.shape == (3, 5, 7)
    assert g.shape == (3, 5, 7, 3)


def test_padded_atoms_zero_energy_and_gradient(receptor, beads_pair):
    small, big = beads_pair
    assert small.n_atoms < big.n_atoms  # the pack genuinely pads
    pack = pack_ligands([small, big])
    plan = pack.plan(2)
    rng = np.random.default_rng(7)
    coords = rng.uniform(-4, 4, size=(4, pack.max_atoms, 3))
    totals, components, atom_grad = packed_atom_energies(
        receptor, pack, plan, coords
    )
    assert totals.shape == (4,)
    assert np.all(np.isfinite(totals))
    # the small ligand's padded slots: exactly zero gradient
    pad = atom_grad[:2, small.n_atoms :]
    np.testing.assert_array_equal(pad, np.zeros_like(pad))
    # and garbage in the padded lanes cannot leak into any energy: the
    # reductions never read them
    coords2 = coords.copy()
    coords2[:2, small.n_atoms :] = 1e6
    totals2, components2, atom_grad2 = packed_atom_energies(
        receptor, pack, plan, coords2
    )
    np.testing.assert_array_equal(totals2, totals)
    np.testing.assert_array_equal(components2, components)
    np.testing.assert_array_equal(
        atom_grad2[:, : small.n_atoms], atom_grad[:, : small.n_atoms]
    )


def test_pack_of_two_matches_two_singles(receptor, beads_pair):
    small, big = beads_pair
    pack = pack_ligands([small, big])
    plan = pack.plan(3)
    rng = np.random.default_rng(19)
    conf = np.zeros(6, dtype=int)
    trans = rng.uniform(-3, 3, size=(6, 3))
    quat = rng.normal(size=(6, 4))
    tors = rng.uniform(-0.5, 0.5, size=(6, pack.max_torsions))
    fused = packed_score_batch(
        receptor, pack, plan, conf, trans, quat, tors
    )
    for li, beads in enumerate((small, big)):
        sub = slice(li * 3, (li + 1) * 3)
        single = pack_ligands([beads])
        solo = packed_score_batch(
            receptor,
            single,
            single.plan(3),
            conf[sub],
            trans[sub],
            quat[sub],
            tors[sub, : beads.n_torsions] if beads.n_torsions else None,
        )
        np.testing.assert_array_equal(fused[sub], solo)
