"""Tests for the batch docking engine (S1 public API)."""

import numpy as np
import pytest

from repro.chem.library import generate_library
from repro.docking.engine import DockingEngine
from repro.docking.lga import LGAConfig
from repro.docking.receptor import make_receptor

FAST = LGAConfig(population=8, generations=3)


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("PLPro", "6W9C", seed=7)


@pytest.fixture(scope="module")
def library():
    return generate_library(8, seed=13)


@pytest.fixture(scope="module")
def results(receptor, library):
    return DockingEngine(receptor, seed=0, config=FAST).dock_library(library)


def test_results_cover_library(results, library):
    assert len(results) == len(library)
    assert [r.compound_id for r in results] == [e.compound_id for e in library]


def test_scores_finite_and_varied(results):
    scores = np.array([r.score for r in results])
    assert np.isfinite(scores).all()
    assert scores.std() > 0  # different molecules dock differently


def test_docking_independent_of_batch_composition(receptor, library):
    """Per-compound RNG streams: docking alone == docking within a batch."""
    eng = DockingEngine(receptor, seed=0, config=FAST)
    solo = eng.dock_smiles(library[3].smiles, library[3].compound_id)
    batch = DockingEngine(receptor, seed=0, config=FAST).dock_library(library)
    assert solo.score == batch[3].score


def test_limit(receptor, library):
    out = DockingEngine(receptor, seed=0, config=FAST).dock_library(library, limit=3)
    assert len(out) == 3


def test_engine_accumulates_accounting(receptor, library):
    eng = DockingEngine(receptor, seed=0, config=FAST)
    eng.dock_library(library, limit=4)
    assert eng.total_ligands == 4
    assert eng.total_evals > 0


def test_rank_sorted(results):
    ranked = DockingEngine.rank(results)
    scores = [r.score for r in ranked]
    assert scores == sorted(scores)


def test_top_fraction(results):
    top = DockingEngine.top_fraction(results, 0.25)
    assert len(top) == 2
    assert top[0].score <= top[1].score
    all_scores = sorted(r.score for r in results)
    assert top[-1].score <= all_scores[2]


def test_top_fraction_validates():
    with pytest.raises(ValueError):
        DockingEngine.top_fraction([], 0.0)
    with pytest.raises(ValueError):
        DockingEngine.top_fraction([], 1.5)


def test_top_fraction_minimum_one(results):
    assert len(DockingEngine.top_fraction(results, 0.01)) == 1


def test_different_receptor_variants_give_different_scores(library):
    a = DockingEngine(make_receptor("PLPro", "6W9C", seed=7), seed=0, config=FAST)
    b = DockingEngine(make_receptor("PLPro", "6WX4", seed=7), seed=0, config=FAST)
    sa = a.dock_smiles(library[0].smiles, library[0].compound_id).score
    sb = b.dock_smiles(library[0].smiles, library[0].compound_id).score
    assert sa != sb
