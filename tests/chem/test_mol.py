"""Tests for the molecular graph model."""

import pytest

from repro.chem.mol import Atom, Bond, Molecule


def _ethanol() -> Molecule:
    m = Molecule()
    m.add_atom(Atom("C"))
    m.add_atom(Atom("C"))
    m.add_atom(Atom("O"))
    m.add_bond(0, 1)
    m.add_bond(1, 2)
    return m


def test_add_atom_assigns_indices():
    m = _ethanol()
    assert [a.index for a in m.atoms] == [0, 1, 2]


def test_implicit_hydrogens_ethanol():
    m = _ethanol()
    assert m.implicit_hydrogens(0) == 3
    assert m.implicit_hydrogens(1) == 2
    assert m.implicit_hydrogens(2) == 1
    assert m.total_hydrogens() == 6


def test_double_bond_valence():
    m = Molecule()
    m.add_atom(Atom("C"))
    m.add_atom(Atom("O"))
    m.add_bond(0, 1, order=2)
    assert m.implicit_hydrogens(0) == 2  # formaldehyde
    assert m.implicit_hydrogens(1) == 0


def test_charged_nitrogen_gains_valence():
    m = Molecule()
    m.add_atom(Atom("N", charge=1))
    assert m.implicit_hydrogens(0) == 4  # ammonium


def test_charged_oxygen_anion_loses_valence():
    m = Molecule()
    m.add_atom(Atom("O", charge=-1))
    m.add_atom(Atom("C"))
    m.add_bond(0, 1)
    assert m.implicit_hydrogens(0) == 0  # alkoxide


def test_bond_to_missing_atom_raises():
    m = Molecule()
    m.add_atom(Atom("C"))
    with pytest.raises(IndexError):
        m.add_bond(0, 5)


def test_self_bond_raises():
    m = Molecule()
    m.add_atom(Atom("C"))
    with pytest.raises(ValueError):
        m.add_bond(0, 0)


def test_duplicate_bond_raises():
    m = _ethanol()
    with pytest.raises(ValueError):
        m.add_bond(0, 1)


def test_bad_bond_order_raises():
    m = _ethanol()
    with pytest.raises(ValueError):
        m.add_bond(0, 2, order=4)


def test_overvalent_validation():
    m = Molecule()
    m.add_atom(Atom("O"))
    for _ in range(3):
        j = m.add_atom(Atom("C"))
        m.add_bond(0, j)
    with pytest.raises(ValueError, match="over-valent"):
        m.validate()


def test_aromatic_atom_outside_ring_rejected():
    m = Molecule()
    m.add_atom(Atom("C", aromatic=True))
    m.add_atom(Atom("C"))
    m.add_bond(0, 1)
    with pytest.raises(ValueError, match="not in a ring"):
        m.validate()


def test_aromatic_halogen_rejected():
    m = Molecule()
    for _ in range(6):
        m.add_atom(Atom("F", aromatic=True))
    for i in range(6):
        m.add_bond(i, (i + 1) % 6, aromatic=True)
    with pytest.raises(ValueError):
        m.validate()


def test_benzene_ring_detection_and_hydrogens():
    m = Molecule()
    for _ in range(6):
        m.add_atom(Atom("C", aromatic=True))
    for i in range(6):
        m.add_bond(i, (i + 1) % 6, order=1, aromatic=True)
    m.validate()
    assert len(m.rings()) == 1
    assert m.total_hydrogens() == 6


def test_fused_ring_fusion_atom_hydrogens():
    # naphthalene skeleton: fusion atoms carry three aromatic bonds, 0 H
    m = Molecule()
    for _ in range(10):
        m.add_atom(Atom("C", aromatic=True))
    ring1 = [0, 1, 2, 3, 4, 5]
    for i in range(6):
        m.add_bond(ring1[i], ring1[(i + 1) % 6], aromatic=True)
    ring2 = [4, 6, 7, 8, 9, 3]
    for i in range(5):
        m.add_bond(ring2[i], ring2[i + 1], aromatic=True)
    m.validate()
    assert m.implicit_hydrogens(3) == 0
    assert m.implicit_hydrogens(4) == 0
    assert m.total_hydrogens() == 8


def test_neighbors_and_degree():
    m = _ethanol()
    assert set(m.neighbors(1)) == {0, 2}
    assert m.degree(1) == 2
    assert m.degree(0) == 1


def test_bond_other_raises_for_foreign_atom():
    b = Bond(0, 1)
    with pytest.raises(ValueError):
        b.other(5)


def test_connectivity():
    m = _ethanol()
    assert m.is_connected()
    m.add_atom(Atom("C"))  # stray atom
    assert not m.is_connected()


def test_adjacency_cache_invalidated_on_mutation():
    m = _ethanol()
    assert m.degree(2) == 1
    j = m.add_atom(Atom("C"))
    m.add_bond(2, j)
    assert m.degree(2) == 2
