"""Tests for 3D conformer embedding."""

import numpy as np

from repro.chem.embed3d import BOND_LENGTH, conformer_stress, embed_conformer
from repro.chem.smiles import parse_smiles
from repro.util.rng import rng_stream


def test_embedding_shape_and_centering():
    mol = parse_smiles("c1ccccc1CCO")
    pos = embed_conformer(mol, rng_stream(0, "t/embed"))
    assert pos.shape == (mol.n_atoms, 3)
    np.testing.assert_allclose(pos.mean(axis=0), 0.0, atol=1e-8)


def test_bonded_atoms_near_bond_length():
    mol = parse_smiles("CCCCCC")
    pos = embed_conformer(mol, rng_stream(1, "t/embed"))
    for bond in mol.bonds:
        d = np.linalg.norm(pos[bond.a] - pos[bond.b])
        assert abs(d - BOND_LENGTH) < 0.6


def test_nonbonded_atoms_separated():
    mol = parse_smiles("CCCCCC")
    pos = embed_conformer(mol, rng_stream(2, "t/embed"))
    n = mol.n_atoms
    for i in range(n):
        for j in range(i + 1, n):
            assert np.linalg.norm(pos[i] - pos[j]) > 0.5


def test_different_draws_give_different_conformers():
    mol = parse_smiles("CCCCCCCC")
    rng = rng_stream(3, "t/embed")
    a = embed_conformer(mol, rng)
    b = embed_conformer(mol, rng)
    assert not np.allclose(a, b)


def test_same_stream_reproducible():
    mol = parse_smiles("CCO")
    a = embed_conformer(mol, rng_stream(4, "t/embed"))
    b = embed_conformer(mol, rng_stream(4, "t/embed"))
    np.testing.assert_array_equal(a, b)


def test_single_atom():
    pos = embed_conformer(parse_smiles("C"), rng_stream(5, "t/embed"))
    assert pos.shape == (1, 3)


def test_stress_is_low_after_refinement():
    mol = parse_smiles("c1ccccc1CC(=O)O")
    pos = embed_conformer(mol, rng_stream(6, "t/embed"))
    assert conformer_stress(mol, pos) < 0.35


def test_stress_high_for_random_coords():
    mol = parse_smiles("c1ccccc1CC(=O)O")
    bad = rng_stream(7, "t/embed").normal(size=(mol.n_atoms, 3)) * 10
    good = embed_conformer(mol, rng_stream(8, "t/embed"))
    assert conformer_stress(mol, bad) > conformer_stress(mol, good)
