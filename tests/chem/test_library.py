"""Tests for synthetic library generation and shard I/O."""

import numpy as np
import pytest

from repro.chem.library import (
    CompoundLibrary,
    LibraryEntry,
    generate_library,
    library_overlap,
    stream_library,
    write_library_shards,
)
from repro.chem.smiles import canonical_smiles, parse_smiles
from repro.util.shardio import shard_format


@pytest.fixture(scope="module")
def lib():
    return generate_library(60, seed=11, name="OZD")


def test_generation_counts_and_ids(lib):
    assert len(lib) == 60
    ids = [e.compound_id for e in lib]
    assert len(set(ids)) == 60


def test_all_members_parse_and_validate(lib):
    for i in range(len(lib)):
        mol = lib.molecule(i)
        mol.validate()
        assert mol.is_connected()


def test_library_unique_by_canonical_smiles(lib):
    canon = {canonical_smiles(s) for s in lib.smiles()}
    assert len(canon) == len(lib)


def test_generation_deterministic():
    a = generate_library(20, seed=5)
    b = generate_library(20, seed=5)
    assert a.smiles() == b.smiles()


def test_different_seeds_differ():
    a = generate_library(20, seed=5)
    b = generate_library(20, seed=6)
    assert a.smiles() != b.smiles()


def test_shared_fraction_produces_overlap():
    ozd = generate_library(40, seed=1, name="OZD", shared_fraction=0.3, shared_seed=99)
    ord_ = generate_library(40, seed=2, name="ORD", shared_fraction=0.3, shared_seed=99)
    overlap = library_overlap(ozd, ord_)
    # ~12 shared molecules expected; dedup against own stream may drop a few
    assert overlap >= 8


def test_no_shared_seed_means_near_zero_overlap():
    a = generate_library(30, seed=1, name="A")
    b = generate_library(30, seed=2, name="B")
    assert library_overlap(a, b) <= 3


def test_shared_fraction_validation():
    with pytest.raises(ValueError):
        generate_library(10, seed=1, shared_fraction=1.5, shared_seed=1)


def test_subset(lib):
    sub = lib.subset([0, 5, 9], name="mini")
    assert len(sub) == 3
    assert sub[1].smiles == lib[5].smiles
    assert sub.name == "mini"


def test_fingerprints_cached_and_shaped(lib):
    fps = lib.fingerprints(n_bits=512)
    assert fps.shape == (60, 512)
    assert lib.fingerprints(n_bits=512) is fps  # cached
    fps2 = lib.fingerprints(n_bits=256)
    assert fps2.shape == (60, 256)  # cache rebuilt on width change


def test_descriptors_cached(lib):
    d = lib.descriptors(0)
    assert lib.descriptors(0) is d


def test_druglike_property_distribution(lib):
    """Generated compounds should mostly sit in drug-like property space."""
    mws = [lib.descriptors(i).molecular_weight for i in range(len(lib))]
    assert 80 < np.median(mws) < 500
    violations = [lib.descriptors(i).lipinski_violations() for i in range(len(lib))]
    assert np.mean(violations) < 1.0


def test_shard_roundtrip(tmp_path, lib):
    paths = lib.to_shards(tmp_path, shard_size=25)
    assert len(paths) == 3  # 60 / 25 → 25+25+10
    back = CompoundLibrary.from_shards(paths, name="restored")
    assert back.smiles() == lib.smiles()
    assert [e.compound_id for e in back] == [e.compound_id for e in lib]


def test_shards_are_gzip(tmp_path, lib):
    paths = lib.to_shards(tmp_path, shard_size=30)
    with open(paths[0], "rb") as fh:
        assert fh.read(2) == b"\x1f\x8b"  # gzip magic


def test_entry_is_frozen(lib):
    with pytest.raises(AttributeError):
        lib[0].smiles = "C"


def test_stream_library_equals_generate(lib):
    """The streaming contract: shard-by-shard generation draws the same
    RNG sequence as the materialized path, so the entries are identical
    — ids, SMILES, order — whatever the shard size."""
    for shard_size in (7, 25, 60, 100):
        shards = list(stream_library(60, seed=11, name="OZD", shard_size=shard_size))
        assert [len(s) for s in shards[:-1]] == [shard_size] * (len(shards) - 1)
        flat = [e for s in shards for e in s]
        assert flat == lib.entries


def test_stream_library_shared_fraction_matches():
    lib = generate_library(30, seed=3, name="X", shared_fraction=0.3, shared_seed=7)
    flat = [
        e
        for s in stream_library(
            30, seed=3, name="X", shard_size=8, shared_fraction=0.3, shared_seed=7
        )
        for e in s
    ]
    assert flat == lib.entries


def test_write_library_shards_roundtrip(tmp_path, lib):
    paths = write_library_shards(tmp_path, 60, seed=11, name="OZD", shard_size=25)
    assert len(paths) == 3
    assert all(shard_format(p) == "ndjson" for p in paths)
    back = CompoundLibrary.from_shards(paths, name="OZD")
    assert back.entries == lib.entries


def test_to_shards_ndjson_format_reads_back(tmp_path, lib):
    nd = lib.to_shards(tmp_path / "nd", shard_size=20, format="ndjson")
    pk = lib.to_shards(tmp_path / "pk", shard_size=20, format="pickle")
    assert CompoundLibrary.from_shards(nd, name="OZD").entries == lib.entries
    assert CompoundLibrary.from_shards(pk, name="OZD").entries == lib.entries
