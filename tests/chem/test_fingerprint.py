"""Tests for circular fingerprints and diversity selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.fingerprint import (
    bulk_tanimoto,
    diversity_pick,
    morgan_fingerprint,
    tanimoto,
)
from repro.chem.library import _random_molecule
from repro.chem.smiles import parse_smiles
from repro.util.rng import rng_stream


def test_fingerprint_deterministic():
    mol = parse_smiles("c1ccccc1C(=O)O")
    a = morgan_fingerprint(mol)
    b = morgan_fingerprint(mol)
    np.testing.assert_array_equal(a, b)


def test_fingerprint_shape_and_dtype():
    fp = morgan_fingerprint(parse_smiles("CCO"), n_bits=256)
    assert fp.shape == (256,)
    assert fp.dtype == np.uint8
    assert set(np.unique(fp)) <= {0, 1}


def test_count_fingerprint():
    fp = morgan_fingerprint(parse_smiles("CCCCCC"), counts=True)
    assert fp.dtype == np.float32
    assert fp.max() >= 2  # repeated CH2 environments collide into counts


def test_identical_molecules_unit_similarity():
    a = morgan_fingerprint(parse_smiles("c1ccncc1"))
    b = morgan_fingerprint(parse_smiles("c1ccncc1"))
    assert tanimoto(a, b) == 1.0


def test_different_molecules_lower_similarity():
    a = morgan_fingerprint(parse_smiles("c1ccccc1"))
    b = morgan_fingerprint(parse_smiles("CC(=O)[O-]"))
    assert tanimoto(a, b) < 0.5


def test_similar_molecules_more_similar_than_dissimilar():
    benzene = morgan_fingerprint(parse_smiles("c1ccccc1"))
    toluene = morgan_fingerprint(parse_smiles("Cc1ccccc1"))
    hexane = morgan_fingerprint(parse_smiles("CCCCCC"))
    assert tanimoto(benzene, toluene) > tanimoto(benzene, hexane)


def test_radius_zero_still_sets_bits():
    fp = morgan_fingerprint(parse_smiles("CCO"), radius=0)
    assert fp.sum() > 0


def test_negative_radius_rejected():
    with pytest.raises(ValueError):
        morgan_fingerprint(parse_smiles("C"), radius=-1)


def test_bulk_tanimoto_matches_scalar():
    mols = [parse_smiles(s) for s in ["CCO", "c1ccccc1", "CC(=O)O", "CCN"]]
    fps = np.stack([morgan_fingerprint(m) for m in mols])
    bulk = bulk_tanimoto(fps[0], fps)
    for i in range(len(mols)):
        assert bulk[i] == pytest.approx(tanimoto(fps[0], fps[i]))


def test_diversity_pick_properties():
    rng = rng_stream(0, "test/divpick")
    mols = [_random_molecule(rng) for _ in range(40)]
    fps = np.stack([morgan_fingerprint(m) for m in mols])
    picks = diversity_pick(fps, 10)
    assert len(picks) == 10
    assert len(set(picks)) == 10
    # k >= n returns everything
    assert diversity_pick(fps, 100) == list(range(40))
    assert diversity_pick(fps, 0) == []


def test_diversity_pick_spreads_more_than_prefix():
    """MaxMin picks should be mutually less similar than the first-k prefix."""
    rng = rng_stream(1, "test/divpick2")
    mols = [_random_molecule(rng) for _ in range(60)]
    fps = np.stack([morgan_fingerprint(m) for m in mols])

    def mean_pairwise_sim(indices):
        sims = [
            tanimoto(fps[i], fps[j])
            for k, i in enumerate(indices)
            for j in indices[k + 1 :]
        ]
        return np.mean(sims)

    picked = diversity_pick(fps, 12)
    assert mean_pairwise_sim(picked) <= mean_pairwise_sim(list(range(12))) + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=0, max_value=5_000),
)
def test_tanimoto_bounds_and_symmetry(seed_a, seed_b):
    fa = morgan_fingerprint(_random_molecule(rng_stream(seed_a, "t/fpa")))
    fb = morgan_fingerprint(_random_molecule(rng_stream(seed_b, "t/fpb")))
    s = tanimoto(fa, fb)
    assert 0.0 <= s <= 1.0
    assert s == pytest.approx(tanimoto(fb, fa))
