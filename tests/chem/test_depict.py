"""Tests for 2D layout and raster depiction."""

import numpy as np

from repro.chem.depict import N_CHANNELS, depict, layout_2d
from repro.chem.smiles import parse_smiles


def test_layout_deterministic():
    mol = parse_smiles("c1ccccc1CCO")
    a = layout_2d(mol)
    b = layout_2d(mol)
    np.testing.assert_array_equal(a, b)


def test_layout_centered():
    pos = layout_2d(parse_smiles("CCCCC"))
    np.testing.assert_allclose(pos.mean(axis=0), 0.0, atol=1e-8)


def test_layout_bond_lengths_near_unit():
    mol = parse_smiles("CCCCCC")
    pos = layout_2d(mol)
    for bond in mol.bonds:
        d = np.linalg.norm(pos[bond.a] - pos[bond.b])
        assert 0.5 < d < 2.0


def test_layout_single_atom():
    pos = layout_2d(parse_smiles("C"))
    assert pos.shape == (1, 2)


def test_depict_shape_and_range():
    img = depict(parse_smiles("c1ccccc1C(=O)O"), size=32)
    assert img.shape == (N_CHANNELS, 32, 32)
    assert img.dtype == np.float32
    assert img.min() >= 0.0
    assert img.max() <= 1.0
    assert img.max() > 0.1  # something was drawn


def test_depict_channels_reflect_composition():
    # pure hydrocarbon: N and O channels empty
    img = depict(parse_smiles("CCCCCC"))
    assert img[1].max() == 0.0  # N channel
    assert img[2].max() == 0.0  # O channel
    assert img[0].max() > 0.0  # C channel

    img2 = depict(parse_smiles("c1ccncc1"))
    assert img2[1].max() > 0.0  # N present
    assert img2[4].max() > 0.0  # aromatic channel


def test_depict_bond_channel_connects_atoms():
    img = depict(parse_smiles("CC"))
    assert img[6].sum() > 0.0


def test_depict_distinguishes_molecules():
    a = depict(parse_smiles("c1ccccc1"))
    b = depict(parse_smiles("CCCCCC"))
    assert not np.allclose(a, b)


def test_depict_size_parameter():
    img = depict(parse_smiles("CCO"), size=16)
    assert img.shape == (N_CHANNELS, 16, 16)
