"""Tests for the SMILES parser, writer and canonicalizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.library import _random_molecule
from repro.chem.smiles import (
    SmilesError,
    canonical_smiles,
    parse_smiles,
    write_smiles,
)
from repro.util.rng import rng_stream


# ------------------------------------------------------------------ parsing


@pytest.mark.parametrize(
    "smiles, n_atoms, n_h",
    [
        ("C", 1, 4),  # methane
        ("CC", 2, 6),  # ethane
        ("C=C", 2, 4),  # ethene
        ("C#C", 2, 2),  # ethyne
        ("CO", 2, 4),  # methanol
        ("C(=O)O", 3, 2),  # formic acid
        ("c1ccccc1", 6, 6),  # benzene
        ("c1ccncc1", 6, 5),  # pyridine
        ("c1ccoc1", 5, 4),  # furan
        ("c1ccsc1", 5, 4),  # thiophene
        ("C1CCCCC1", 6, 12),  # cyclohexane
        ("CCl", 2, 3),
        ("CBr", 2, 3),
        ("C(F)(F)F", 4, 1),
        ("C#N", 2, 1),  # hydrogen cyanide
        ("c1ccc2ccccc2c1", 10, 8),  # naphthalene
    ],
)
def test_parse_known_molecules(smiles, n_atoms, n_h):
    mol = parse_smiles(smiles)
    assert mol.n_atoms == n_atoms
    assert mol.total_hydrogens() == n_h


def test_parse_bracket_charges():
    mol = parse_smiles("C[N+](C)(C)C")  # tetramethylammonium
    n = [a for a in mol.atoms if a.symbol == "N"][0]
    assert n.charge == 1
    assert mol.implicit_hydrogens(n.index) == 0

    mol2 = parse_smiles("CC(=O)[O-]")  # acetate
    o = [a for a in mol2.atoms if a.charge == -1][0]
    assert mol2.implicit_hydrogens(o.index) == 0


def test_parse_explicit_bond_in_ring_closure():
    mol = parse_smiles("C1CC=1")  # cyclopropene via closure bond order
    orders = sorted(b.order for b in mol.bonds)
    assert orders == [1, 1, 2]


def test_parse_branches():
    mol = parse_smiles("CC(C)(C)C")  # neopentane
    center = [a.index for a in mol.atoms if mol.degree(a.index) == 4]
    assert len(center) == 1


def test_parse_percent_ring_closure():
    mol = parse_smiles("C%11CCCCC%11")
    assert len(mol.rings()) == 1


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "C(",
        "C)",
        "C1CC",  # unclosed ring
        "C==C",
        "C.C",  # multi-fragment unsupported
        "C/C=C/C",  # stereo unsupported
        "[C@H](N)C",  # chirality unsupported
        "1CC1",  # ring digit before atom
        "(CC)",  # branch before atom
        "C=",  # dangling bond
        "Xx",  # unknown element
        "[Zz]",
        "c1ccccc1c",  # aromatic atom outside ring
    ],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises((SmilesError, ValueError, KeyError)):
        parse_smiles(bad)


def test_error_reports_position():
    with pytest.raises(SmilesError) as exc:
        parse_smiles("CC(C")
    assert "position" in str(exc.value)


# ------------------------------------------------------------------ writing


@pytest.mark.parametrize(
    "smiles",
    [
        "C",
        "CCO",
        "c1ccccc1",
        "c1ccc2ccccc2c1",
        "CC(=O)[O-]",
        "C[N+](C)(C)C",
        "c1ccccc1C(=O)O",
        "C1CC2CCC1CC2",  # bicyclic bridged
        "c1ccc(cc1)c1ccccc1",  # biphenyl (reused digit)
        "N#Cc1ccccc1",
    ],
)
def test_roundtrip_preserves_canonical_form(smiles):
    mol = parse_smiles(smiles)
    out = write_smiles(mol)
    mol2 = parse_smiles(out)
    assert canonical_smiles(mol) == canonical_smiles(mol2)
    assert mol.n_atoms == mol2.n_atoms
    assert mol.n_bonds == mol2.n_bonds
    assert mol.total_hydrogens() == mol2.total_hydrogens()


def test_write_empty_molecule_raises():
    from repro.chem.mol import Molecule

    with pytest.raises(ValueError):
        write_smiles(Molecule())


def test_write_disconnected_raises():
    from repro.chem.mol import Atom, Molecule

    m = Molecule()
    m.add_atom(Atom("C"))
    m.add_atom(Atom("C"))
    with pytest.raises(ValueError):
        write_smiles(m)


# ---------------------------------------------------------------- canonical


def test_canonical_independent_of_input_order():
    # same molecule written three ways
    variants = ["OC(=O)c1ccccc1", "c1ccccc1C(=O)O", "c1ccc(C(O)=O)cc1"]
    forms = {canonical_smiles(v) for v in variants}
    assert len(forms) == 1


def test_canonical_distinguishes_isomers():
    assert canonical_smiles("CCO") != canonical_smiles("COC")
    assert canonical_smiles("c1ccncc1") != canonical_smiles("c1ccccc1")


def test_canonical_idempotent():
    c = canonical_smiles("c1ccc2ccccc2c1")
    assert canonical_smiles(c) == c


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_molecule_roundtrip_property(seed):
    """Any generator output parses, writes, re-parses to the same canonical form."""
    mol = _random_molecule(rng_stream(seed, "test/molgen"))
    smi = write_smiles(mol)
    mol2 = parse_smiles(smi)
    assert canonical_smiles(mol) == canonical_smiles(mol2)
    assert mol.total_hydrogens() == mol2.total_hydrogens()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_canonical_invariant_under_relabeling(seed):
    """Canonical SMILES must not depend on atom numbering."""
    import numpy as np

    from repro.chem.mol import Atom, Molecule

    mol = _random_molecule(rng_stream(seed, "test/molgen2"))
    perm = rng_stream(seed, "test/perm").permutation(mol.n_atoms)
    inv = np.argsort(perm)
    shuffled = Molecule()
    for new_idx in range(mol.n_atoms):
        old = mol.atoms[int(inv[new_idx])]
        shuffled.add_atom(Atom(old.symbol, old.charge, old.aromatic))
    for bond in mol.bonds:
        shuffled.add_bond(
            int(perm[bond.a]), int(perm[bond.b]), bond.order, bond.aromatic
        )
    assert canonical_smiles(shuffled) == canonical_smiles(mol)


def test_writer_two_digit_ring_closures():
    """A dense 4-regular carbon cage forces >9 simultaneous ring
    closures, exercising the %nn writer path."""
    from repro.chem.mol import Atom, Molecule

    n = 12
    mol = Molecule()
    for _ in range(n):
        mol.add_atom(Atom("C"))
    for i in range(n):
        for step in (1, 2):  # circulant C12(1,2): 4-regular
            j = (i + step) % n
            if mol.bond_between(i, j) is None:
                mol.add_bond(i, j)
    mol.validate()
    smi = write_smiles(mol)
    assert "%1" in smi  # two-digit closures were needed
    back = parse_smiles(smi)
    assert back.n_atoms == n
    assert back.n_bonds == mol.n_bonds
    assert canonical_smiles(back) == canonical_smiles(mol)
