"""Tests for molecular descriptors and partial charges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.descriptors import compute_descriptors, partial_charges
from repro.chem.library import _random_molecule
from repro.chem.smiles import parse_smiles
from repro.util.rng import rng_stream


def test_molecular_weight_benzene():
    d = compute_descriptors(parse_smiles("c1ccccc1"))
    assert d.molecular_weight == pytest.approx(78.11, abs=0.1)


def test_molecular_weight_ethanol():
    d = compute_descriptors(parse_smiles("CCO"))
    assert d.molecular_weight == pytest.approx(46.07, abs=0.05)


def test_hbd_hba_counting():
    # benzoic acid: OH donor; two oxygens accept
    d = compute_descriptors(parse_smiles("OC(=O)c1ccccc1"))
    assert d.hbd == 1
    assert d.hba == 2
    # aniline: NH2 donor + acceptor
    d2 = compute_descriptors(parse_smiles("Nc1ccccc1"))
    assert d2.hbd == 1
    assert d2.hba == 1


def test_ring_counts():
    d = compute_descriptors(parse_smiles("c1ccc2ccccc2c1"))
    assert d.rings == 2
    assert d.aromatic_rings == 2
    d2 = compute_descriptors(parse_smiles("C1CCCCC1"))
    assert d2.rings == 1
    assert d2.aromatic_rings == 0


def test_rotatable_bonds():
    # butane has one rotatable (central) bond
    assert compute_descriptors(parse_smiles("CCCC")).rotatable_bonds == 1
    # biphenyl: the inter-ring bond rotates
    assert compute_descriptors(parse_smiles("c1ccc(cc1)c1ccccc1")).rotatable_bonds == 1
    # benzene: none
    assert compute_descriptors(parse_smiles("c1ccccc1")).rotatable_bonds == 0


def test_logp_orders_hydrophobicity():
    hexane = compute_descriptors(parse_smiles("CCCCCC")).logp
    glycol = compute_descriptors(parse_smiles("OCCO")).logp
    assert hexane > glycol


def test_tpsa_zero_for_hydrocarbon():
    assert compute_descriptors(parse_smiles("CCCC")).tpsa == 0.0
    assert compute_descriptors(parse_smiles("CCO")).tpsa > 0.0


def test_formal_charge():
    assert compute_descriptors(parse_smiles("CC(=O)[O-]")).formal_charge == -1
    assert compute_descriptors(parse_smiles("C[N+](C)(C)C")).formal_charge == 1


def test_as_vector_shape_and_order():
    d = compute_descriptors(parse_smiles("CCO"))
    v = d.as_vector()
    assert v.shape == (10,)
    assert v[0] == pytest.approx(d.molecular_weight)
    assert v[-1] == d.formal_charge


def test_lipinski_violations():
    small = compute_descriptors(parse_smiles("CCO"))
    assert small.lipinski_violations() == 0


def test_partial_charges_sum_to_formal_charge():
    for smi in ["CCO", "CC(=O)[O-]", "C[N+](C)(C)C", "c1ccncc1"]:
        mol = parse_smiles(smi)
        q = partial_charges(mol)
        assert q.sum() == pytest.approx(sum(a.charge for a in mol.atoms), abs=1e-9)


def test_partial_charges_polarity_direction():
    mol = parse_smiles("CO")  # methanol: O more electronegative than C
    q = partial_charges(mol)
    o_idx = [a.index for a in mol.atoms if a.symbol == "O"][0]
    c_idx = [a.index for a in mol.atoms if a.symbol == "C"][0]
    assert q[o_idx] < q[c_idx]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_descriptor_invariants_property(seed):
    mol = _random_molecule(rng_stream(seed, "test/desc"))
    d = compute_descriptors(mol)
    assert d.molecular_weight > 0
    assert d.heavy_atoms == mol.n_atoms
    assert 0 <= d.aromatic_rings <= d.rings
    assert d.hbd <= d.hba  # donors are N/O with H; acceptors all N/O
    assert np.isfinite(d.as_vector()).all()
