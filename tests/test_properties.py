"""Cross-module property-based tests (hypothesis).

Invariants that should hold for *any* input in the domain, not just the
fixtures the unit tests pin down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.fingerprint import morgan_fingerprint, tanimoto
from repro.chem.library import _random_molecule
from repro.util.rng import rng_stream


# ---------------------------------------------------------------- chemistry


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=3000),
    st.integers(min_value=0, max_value=3000),
    st.integers(min_value=0, max_value=3000),
)
def test_jaccard_distance_triangle_inequality(sa, sb, sc):
    """1 − Tanimoto is a metric: d(a,c) ≤ d(a,b) + d(b,c)."""
    fa = morgan_fingerprint(_random_molecule(rng_stream(sa, "prop/fa")))
    fb = morgan_fingerprint(_random_molecule(rng_stream(sb, "prop/fb")))
    fc = morgan_fingerprint(_random_molecule(rng_stream(sc, "prop/fc")))
    dab = 1 - tanimoto(fa, fb)
    dbc = 1 - tanimoto(fb, fc)
    dac = 1 - tanimoto(fa, fc)
    assert dac <= dab + dbc + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=5000))
def test_depiction_bounded_for_any_molecule(seed):
    from repro.chem.depict import depict

    mol = _random_molecule(rng_stream(seed, "prop/depict"))
    img = depict(mol, size=20)
    assert img.min() >= 0.0 and img.max() <= 1.0
    assert np.isfinite(img).all()


# ------------------------------------------------------------------ docking


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2000))
def test_docking_score_finite_for_any_ligand(seed):
    from repro.docking.ligand import Pose, prepare_ligand, random_quaternion
    from repro.docking.receptor import make_receptor
    from repro.docking.scoring import score_pose

    receptor = make_receptor("3CLPro", seed=3)
    mol = _random_molecule(rng_stream(seed, "prop/dock"))
    rng = rng_stream(seed, "prop/dockpose")
    beads = prepare_ligand(mol, rng, n_conformers=2)
    pose = Pose(0, rng.uniform(-10, 10, size=3), random_quaternion(rng))
    breakdown = score_pose(receptor, beads, pose)
    assert np.isfinite(breakdown.total)


# ----------------------------------------------------------------------- MD


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=5, max_value=25), st.integers(min_value=0, max_value=999))
def test_forces_are_negative_gradient_property(n, seed):
    from repro.md.forcefield import ForceField
    from repro.md.system import Topology

    rng = rng_stream(seed, "prop/md")
    bonds = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    topo = Topology(
        masses=np.full(n, 20.0),
        charges=rng.normal(scale=0.2, size=n),
        hydro=rng.uniform(-0.5, 0.5, size=n),
        radii=rng.uniform(1.5, 2.5, size=n),
        bonds=bonds,
        bond_lengths=np.full(n - 1, 3.0),
        bond_k=np.full(n - 1, 5.0),
        protein_atoms=np.arange(n - 1),
        ligand_atoms=np.array([n - 1]),
    )
    ff = ForceField()
    pos = rng.normal(scale=5.0, size=(n, 3))
    f, _ = ff.compute(topo, pos)
    idx = int(rng.integers(n))
    ax = int(rng.integers(3))
    eps = 1e-6
    p = pos.copy()
    p[idx, ax] += eps
    _, eu = ff.compute(topo, p)
    p[idx, ax] -= 2 * eps
    _, ed = ff.compute(topo, p)
    num = -(eu.total - ed.total) / (2 * eps)
    assert f[idx, ax] == pytest.approx(num, rel=1e-3, abs=1e-6)


# ------------------------------------------------------------------- raptor


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=5, max_size=200),
    st.integers(min_value=1, max_value=32),
)
def test_raptor_invariants(durations, workers):
    from repro.rct.raptor import RaptorConfig, simulate_raptor

    cfg = RaptorConfig(n_workers=workers, n_masters=1, bulk_size=4, dispatch_overhead=0.01)
    res = simulate_raptor(durations, cfg)
    # work conservation
    assert res.worker_busy.sum() == pytest.approx(sum(durations), rel=1e-9)
    # makespan bounded below by the ideal and by the longest item
    assert res.makespan >= max(durations) - 1e-9
    assert res.makespan >= sum(durations) / workers - 1e-9
    assert res.n_items == len(durations)


# --------------------------------------------------------------------- stats


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=999))
def test_bootstrap_sem_shrinks_with_sample_size(seed):
    from repro.esmacs.analysis import bootstrap_sem

    rng = rng_stream(seed, "prop/boot")
    small = rng.normal(size=20)
    large = np.concatenate([small, rng.normal(size=380)])
    sem_small = bootstrap_sem(small, rng_stream(seed, "prop/b1"), n_boot=300)
    sem_large = bootstrap_sem(large, rng_stream(seed, "prop/b2"), n_boot=300)
    assert sem_large < sem_small * 1.5  # usually much smaller; noise-tolerant


# ----------------------------------------------------------------------- nn


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=999),
)
def test_compiled_fp32_matches_graph_for_random_mlps(n_in, n_hidden, seed):
    from repro.nn.autograd import Tensor, no_grad
    from repro.nn.inference import compile_model
    from repro.nn.layers import Dense, ReLU, Sequential, Tanh

    rng = np.random.default_rng(seed)
    model = Sequential(
        Dense(n_in, n_hidden, rng), Tanh(), Dense(n_hidden, n_hidden, rng),
        ReLU(), Dense(n_hidden, 1, rng),
    )
    model.eval()
    x = rng.normal(size=(4, n_in))
    with no_grad():
        ref = model(Tensor(x)).data
    out = compile_model(model, "fp32")(x)
    np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)


# --------------------------------------------------------------- enrichment


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=999))
def test_perfect_predictor_dominates_noisy_everywhere(seed):
    from repro.surrogate.res import res_surface

    rng = rng_stream(seed, "prop/res")
    y = rng.normal(size=150)
    noisy = y + rng.normal(scale=2.0, size=150)
    perfect = res_surface(y, y.copy(), n_budget=4, n_top=3).surface
    imperfect = res_surface(y, noisy, n_budget=4, n_top=3).surface
    assert (perfect >= imperfect - 1e-12).all()
