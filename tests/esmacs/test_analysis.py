"""Tests for ensemble statistics and ranking reliability."""

import numpy as np
import pytest

from repro.esmacs.analysis import (
    bootstrap_sem,
    confidence_interval,
    ranking_correlation,
    repeat_reliability,
)
from repro.util.rng import rng_stream


def test_bootstrap_sem_matches_analytic():
    rng = rng_stream(0, "t/boot")
    x = rng.normal(scale=2.0, size=400)
    sem = bootstrap_sem(x, rng_stream(1, "t/boot2"), n_boot=800)
    assert sem == pytest.approx(2.0 / 20.0, rel=0.25)


def test_bootstrap_sem_validates():
    with pytest.raises(ValueError):
        bootstrap_sem(np.array([1.0]), rng_stream(0, "x"))


def test_confidence_interval_contains_mean():
    rng = rng_stream(2, "t/ci")
    x = rng.normal(loc=5.0, size=100)
    lo, hi = confidence_interval(x, rng_stream(3, "t/ci2"))
    assert lo < 5.0 < hi
    assert lo < x.mean() < hi


def test_confidence_interval_validates():
    with pytest.raises(ValueError):
        confidence_interval(np.ones(10), rng_stream(0, "x"), level=1.5)
    with pytest.raises(ValueError):
        confidence_interval(np.array([1.0]), rng_stream(0, "x"))


def test_ranking_correlation_perfect_and_inverted():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    assert ranking_correlation(x, x * 10 + 3) == pytest.approx(1.0)
    assert ranking_correlation(x, -x) == pytest.approx(-1.0)


def test_ranking_correlation_validates():
    with pytest.raises(ValueError):
        ranking_correlation(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        ranking_correlation(np.ones(2), np.ones(2))


def _synthetic_pools(n_compounds=12, n_replicas=48, noise=3.0, seed=0):
    """Per-compound replica ΔG pools: true signal + replica noise."""
    rng = rng_stream(seed, "t/pools")
    truth = np.linspace(-30, -5, n_compounds)
    return [
        truth[i] + rng.normal(scale=noise, size=n_replicas)
        for i in range(n_compounds)
    ], truth


def test_repeat_reliability_increases_with_ensemble_size():
    """The §5.1.3 claim: bigger ensembles give more reproducible rankings."""
    pools, _ = _synthetic_pools()
    rng = rng_stream(1, "t/rel")
    r1 = repeat_reliability(pools, ensemble_size=1, rng=rng, n_repeats=30)
    r6 = repeat_reliability(pools, ensemble_size=6, rng=rng, n_repeats=30)
    r24 = repeat_reliability(pools, ensemble_size=24, rng=rng, n_repeats=30)
    assert r1 < r6 <= r24 + 0.05
    assert r24 > 0.9


def test_repeat_reliability_validates():
    pools, _ = _synthetic_pools(n_replicas=4)
    with pytest.raises(ValueError):
        repeat_reliability(pools, ensemble_size=3, rng=rng_stream(0, "x"))
    with pytest.raises(ValueError):
        repeat_reliability(pools, ensemble_size=0, rng=rng_stream(0, "x"))
