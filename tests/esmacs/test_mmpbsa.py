"""Tests for the MMPBSA-style estimator."""

import numpy as np
import pytest

from repro.esmacs.mmpbsa import BindingEstimator
from repro.md.forcefield import ForceField
from repro.md.system import Topology
from repro.util.rng import rng_stream


def _topology(n_p=20, n_l=5, seed=0):
    rng = rng_stream(seed, "t/mmpbsa")
    n = n_p + n_l
    return Topology(
        masses=np.full(n, 50.0),
        charges=rng.normal(scale=0.2, size=n),
        hydro=rng.uniform(-0.8, 0.8, size=n),
        radii=np.full(n, 2.0),
        bonds=np.zeros((0, 2), dtype=int),
        bond_lengths=np.zeros(0),
        bond_k=np.zeros(0),
        protein_atoms=np.arange(n_p),
        ligand_atoms=np.arange(n_p, n),
    )


def test_burial_in_unit_range():
    topo = _topology()
    pos = rng_stream(1, "t/bur").normal(scale=4.0, size=(25, 3))
    b = BindingEstimator().burial(topo, pos)
    assert b.shape == (5,)
    assert (b >= 0).all() and (b <= 1).all()


def test_burial_zero_when_far():
    topo = _topology()
    pos = rng_stream(2, "t/bur2").normal(scale=4.0, size=(25, 3))
    pos[topo.ligand_atoms] += 100.0
    np.testing.assert_array_equal(BindingEstimator().burial(topo, pos), 0.0)


def test_burial_saturates_when_engulfed():
    topo = _topology(n_p=30, n_l=1)
    pos = np.zeros((31, 3))
    # protein beads packed around the single ligand bead at the origin
    pos[:30] = rng_stream(3, "t/bur3").normal(scale=2.0, size=(30, 3))
    b = BindingEstimator().burial(topo, pos)
    assert b[0] == 1.0


def test_estimate_far_apart_near_zero():
    topo = _topology()
    pos = rng_stream(4, "t/est").normal(scale=4.0, size=(25, 3))
    pos[topo.ligand_atoms] += 200.0
    dg = BindingEstimator().estimate_frame(ForceField(), topo, pos)
    assert abs(dg) < 0.1


def test_hydrophobic_burial_is_favourable():
    """Burying a greasy bead must lower ΔG vs burying a polar one."""
    n_p = 20
    pos = np.zeros((n_p + 1, 3))
    pos[:n_p] = rng_stream(6, "t/hyd").normal(scale=3.0, size=(n_p, 3))

    greasy = _topology(n_p=n_p, n_l=1, seed=5)
    greasy.hydro[n_p] = 0.9
    greasy.charges[n_p] = 0.0
    polar = _topology(n_p=n_p, n_l=1, seed=5)
    polar.hydro[n_p] = -0.9
    polar.charges[n_p] = 0.8

    est = BindingEstimator()
    dg_greasy = est.estimate_frame(ForceField(hydro_strength=0.0), greasy, pos)
    dg_polar = est.estimate_frame(ForceField(hydro_strength=0.0), polar, pos)
    assert dg_greasy < dg_polar


def test_trajectory_estimates_shape():
    topo = _topology()
    frames = rng_stream(7, "t/traj").normal(scale=4.0, size=(6, 25, 3))
    dgs = BindingEstimator().estimate_trajectory(ForceField(), topo, frames)
    assert dgs.shape == (6,)
    assert np.isfinite(dgs).all()


def test_config_validation():
    with pytest.raises(ValueError):
        BindingEstimator(interaction_scale=0)
    with pytest.raises(ValueError):
        BindingEstimator(burial_cutoff=-1)
