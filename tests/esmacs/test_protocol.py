"""Tests for the ESMACS protocol (CG/FG presets, replica semantics)."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.receptor import make_receptor
from repro.esmacs.protocol import CG, FG, EsmacsConfig, EsmacsRunner
from repro.util.rng import rng_stream

#: tiny config for tests: real protocol structure, minimal steps
TINY = EsmacsConfig(
    replicas=3,
    equilibration_ns=1.0,
    production_ns=2.0,
    steps_per_ns=8,
    n_residues=50,
    record_every=2,
    minimize_iterations=15,
)


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("PLPro", "6W9C", seed=7)


@pytest.fixture(scope="module")
def mol():
    return parse_smiles("c1ccncc1CC(=O)O")


@pytest.fixture(scope="module")
def result(receptor, mol):
    coords = rng_stream(0, "t/esm").normal(scale=2.0, size=(mol.n_atoms, 3))
    return EsmacsRunner(receptor, TINY, seed=0).run(mol, coords, "CPD1")


def test_paper_presets():
    assert CG.replicas == 6 and FG.replicas == 24
    assert CG.equilibration_ns == 1.0 and FG.equilibration_ns == 2.0
    assert CG.production_ns == 4.0 and FG.production_ns == 10.0


def test_fg_roughly_order_of_magnitude_costlier():
    """Table 2: FG ≈ 10× CG in node-hours per ligand."""
    cg_cost = CG.replicas * (CG.equilibration_steps + CG.production_steps)
    fg_cost = FG.replicas * (FG.equilibration_steps + FG.production_steps)
    assert 7 <= fg_cost / cg_cost <= 13


def test_steps_mapping():
    cfg = EsmacsConfig(replicas=1, equilibration_ns=1.0, production_ns=4.0, steps_per_ns=30)
    assert cfg.equilibration_steps == 30
    assert cfg.production_steps == 120


def test_result_structure(result):
    assert result.compound_id == "CPD1"
    assert result.n_replicas == 3
    assert len(result.trajectories) == 3
    assert result.protein_atoms is not None
    assert result.md_steps == 3 * (TINY.equilibration_steps + TINY.production_steps)
    assert np.isfinite(result.binding_free_energy)
    assert result.sem >= 0


def test_ensemble_mean_is_replica_mean(result):
    assert result.binding_free_energy == pytest.approx(result.replica_dgs.mean())


def test_replicas_differ(result):
    """Independent replicas must explore different trajectories."""
    assert result.replica_dgs.std() > 0
    f0 = result.trajectories[0].frames[-1]
    f1 = result.trajectories[1].frames[-1]
    assert not np.allclose(f0, f1)


def test_deterministic(receptor, mol):
    coords = rng_stream(1, "t/esm2").normal(scale=2.0, size=(mol.n_atoms, 3))
    a = EsmacsRunner(receptor, TINY, seed=3).run(mol, coords, "X")
    b = EsmacsRunner(receptor, TINY, seed=3).run(mol, coords, "X")
    np.testing.assert_array_equal(a.replica_dgs, b.replica_dgs)


def test_different_seeds_differ(receptor, mol):
    coords = rng_stream(2, "t/esm3").normal(scale=2.0, size=(mol.n_atoms, 3))
    a = EsmacsRunner(receptor, TINY, seed=3).run(mol, coords, "X")
    b = EsmacsRunner(receptor, TINY, seed=4).run(mol, coords, "X")
    assert not np.array_equal(a.replica_dgs, b.replica_dgs)


def test_drop_trajectories_flag(receptor, mol):
    coords = rng_stream(3, "t/esm4").normal(scale=2.0, size=(mol.n_atoms, 3))
    res = EsmacsRunner(receptor, TINY, seed=0).run(
        mol, coords, "X", keep_trajectories=False
    )
    assert res.trajectories == []
    assert np.isfinite(res.binding_free_energy)


def test_config_validation():
    with pytest.raises(ValueError):
        EsmacsConfig(replicas=0, equilibration_ns=1, production_ns=1)
    with pytest.raises(ValueError):
        EsmacsConfig(replicas=1, equilibration_ns=-1, production_ns=1)
