"""Tests for the paper-scale simulated campaign (Fig 7 machinery)."""

import pytest

from repro.core.costs import CostModel
from repro.core.simulate import (
    SimulatedCampaignConfig,
    build_integrated_pipelines,
    simulate_integrated_run,
)

SMALL = SimulatedCampaignConfig(
    n_nodes=30, cg_compounds=16, s2_compounds=4, fg_compounds=8, cohorts=2
)


def test_pipelines_have_three_stages_per_cohort():
    pipelines = build_integrated_pipelines(SMALL, CostModel())
    assert len(pipelines) == 2
    for p in pipelines:
        assert [s.name.split("-")[0] for s in p.stages] == ["cg", "s2", "fg"]


def test_stage_tasks_carry_stage_labels():
    pipelines = build_integrated_pipelines(SMALL, CostModel())
    stages = {t.stage for p in pipelines for s in p.stages for t in s.tasks}
    assert stages == {"S3-CG", "S2", "S3-FG"}


def test_simulated_run_completes_with_utilization():
    pilot = simulate_integrated_run(SMALL)
    series = pilot.utilization.series()
    assert series.times[-1] > 0
    assert 0.0 < series.average_utilization() <= 1.0
    assert set(series.per_stage) == {"S3-CG", "S2", "S3-FG"}


def test_stage_ordering_within_cohort():
    """Within a cohort the FG stage starts only after its S2 stage ends."""
    pilot = simulate_integrated_run(SMALL)
    recs = pilot.records
    for cohort in range(SMALL.cohorts):
        s2_end = max(
            r.end_time
            for r in recs
            if r.spec.stage == "S2" and r.spec.name == f"s2-c{cohort}-0"
        )
        fg_start = min(
            r.start_time
            for r in recs
            if r.spec.stage == "S3-FG" and f"c{cohort}-" in r.spec.name
        )
        assert fg_start >= s2_end - 1e-9


def test_overheads_scale_invariant():
    """Fig 7's claim: overhead fraction does not grow with node count."""
    small = simulate_integrated_run(
        SimulatedCampaignConfig(
            n_nodes=30, cg_compounds=16, s2_compounds=4, fg_compounds=8, cohorts=2
        )
    )
    large = simulate_integrated_run(
        SimulatedCampaignConfig(
            n_nodes=120, cg_compounds=64, s2_compounds=16, fg_compounds=32, cohorts=8
        )
    )
    f_small = small.utilization.overhead_fraction(1.0, len(small.records))
    f_large = large.utilization.overhead_fraction(1.0, len(large.records))
    assert f_large <= f_small * 2.0  # flat within tolerance


def test_config_validation():
    with pytest.raises(ValueError):
        SimulatedCampaignConfig(n_nodes=0)
    with pytest.raises(ValueError):
        SimulatedCampaignConfig(cohorts=0)


def test_heterogeneity_validation():
    with pytest.raises(ValueError):
        SimulatedCampaignConfig(heterogeneity=-0.1)


def test_zero_heterogeneity_gives_cost_model_durations():
    cfg = SimulatedCampaignConfig(
        n_nodes=10, cg_compounds=4, s2_compounds=2, fg_compounds=2,
        cohorts=1, heterogeneity=0.0,
    )
    cm = CostModel()
    pipelines = build_integrated_pipelines(cfg, cm)
    from repro.esmacs.protocol import CG

    cg_tasks = [t for p in pipelines for s in p.stages for t in s.tasks if t.stage == "S3-CG"]
    for t in cg_tasks:
        assert t.duration == pytest.approx(cm.esmacs_wall_seconds(CG))
