"""Campaign-level failure propagation policies.

A stage work unit that raises is handled per ``CampaignConfig.failure_policy``:
``fail_fast`` aborts the campaign with a :class:`TaskFailedError`, while
``drop_and_continue`` records the drop in the failure ledger and keeps
going — up to the per-stage failure budget.
"""

import pytest

from repro.core.campaign import CampaignConfig, ImpeccableCampaign
from repro.esmacs.protocol import EsmacsConfig, EsmacsRunner
from repro.rct.fault import TaskFailedError

_SMALL_ESMACS = dict(
    equilibration_ns=1,
    production_ns=4,
    steps_per_ns=4,
    n_residues=40,
    record_every=4,
    minimize_iterations=10,
)


def _config(**overrides):
    base = dict(
        library_size=24,
        seed_train_size=8,
        iterations=1,
        cg_compounds=2,
        s2_top_compounds=1,
        s2_outliers_per_compound=1,
        cg=EsmacsConfig(replicas=3, **_SMALL_ESMACS),
        fg=EsmacsConfig(replicas=6, production_ns=10, **{
            k: v for k, v in _SMALL_ESMACS.items() if k != "production_ns"
        }),
        compute_enrichment=False,
        seed=0,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _fail_every(monkeypatch, nth):
    """Patch EsmacsRunner.run so every ``nth``-th call raises."""
    original = EsmacsRunner.run
    calls = {"n": 0}

    def flaky(self, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] % nth == 0:
            raise RuntimeError("simulated node failure")
        return original(self, *args, **kwargs)

    monkeypatch.setattr(EsmacsRunner, "run", flaky)
    return calls


def test_config_rejects_bad_policy_and_budget():
    with pytest.raises(ValueError, match="failure_policy"):
        _config(failure_policy="retry_forever")
    with pytest.raises(ValueError, match="budget"):
        _config(failure_policy="drop_and_continue", stage_failure_budget=-1)


def test_fail_fast_aborts_on_first_stage_failure(monkeypatch):
    _fail_every(monkeypatch, nth=1)
    campaign = ImpeccableCampaign(_config(failure_policy="fail_fast"))
    with pytest.raises(TaskFailedError, match="S3-CG"):
        campaign.run()


def test_drop_and_continue_reports_every_drop(monkeypatch):
    calls = _fail_every(monkeypatch, nth=2)
    campaign = ImpeccableCampaign(_config(failure_policy="drop_and_continue"))
    result = campaign.run()
    summary = result.failure_summary
    # something failed, the run still finished, and nothing vanished:
    # every injected failure is accounted for as a drop
    assert calls["n"] > 0
    assert summary.n_dropped > 0
    assert summary.reconciles()
    dropped_cg = summary.dropped_by_stage.get("S3-CG", 0)
    it = result.iterations[0]
    assert len(it.cg_results) == campaign.config.cg_compounds - dropped_cg


def test_stage_failure_budget_bounds_the_drops(monkeypatch):
    _fail_every(monkeypatch, nth=1)
    campaign = ImpeccableCampaign(
        _config(failure_policy="drop_and_continue", stage_failure_budget=1)
    )
    with pytest.raises(TaskFailedError, match="budget"):
        campaign.run()
    # the budget allowed exactly one drop before aborting
    assert campaign.failures.dropped_by_stage["S3-CG"] == 2
