"""Campaign with a receptor ensemble (multi-crystal-structure mode)."""

import pytest

from repro.core.campaign import CampaignConfig, ImpeccableCampaign
from repro.esmacs.protocol import EsmacsConfig

MULTI = CampaignConfig(
    target="PLPro",
    pdb_id="6W9C",
    pdb_ids=("6W9C", "6WX4"),
    library_size=20,
    seed_train_size=8,
    iterations=1,
    cg_compounds=3,
    s2_top_compounds=2,
    s2_outliers_per_compound=2,
    cg=EsmacsConfig(
        replicas=3, equilibration_ns=1, production_ns=4, steps_per_ns=4,
        n_residues=40, record_every=4, minimize_iterations=10,
    ),
    fg=EsmacsConfig(
        replicas=4, equilibration_ns=2, production_ns=10, steps_per_ns=4,
        n_residues=40, record_every=10, minimize_iterations=10,
    ),
    compute_enrichment=False,
    seed=0,
)


@pytest.fixture(scope="module")
def result():
    return ImpeccableCampaign(MULTI).run()


def test_both_structures_engaged(result):
    it = result.iterations[0]
    # the campaign tracked per-compound best structures from the ensemble
    campaign_structures = set()
    for r in it.cg_results:
        campaign_structures.add(r.compound_id)
    assert len(it.cg_results) == 3


def test_consensus_scores_never_worse_than_primary():
    """Ensemble-best docking scores are at most the primary structure's."""
    single = ImpeccableCampaign(MULTI.replace(pdb_ids=())).run()
    multi = ImpeccableCampaign(MULTI).run()
    for cid, score in multi.docked_scores.items():
        if cid in single.docked_scores:
            assert score <= single.docked_scores[cid] + 1e-9


def test_s2_grouped_by_structure(result):
    it = result.iterations[0]
    assert it.s2_by_structure  # at least one group ran
    for pdb, s2 in it.s2_by_structure.items():
        assert pdb in ("6W9C", "6WX4")
        assert len(s2.selections) > 0
    # the exposed s2_result is the largest group's
    largest = max(it.s2_by_structure.values(), key=lambda r: len(r.dataset))
    assert it.s2_result is largest


def test_fg_ran_per_group(result):
    it = result.iterations[0]
    expected = sum(len(s2.selections) for s2 in it.s2_by_structure.values())
    assert len(it.fg_results) == expected
