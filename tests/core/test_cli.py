"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["dock", "CCO", "--target", "3CLPro"])
    assert args.command == "dock"
    assert args.smiles == ["CCO"]
    args = parser.parse_args(["campaign", "--library-size", "30"])
    assert args.library_size == 30


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_costs_command(capsys):
    assert main(["costs"]) == 0
    out = capsys.readouterr().out
    assert "S3-CG" in out
    assert "0.50000" in out


def test_dock_command(capsys):
    assert main(["dock", "CCO", "c1ccccc1", "--target", "PLPro"]) == 0
    out = capsys.readouterr().out
    assert "CLI0000" in out
    assert "c1ccccc1" in out


def test_simulate_command(capsys):
    assert (
        main(
            [
                "simulate",
                "--nodes", "20",
                "--cg", "8",
                "--s2", "2",
                "--fg", "4",
                "--cohorts", "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "utilization" in out


def test_bad_local_search_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["dock", "CCO", "--local-search", "newton"])


def _stream_args(tmp_path, workdir, out):
    return [
        "stream",
        "--library-size", "24",
        "--shard-size", "6",
        "--keep-top", "4",
        "--train-size", "8",
        "--dock-shard-size", "2",
        "--workdir", str(tmp_path / workdir),
        "--out", str(tmp_path / out),
    ]


def test_stream_command_kill_and_resume_byte_identical(tmp_path, capsys):
    """The resumable-campaign quick-start: kill mid-ML1, rerun the same
    command, and the output CSV matches an uninterrupted run exactly."""
    with pytest.raises(SystemExit) as exc:
        main(_stream_args(tmp_path, "wd", "a.csv") + ["--kill-after", "2"])
    assert exc.value.code == 3

    assert main(_stream_args(tmp_path, "wd", "a.csv")) == 0
    captured = capsys.readouterr()
    assert "2 resumed" in captured.err  # the two ML1 shards done pre-kill

    assert main(_stream_args(tmp_path, "wd2", "b.csv")) == 0
    a = (tmp_path / "a.csv").read_bytes()
    assert a == (tmp_path / "b.csv").read_bytes()
    assert a.count(b"\n") == 5  # header + keep-top rows


def test_serve_command_replays_byte_identically(tmp_path, capsys):
    trace = tmp_path / "serve.jsonl"
    assert main(["serve", "--check", "--trace", str(trace)]) == 0
    captured = capsys.readouterr()
    assert "replay check: byte-identical" in captured.err
    assert "quota_exhausted" in captured.out
    assert "cancelled" in captured.out
    assert trace.read_text().count("\n") > 100
