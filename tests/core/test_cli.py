"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["dock", "CCO", "--target", "3CLPro"])
    assert args.command == "dock"
    assert args.smiles == ["CCO"]
    args = parser.parse_args(["campaign", "--library-size", "30"])
    assert args.library_size == 30


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_costs_command(capsys):
    assert main(["costs"]) == 0
    out = capsys.readouterr().out
    assert "S3-CG" in out
    assert "0.50000" in out


def test_dock_command(capsys):
    assert main(["dock", "CCO", "c1ccccc1", "--target", "PLPro"]) == 0
    out = capsys.readouterr().out
    assert "CLI0000" in out
    assert "c1ccccc1" in out


def test_simulate_command(capsys):
    assert (
        main(
            [
                "simulate",
                "--nodes", "20",
                "--cg", "8",
                "--s2", "2",
                "--fg", "4",
                "--cohorts", "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "utilization" in out


def test_bad_local_search_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["dock", "CCO", "--local-search", "newton"])
