"""Streamed checkpointed screen: equality with the materialized path,
kill/resume determinism, and bounded top-K selection.

The hard contract from the streaming pipeline: same-seed streaming and
materialized runs produce identical scores and poses, and a run killed
mid-stream resumes from the last completed shard and finishes
byte-for-byte identical to an uninterrupted run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chem.library import generate_library, write_library_shards
from repro.core.streaming import _TopK, run_streamed_screen
from repro.docking.batch import _result_to_row
from repro.docking.engine import DockingEngine
from repro.docking.lga import LGAConfig
from repro.docking.receptor import make_receptor
from repro.surrogate.infer import InferenceEngine, ScoredCompound
from repro.surrogate.train import TrainConfig, train_surrogate

LIB_N = 36
SHARD_SIZE = 8
KEEP_TOP = 6
SEED = 29

receptor = make_receptor("3CLPro")
small = LGAConfig(population=8, generations=3, local_search_rate=0.3)


@pytest.fixture(scope="module")
def surrogate():
    rng = np.random.default_rng(SEED)
    train = generate_library(16, seed=SEED + 1, name="train")
    return train_surrogate(
        [e.smiles for e in train],
        rng.normal(loc=-7.0, size=len(train)),
        TrainConfig(epochs=3, width=4),
        seed=SEED,
    )


@pytest.fixture()
def shard_paths(tmp_path):
    return write_library_shards(
        tmp_path / "shards", LIB_N, seed=SEED, shard_size=SHARD_SIZE
    )


def _engine():
    return DockingEngine(receptor, seed=5, config=small)


def _screen_rows(result):
    """Canonical byte-comparable form of a full screen output."""
    return json.dumps(
        {
            "selected": [
                (s.compound_id, s.smiles, s.score.hex()) for s in result.selected
            ],
            "docked": [_result_to_row(r) for r in result.docked],
        },
        sort_keys=True,
    )


# --------------------------------------------------------------------- _TopK


def test_topk_equals_stable_descending_sort():
    rng = np.random.default_rng(0)
    scores = rng.integers(0, 5, size=200) / 4.0  # many exact ties
    items = [ScoredCompound(f"C{i:03d}", "CCO", float(s)) for i, s in enumerate(scores)]
    for k in (1, 7, 50, 200, 500):
        top = _TopK(k)
        for item in items:
            top.offer(item)
        expected = sorted(items, key=lambda s: s.score, reverse=True)[:k]
        assert top.ranked() == expected


def test_topk_rejects_nonpositive_k():
    with pytest.raises(ValueError):
        _TopK(0)


# ------------------------------------------- streamed == materialized


def test_streamed_equals_materialized(surrogate, shard_paths):
    streamed = run_streamed_screen(
        _engine(), surrogate, shard_paths, keep_top=KEEP_TOP
    )
    assert streamed.records_streamed == LIB_N
    assert streamed.shards_total == len(shard_paths)
    assert streamed.shards_resumed == 0

    # materialized reference: score everything, stable sort, one dock call
    inference = InferenceEngine(surrogate, batch_size=64, engine="graph")
    scored = inference.score_shards(shard_paths)
    ranked = sorted(scored, key=lambda s: s.score, reverse=True)[:KEEP_TOP]
    assert streamed.selected == ranked

    docked = _engine().dock_entries(
        [(s.smiles, s.compound_id) for s in ranked], batched=True
    )
    assert [_result_to_row(r) for r in streamed.docked] == [
        _result_to_row(r) for r in docked
    ]


# --------------------------------------------------- kill / resume


class _KillSwitch(RuntimeError):
    pass


def _run_with_kill(engine, surrogate, paths, ckpt, kill_stage, kill_after):
    """Run the screen but die after ``kill_after`` shards of ``kill_stage``."""
    count = {"n": 0}

    def on_shard(stage, _sid):
        if stage == kill_stage:
            count["n"] += 1
            if count["n"] >= kill_after:
                raise _KillSwitch

    with pytest.raises(_KillSwitch):
        run_streamed_screen(
            engine, surrogate, paths, keep_top=KEEP_TOP,
            checkpoint_dir=ckpt, dock_shard_size=2, on_shard=on_shard,
        )


def test_kill_during_ml1_resume_is_byte_identical(surrogate, shard_paths, tmp_path):
    uninterrupted = run_streamed_screen(
        _engine(), surrogate, shard_paths, keep_top=KEEP_TOP,
        checkpoint_dir=tmp_path / "ck-a", dock_shard_size=2,
    )

    ckpt = tmp_path / "ck-b"
    _run_with_kill(_engine(), surrogate, shard_paths, ckpt, "ml1", kill_after=2)
    resumed = run_streamed_screen(
        _engine(), surrogate, shard_paths, keep_top=KEEP_TOP,
        checkpoint_dir=ckpt, dock_shard_size=2,
    )
    assert resumed.shards_resumed == 2
    assert _screen_rows(resumed) == _screen_rows(uninterrupted)


def test_kill_during_s1_resume_skips_redocking(surrogate, shard_paths, tmp_path):
    uninterrupted = run_streamed_screen(
        _engine(), surrogate, shard_paths, keep_top=KEEP_TOP,
        checkpoint_dir=tmp_path / "ck-a", dock_shard_size=2,
    )

    ckpt = tmp_path / "ck-b"
    _run_with_kill(_engine(), surrogate, shard_paths, ckpt, "s1", kill_after=2)

    engine = _engine()
    resumed = run_streamed_screen(
        engine, surrogate, shard_paths, keep_top=KEEP_TOP,
        checkpoint_dir=ckpt, dock_shard_size=2,
    )
    # all ML1 shards finished before the S1 kill, 2 dock shards were done
    assert resumed.shards_resumed == len(shard_paths)
    assert resumed.dock_shards_resumed == 2
    # resumed shards were loaded, not redocked: only the tail cost evals
    assert engine.total_ligands == KEEP_TOP - 2 * 2
    assert _screen_rows(resumed) == _screen_rows(uninterrupted)


def test_full_resume_does_zero_work(surrogate, shard_paths, tmp_path):
    ckpt = tmp_path / "ck"
    first = run_streamed_screen(
        _engine(), surrogate, shard_paths, keep_top=KEEP_TOP,
        checkpoint_dir=ckpt, dock_shard_size=2,
    )
    engine = _engine()
    second = run_streamed_screen(
        engine, surrogate, shard_paths, keep_top=KEEP_TOP,
        checkpoint_dir=ckpt, dock_shard_size=2,
    )
    assert engine.total_ligands == 0
    assert engine.total_evals == 0
    assert second.shards_resumed == len(shard_paths)
    assert second.dock_shards_resumed == second.dock_shards_total
    assert _screen_rows(second) == _screen_rows(first)


def test_stale_checkpoint_fingerprint_rejected(surrogate, tmp_path):
    """A checkpoint from a different shard cut must be refused, not
    silently grafted onto the new run."""
    paths_a = write_library_shards(
        tmp_path / "a", LIB_N, seed=SEED, shard_size=SHARD_SIZE
    )
    ckpt = tmp_path / "ck"
    run_streamed_screen(
        _engine(), surrogate, paths_a, keep_top=KEEP_TOP, checkpoint_dir=ckpt
    )
    # same shard filenames, different library content
    paths_b = write_library_shards(
        tmp_path / "b", LIB_N, seed=SEED + 999, shard_size=SHARD_SIZE
    )
    with pytest.raises(RuntimeError, match="fingerprint"):
        run_streamed_screen(
            _engine(), surrogate, paths_b, keep_top=KEEP_TOP, checkpoint_dir=ckpt
        )
