"""Same-seed campaigns replay bit-identically — even while failing.

The determinism contract (everything flows from ``CampaignConfig.seed``
through :mod:`repro.util.rng`) must survive fault injection: two runs
with the same seed and the same injected-failure pattern produce
identical failure ledgers, identical stage outputs, and identical
metrics.  Wall-clock fields are the only permitted difference.
"""

import dataclasses

import numpy as np

from repro.core.campaign import CampaignConfig, ImpeccableCampaign
from repro.esmacs.protocol import EsmacsConfig, EsmacsRunner
from repro.rct.fault import FaultModel, RetryPolicy
from repro.rct.raptor import RaptorConfig, simulate_raptor

_SMALL_ESMACS = dict(
    equilibration_ns=1,
    production_ns=4,
    steps_per_ns=4,
    n_residues=40,
    record_every=4,
    minimize_iterations=10,
)


def _config():
    return CampaignConfig(
        library_size=24,
        seed_train_size=8,
        iterations=1,
        cg_compounds=2,
        s2_top_compounds=1,
        s2_outliers_per_compound=1,
        cg=EsmacsConfig(replicas=3, **_SMALL_ESMACS),
        fg=EsmacsConfig(replicas=6, production_ns=10, **{
            k: v for k, v in _SMALL_ESMACS.items() if k != "production_ns"
        }),
        compute_enrichment=False,
        failure_policy="drop_and_continue",
        seed=0,
    )


def _fail_every(monkeypatch, nth):
    """Patch EsmacsRunner.run so every ``nth``-th call raises.

    Returns the call counter; reset ``calls["n"] = 0`` between runs so
    both runs see the identical failure pattern.
    """
    original = EsmacsRunner.run
    calls = {"n": 0}

    def flaky(self, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] % nth == 0:
            raise RuntimeError("simulated node failure")
        return original(self, *args, **kwargs)

    monkeypatch.setattr(EsmacsRunner, "run", flaky)
    return calls


def _fingerprint(result):
    """Every deterministic observable of a campaign run (no wall time)."""
    out = {
        "ledger": dataclasses.asdict(result.failure_summary),
        "docked_scores": result.docked_scores,
        "iterations": [],
    }
    for it in result.iterations:
        out["iterations"].append(
            {
                "docked": [(d.compound_id, d.score, d.conformer) for d in it.docked],
                "cg": [
                    (r.compound_id, r.binding_free_energy, r.sem, tuple(r.replica_dgs))
                    for r in it.cg_results
                ],
                "fg": [
                    (r.compound_id, r.binding_free_energy, r.sem, tuple(r.replica_dgs))
                    for r in it.fg_results
                ],
                "fg_parents": list(it.fg_parents),
                "effective_ligands": it.metrics.effective_ligands,
                "stage_ligands": {
                    name: s.n_ligands for name, s in it.metrics.stages.items()
                },
            }
        )
    return out


def test_same_seed_campaigns_replay_identically_under_faults(monkeypatch):
    calls = _fail_every(monkeypatch, nth=3)
    first = ImpeccableCampaign(_config()).run()
    n_calls = calls["n"]
    calls["n"] = 0  # identical injection pattern for the replay
    second = ImpeccableCampaign(_config()).run()
    assert calls["n"] == n_calls  # same work reached the flaky stage
    assert first.failure_summary.n_dropped > 0  # faults actually fired
    assert _fingerprint(first) == _fingerprint(second)


def test_same_seed_campaigns_replay_identically_clean():
    first = ImpeccableCampaign(_config()).run()
    second = ImpeccableCampaign(_config()).run()
    assert _fingerprint(first) == _fingerprint(second)


def test_fault_model_injection_is_seed_deterministic():
    """Sim-level twin: same FaultModel seed → identical ledger and layout."""
    d = np.full(500, 0.2)
    cfg = RaptorConfig(n_workers=10, bulk_size=8)

    def run():
        return simulate_raptor(
            d,
            cfg,
            fault_model=FaultModel(failure_rate=0.08, seed=7),
            retry=RetryPolicy(max_retries=2, backoff_base=0.1, seed=7),
        )

    a, b = run(), run()
    assert dataclasses.asdict(a.failure_summary) == dataclasses.asdict(
        b.failure_summary
    )
    assert a.failure_summary.n_failures > 0
    assert a.makespan == b.makespan  # virtual clock: exact, not approx
    assert np.array_equal(a.worker_busy, b.worker_busy)
    assert a.failed_indices == b.failed_indices
