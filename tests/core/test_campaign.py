"""Integration tests for the full IMPECCABLE campaign loop.

One tiny-but-complete campaign is run once (module-scoped fixture) and
inspected from many angles; this is the deepest integration test in the
suite, exercising every stage hand-off with real data.
"""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig, ImpeccableCampaign
from repro.esmacs.protocol import EsmacsConfig

TINY = CampaignConfig(
    library_size=30,
    seed_train_size=10,
    iterations=1,
    cg_compounds=3,
    s2_top_compounds=2,
    s2_outliers_per_compound=2,
    cg=EsmacsConfig(
        replicas=3,
        equilibration_ns=1,
        production_ns=4,
        steps_per_ns=4,
        n_residues=40,
        record_every=4,
        minimize_iterations=10,
    ),
    fg=EsmacsConfig(
        replicas=6,
        equilibration_ns=2,
        production_ns=10,
        steps_per_ns=4,
        n_residues=40,
        record_every=10,
        minimize_iterations=10,
    ),
    compute_enrichment=False,  # oracle docking is the slow part
    seed=0,
)


@pytest.fixture(scope="module")
def campaign_result():
    return ImpeccableCampaign(TINY).run()


def test_iterations_present(campaign_result):
    assert len(campaign_result.iterations) == 1
    it = campaign_result.iterations[0]
    assert it.iteration == 0


def test_every_stage_ran(campaign_result):
    it = campaign_result.iterations[0]
    assert len(it.docked) > 0
    assert len(it.cg_results) == 3
    assert it.s2_result is not None
    assert len(it.fg_results) == 2 * 2  # top_compounds × outliers
    assert set(it.metrics.stages) == {"ML1", "S1", "S3-CG", "S2", "S3-FG"}


def test_fg_parents_are_s2_top_compounds(campaign_result):
    it = campaign_result.iterations[0]
    assert set(it.fg_parents) <= set(it.s2_result.top_compound_ids)
    assert len(it.fg_parents) == len(it.fg_results)


def test_cg_inputs_come_from_docked_pool(campaign_result):
    it = campaign_result.iterations[0]
    docked_ids = set(campaign_result.docked_scores)
    for r in it.cg_results:
        assert r.compound_id in docked_ids


def test_surrogate_retrained_on_all_docked(campaign_result):
    assert campaign_result.surrogate is not None
    n_docked = len(campaign_result.docked_scores)
    assert n_docked >= TINY.seed_train_size
    # predictions exist for library compounds
    preds = campaign_result.surrogate.predict_normalized(
        campaign_result.library.smiles()[:5]
    )
    assert preds.shape == (5,)


def test_node_hour_accounting_positive(campaign_result):
    m = campaign_result.iterations[0].metrics
    assert m.total_node_hours() > 0
    # FG must dominate CG per ligand (Table 2 ordering)
    cg = m.stages["S3-CG"]
    fg = m.stages["S3-FG"]
    assert fg.node_hours / max(1, fg.n_ligands) > cg.node_hours / max(1, cg.n_ligands)


def test_deterministic_campaign():
    a = ImpeccableCampaign(TINY).run()
    b = ImpeccableCampaign(TINY).run()
    assert a.docked_scores == b.docked_scores
    np.testing.assert_array_equal(
        a.iterations[0].cg_results[0].replica_dgs,
        b.iterations[0].cg_results[0].replica_dgs,
    )


def test_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(library_size=10, seed_train_size=10)
    with pytest.raises(ValueError):
        CampaignConfig(ml1_keep_fraction=1.5)


def test_campaign_library_from_shards(tmp_path):
    """A campaign pointed at on-disk shards screens exactly that
    library instead of generating one."""
    from repro.chem.library import generate_library, write_library_shards

    paths = write_library_shards(tmp_path, 30, seed=44, shard_size=10)
    cfg = TINY.replace(library_shards=tuple(str(p) for p in paths))
    campaign = ImpeccableCampaign(cfg)
    assert campaign.library.smiles() == generate_library(30, seed=44).smiles()

    too_small = write_library_shards(tmp_path / "small", 8, seed=44, shard_size=10)
    with pytest.raises(ValueError):
        ImpeccableCampaign(
            TINY.replace(library_shards=tuple(str(p) for p in too_small))
        )
