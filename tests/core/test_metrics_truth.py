"""Tests for campaign metrics and the reference oracle."""

import numpy as np
import pytest

from repro.chem.library import generate_library
from repro.core.metrics import (
    CampaignMetrics,
    StageAccounting,
    enrichment_factor,
    throughput,
)
from repro.core.truth import ReferenceOracle
from repro.docking.receptor import make_receptor


# ------------------------------------------------------------------ metrics


def test_throughput():
    assert throughput(100, 50.0) == 2.0
    with pytest.raises(ValueError):
        throughput(10, 0.0)
    with pytest.raises(ValueError):
        throughput(-1, 1.0)


def test_enrichment_factor_random_is_one():
    universe = 100
    true_top = {f"c{i}" for i in range(10)}
    selected = {f"c{i}" for i in range(0, 100, 10)}  # 10 picks, 1 hit
    assert enrichment_factor(selected, true_top, universe) == pytest.approx(1.0)


def test_enrichment_factor_perfect():
    true_top = {"a", "b"}
    assert enrichment_factor({"a", "b"}, true_top, 100) == pytest.approx(50.0)


def test_enrichment_factor_zero_hits():
    assert enrichment_factor({"x"}, {"a"}, 10) == 0.0


def test_enrichment_validates():
    with pytest.raises(ValueError):
        enrichment_factor(set(), {"a"}, 10)
    with pytest.raises(ValueError):
        enrichment_factor({"a"}, set(), 10)
    with pytest.raises(ValueError):
        enrichment_factor({"a"}, {"a", "b"}, 1)


def test_stage_accounting_rate():
    s = StageAccounting(stage="S1", n_ligands=50, wall_seconds=10.0, node_hours=1.0)
    assert s.ligands_per_second == 5.0


def test_campaign_metrics_aggregation():
    m = CampaignMetrics(iteration=0)
    m.stages["S1"] = StageAccounting("S1", 100, 10.0, 0.01)
    m.stages["S3-CG"] = StageAccounting("S3-CG", 10, 50.0, 5.0)
    m.effective_ligands = 3
    assert m.total_node_hours() == pytest.approx(5.01)
    assert m.scientific_performance() == pytest.approx(3 / 5.01)
    assert "S3-CG" in m.summary()


# ------------------------------------------------------------------- oracle


@pytest.fixture(scope="module")
def oracle_setup():
    receptor = make_receptor("PLPro", "6W9C", seed=7)
    lib = generate_library(12, seed=55)
    return ReferenceOracle(receptor, seed=1, restarts=1), lib


def test_oracle_caches(oracle_setup):
    oracle, lib = oracle_setup
    a = oracle.affinity(lib[0].smiles, lib[0].compound_id)
    b = oracle.affinity(lib[0].smiles, lib[0].compound_id)
    assert a == b
    assert lib[0].compound_id in oracle._cache


def test_oracle_affinities_vary(oracle_setup):
    oracle, lib = oracle_setup
    scores = oracle.affinities(lib)
    assert scores.shape == (12,)
    assert scores.std() > 0


def test_true_top_ids(oracle_setup):
    oracle, lib = oracle_setup
    top = oracle.true_top_ids(lib, 0.25)
    assert len(top) == 3
    scores = oracle.affinities(lib)
    best = {lib[int(i)].compound_id for i in np.argsort(scores)[:3]}
    assert top == best


def test_true_top_validates(oracle_setup):
    oracle, lib = oracle_setup
    with pytest.raises(ValueError):
        oracle.true_top_ids(lib, 0.0)


def test_oracle_validates_restarts():
    receptor = make_receptor("PLPro", "6W9C", seed=7)
    with pytest.raises(ValueError):
        ReferenceOracle(receptor, restarts=0)
