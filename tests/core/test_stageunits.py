"""The stage-unit decomposition is ``run()`` sliced, not a fork of it.

:meth:`ImpeccableCampaign.iter_units` must yield resumable stage units
whose stepped execution is observationally identical to the monolithic
``run()`` — same fingerprint, same unit protocol guarantees (a unit must
be completed before the next one is built, never completed twice).
"""

import pytest

from repro.core.campaign import CampaignConfig, ImpeccableCampaign, StageUnit
from repro.docking.lga import LGAConfig
from repro.esmacs.protocol import EsmacsConfig
from repro.surrogate.train import TrainConfig

from .test_campaign_determinism import _config, _fingerprint


def tiny_config(seed=0):
    """Smallest campaign that still visits every stage (~1s)."""
    small = dict(
        equilibration_ns=0.5,
        production_ns=1.0,
        steps_per_ns=6,
        n_residues=40,
        record_every=2,
        minimize_iterations=8,
    )
    return CampaignConfig(
        library_size=16,
        seed_train_size=6,
        iterations=1,
        cg_compounds=2,
        s2_top_compounds=1,
        s2_outliers_per_compound=1,
        docking=LGAConfig(population=8, generations=3),
        surrogate=TrainConfig(epochs=2, batch_size=8, width=4),
        cg=EsmacsConfig(replicas=2, **small),
        fg=EsmacsConfig(replicas=2, **small),
        compute_enrichment=False,
        failure_policy="drop_and_continue",
        seed=seed,
    )


def test_stepped_units_match_monolithic_run():
    baseline = ImpeccableCampaign(_config()).run()
    stepped = ImpeccableCampaign(_config())
    units = []
    for unit in stepped.iter_units():
        units.append(unit)
        unit.complete()
    assert stepped.result is not None
    assert _fingerprint(stepped.result) == _fingerprint(baseline)
    # seed bootstrap first, retrain last, every unit completed
    assert units[0].unit_id == "seed"
    assert units[-1].stage == "retrain"
    assert all(u.done for u in units)


def test_unit_ids_name_iteration_and_stage():
    campaign = ImpeccableCampaign(tiny_config())
    ids = []
    for unit in campaign.iter_units():
        ids.append(unit.unit_id)
        unit.complete()
    assert ids[0] == "seed"
    assert "it0/ML1" in ids
    assert "it0/S1" in ids
    assert "it0/retrain" in ids
    assert len(ids) == len(set(ids))


def test_advancing_without_complete_raises():
    campaign = ImpeccableCampaign(tiny_config())
    gen = campaign.iter_units()
    next(gen)  # seed unit, deliberately not completed
    with pytest.raises(RuntimeError, match="complete"):
        next(gen)


def test_completing_a_unit_twice_raises():
    campaign = ImpeccableCampaign(tiny_config())
    unit = next(campaign.iter_units())
    unit.complete()
    with pytest.raises(RuntimeError):
        unit.complete()


def test_stageunit_dataclass_shape():
    unit = StageUnit("S1", 0, 12, lambda: None)
    assert unit.unit_id == "it0/S1"
    assert not unit.done
    seed = StageUnit("seed", -1, 6, lambda: None)
    assert seed.unit_id == "seed"


def test_run_still_returns_result():
    result = ImpeccableCampaign(tiny_config()).run()
    assert result.iterations
    assert result.docked_scores
