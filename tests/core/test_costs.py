"""Tests for the Summit cost model (Table 2 derivation)."""

import pytest

from repro.core.costs import PAPER_TABLE2, CostModel
from repro.esmacs.protocol import CG, FG


@pytest.fixture(scope="module")
def cm():
    return CostModel()


def test_table2_s1_matches_paper(cm):
    assert cm.node_hours_per_ligand("S1") == pytest.approx(
        PAPER_TABLE2["S1"], rel=0.25
    )


def test_table2_cg_matches_paper(cm):
    assert cm.node_hours_per_ligand("S3-CG") == pytest.approx(
        PAPER_TABLE2["S3-CG"], rel=0.05
    )


def test_table2_fg_matches_paper(cm):
    assert cm.node_hours_per_ligand("S3-FG") == pytest.approx(
        PAPER_TABLE2["S3-FG"], rel=0.1
    )


def test_table2_s2_and_ti(cm):
    assert cm.node_hours_per_ligand("S2") == pytest.approx(PAPER_TABLE2["S2"])
    assert cm.node_hours_per_ligand("TI") == pytest.approx(PAPER_TABLE2["TI"])


def test_nodes_per_ligand_column(cm):
    # Table 2's "nodes per ligand": 1/6, 1, 2, 4, 64
    assert cm.nodes_per_ligand("S1") == pytest.approx(1 / 6)
    assert cm.nodes_per_ligand("S3-CG") == 1.0
    assert cm.nodes_per_ligand("S2") == 2.0
    assert cm.nodes_per_ligand("S3-FG") == 4.0
    assert cm.nodes_per_ligand("TI") == 64.0


def test_cost_ordering_spans_orders_of_magnitude(cm):
    """§3.2: methods span >6 orders of magnitude in cost per ligand."""
    s1 = cm.node_hours_per_ligand("S1")
    ti = cm.node_hours_per_ligand("TI")
    assert ti / s1 > 1e6


def test_unknown_stage_rejected(cm):
    with pytest.raises(ValueError):
        cm.node_hours_per_ligand("S9")
    with pytest.raises(ValueError):
        cm.nodes_per_ligand("S9")


def test_esmacs_nodes(cm):
    assert cm.esmacs_nodes(CG) == 1  # 6 replicas on 6 GPUs
    assert cm.esmacs_nodes(FG) == 4  # 24 replicas on 24 GPUs


def test_task_specs_shapes(cm):
    cg_task = cm.esmacs_task(CG, "X", "S3-CG")
    assert cg_task.nodes == 1
    assert cg_task.gpus == 6
    fg_task = cm.esmacs_task(FG, "X", "S3-FG")
    assert fg_task.nodes == 4
    s2 = cm.s2_task("X")
    assert s2.nodes == 2
    assert s2.duration == pytest.approx(7200.0)
    dock = cm.docking_task(1000)
    assert dock.gpus == 1
    assert dock.duration > 0


def test_fg_cg_duration_ratio(cm):
    """FG wall time per ensemble is (2+10)/(1+4) = 2.4× CG."""
    assert cm.esmacs_wall_seconds(FG) / cm.esmacs_wall_seconds(CG) == pytest.approx(2.4)


def test_validation():
    with pytest.raises(ValueError):
        CostModel(md_ns_per_gpu_hour=0)
