"""Stride scheduler: deterministic weighted fair-share with priorities.

Property checks on the share ledger itself — fairness convergence,
priority jumping bounded by starvation aging, join-at-min-pass, and the
pick/commit purity split the manager's replay contract relies on.
"""

import pytest

from repro.service.sched import StrideScheduler


def _grants(sched, tenants, rounds, cost=1.0):
    """Simulate ``rounds`` unit-cost grants; returns the pick sequence."""
    picks = []
    for _ in range(rounds):
        winner = sched.pick(sorted(tenants))
        picks.append(winner)
        sched.commit(winner, sorted(tenants), cost)
    return picks


def test_shares_converge_to_weight_ratio():
    sched = StrideScheduler()
    for name, weight in [("gold", 4), ("silver", 2), ("bronze", 1)]:
        sched.add(name, weight=weight)
    picks = _grants(sched, ["gold", "silver", "bronze"], rounds=700)
    shares = sched.shares()
    assert shares["gold"] == pytest.approx(4 / 7, abs=0.01)
    assert shares["silver"] == pytest.approx(2 / 7, abs=0.01)
    assert shares["bronze"] == pytest.approx(1 / 7, abs=0.01)
    # and the grant stream interleaves rather than batching per tenant
    assert "bronze" in picks[:7]


def test_unequal_costs_weight_the_charge_not_the_grant_count():
    sched = StrideScheduler()
    sched.add("big", weight=1)
    sched.add("small", weight=1)
    for _ in range(100):
        eligible = ["big", "small"]
        winner = sched.pick(eligible)
        sched.commit(winner, eligible, 10.0 if winner == "big" else 1.0)
    shares = sched.shares()
    # equal weights → equal *cost* shares even though the cheap tenant
    # received ~10x the grant count
    assert shares["big"] == pytest.approx(0.5, abs=0.05)
    assert sched.entry("small").n_grants > 5 * sched.entry("big").n_grants


def test_priority_jumps_queue_but_aging_bounds_it():
    sched = StrideScheduler(preempt_bound=3)
    sched.add("hi", weight=1, priority=1)
    sched.add("lo", weight=1, priority=0)
    picks = _grants(sched, ["hi", "lo"], rounds=8)
    # hi is served 3 times, then lo's starvation credits force a grant
    assert picks == ["hi", "hi", "hi", "lo", "hi", "hi", "hi", "lo"]


def test_pick_is_pure():
    sched = StrideScheduler()
    sched.add("a")
    sched.add("b")
    first = sched.pick(["a", "b"])
    assert sched.pick(["a", "b"]) == first
    assert sched.entry(first).n_grants == 0
    assert sched.entry(first).pass_value == 0.0


def test_pick_empty_returns_none():
    assert StrideScheduler().pick([]) is None


def test_late_joiner_enters_at_min_pass():
    sched = StrideScheduler()
    sched.add("old", weight=1)
    sched.commit("old", ["old"], 100.0)
    sched.add("new", weight=1)
    assert sched.entry("new").pass_value == sched.entry("old").pass_value
    # equal pass → earliest join wins the tie
    assert sched.pick(["old", "new"]) == "old"


def test_remove_retains_served_cost_in_shares():
    sched = StrideScheduler()
    sched.add("done", weight=1)
    sched.add("live", weight=1)
    sched.commit("done", ["done", "live"], 30.0)
    sched.commit("live", ["done", "live"], 10.0)
    sched.remove("done")
    assert "done" not in sched
    shares = sched.shares()
    assert shares["done"] == pytest.approx(0.75)
    assert shares["live"] == pytest.approx(0.25)


def test_validation():
    sched = StrideScheduler()
    sched.add("a")
    with pytest.raises(ValueError, match="already registered"):
        sched.add("a")
    with pytest.raises(ValueError, match="weight"):
        sched.add("b", weight=0)
    with pytest.raises(ValueError, match="preempt_bound"):
        StrideScheduler(preempt_bound=0)
