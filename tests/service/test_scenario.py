"""Scripted scenarios replay byte-identically.

The service's headline contract: a scenario is a pure function of
(script, seed) — same tenant states, bit-identical digests, and a
byte-identical exported trace on every run.
"""

import json

import pytest

from repro.service.scenario import (
    Scenario,
    ScenarioEvent,
    demo_scenario,
    run_scenario,
)
from repro.service.tenant import Tenant
from repro.service.work import SyntheticWork


def test_demo_scenario_replays_byte_identically():
    first = run_scenario(demo_scenario())
    second = run_scenario(demo_scenario())
    assert first.digests == second.digests
    assert first.trace_jsonl == second.trace_jsonl
    assert first.makespan == second.makespan
    assert first.status == second.status


def test_demo_scenario_exercises_every_terminal_state():
    report = run_scenario(demo_scenario())
    states = report.tenant_states()
    assert states["gold"]["alpha"] == "done"
    assert states["silver"]["beta"] == "done"
    assert states["silver"]["gamma"] == "cancelled"
    assert states["bronze"]["delta"] == "quota_exhausted"
    # done submissions (and only those) have digests
    assert set(report.digests) == {"gold/alpha", "silver/beta"}


def test_different_seed_changes_the_trace():
    assert (
        run_scenario(demo_scenario(seed=0)).trace_jsonl
        != run_scenario(demo_scenario(seed=1)).trace_jsonl
    )


def test_trace_spans_carry_tenant_labels():
    report = run_scenario(demo_scenario())
    tenants = set()
    for line in report.trace_jsonl.splitlines():
        span = json.loads(line)
        if span["cat"] == "pilot.task":
            tenants.add(span["attrs"]["tenant"])
    assert tenants == {"gold", "silver", "bronze"}


def test_scenario_event_validation():
    with pytest.raises(ValueError, match="need tenant"):
        ScenarioEvent(0.0, "submit", name="x")
    with pytest.raises(ValueError, match="submission id"):
        ScenarioEvent(0.0, "cancel")
    with pytest.raises(ValueError, match="unknown scenario op"):
        ScenarioEvent(0.0, "pause", name="x")
    with pytest.raises(ValueError, match="non-negative"):
        ScenarioEvent(-1.0, "cancel", name="x")
    with pytest.raises(ValueError, match="at least one event"):
        Scenario(events=())


def test_minimal_custom_scenario_runs():
    scenario = Scenario(
        events=(
            ScenarioEvent(
                0.0, "submit", Tenant(name="only"), "job",
                lambda: SyntheticWork(n_units=2, tasks_per_unit=2, seed=1),
            ),
        ),
        n_nodes=1,
    )
    report = run_scenario(scenario)
    assert report.tenant_states() == {"only": {"job": "done"}}
    assert report.makespan > 0
