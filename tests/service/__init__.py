"""Tests for the multi-tenant campaign service."""
