"""CampaignManager: quotas, cancellation, isolation, determinism.

The contract under test: a fixed submission script + seed produces
bit-identical per-tenant results regardless of interleaving, each
tenant's results match a solo run of the same campaign, quotas actually
bound tenants, and a cancelled campaign's checkpoints stay resumable.
"""

import asyncio

import pytest

from repro.rct.backends import create_executor
from repro.rct.cluster import Cluster, SUMMIT_NODE
from repro.service.manager import CampaignManager
from repro.service.tenant import Quota, Tenant
from repro.service.work import CampaignWork, SyntheticWork
from repro.rct.pilot import Pilot

from tests.core.test_stageunits import tiny_config


def make_manager(n_nodes=2, **pilot_kwargs):
    executor = create_executor("sim", launch_overhead=0.5)
    allocation = Cluster(n_nodes, spec=SUMMIT_NODE).allocate(n_nodes, now=0.0)
    pilot = Pilot(
        allocation, executor, failure_policy="drop_and_continue", **pilot_kwargs
    )
    return CampaignManager(pilot)


def synthetic(seed, n_units=3, tasks=6, duration=60.0):
    return SyntheticWork(
        n_units=n_units, tasks_per_unit=tasks, duration=duration, gpus=1, seed=seed
    )


def solo_digest(work_factory):
    """Digest of one submission run alone on a fresh substrate."""
    manager = make_manager()
    sid = manager.submit(Tenant(name="solo"), "only", work_factory())
    manager.run_until_idle()
    return manager.result_digest(sid)


# ------------------------------------------------------------- fair share
def test_equal_work_finishes_in_weight_order():
    manager = make_manager(n_nodes=1)
    tenants = [
        Tenant(name="gold", weight=4),
        Tenant(name="silver", weight=2),
        Tenant(name="bronze", weight=1),
    ]
    sids = [
        manager.submit(t, "job", synthetic(seed=i, n_units=4, tasks=6))
        for i, t in enumerate(tenants)
    ]
    done_at = {}

    def note():
        for sid in sids:
            if sid not in done_at and manager._subs[sid].state == "done":
                done_at[sid] = manager.pilot.executor.now

    while manager._step():
        note()
    note()
    assert all(manager._subs[sid].state == "done" for sid in sids)
    # identical workloads, so the heavier weight drains its backlog first
    assert done_at["gold/job"] < done_at["silver/job"] < done_at["bronze/job"]


# ----------------------------------------------------------------- quotas
def test_max_concurrent_tasks_quota_is_enforced():
    manager = make_manager(n_nodes=2)  # 12 GPU slots
    capped = Tenant(name="capped", quota=Quota(max_concurrent_tasks=2))
    free = Tenant(name="free", weight=1)
    manager.submit(capped, "job", synthetic(seed=0, tasks=8))
    manager.submit(free, "job", synthetic(seed=1, tasks=8))
    peak = {"capped": 0, "free": 0}
    while manager._step():
        for name in peak:
            peak[name] = max(peak[name], manager._tenant_inflight(name))
    assert peak["capped"] <= 2
    assert peak["free"] > 2  # the cluster allowed more; only the quota bound us


def test_node_seconds_budget_stops_the_tenant():
    manager = make_manager(n_nodes=1)
    broke = Tenant(name="broke", quota=Quota(node_seconds_budget=50.0))
    rich = Tenant(name="rich")
    sid_b = manager.submit(broke, "job", synthetic(seed=0))
    sid_r = manager.submit(rich, "job", synthetic(seed=1))
    manager.run_until_idle()
    sub = manager._subs[sid_b]
    assert sub.state == "quota_exhausted"
    assert "budget exhausted" in sub.error
    assert sub.node_seconds >= 50.0
    assert manager._subs[sid_r].state == "done"
    # a terminal submission holds no queued or running work
    assert len(sub._pending) == 0 and not sub._inflight


# ------------------------------------------------------------------ cancel
def test_cancel_mid_run_leaves_other_tenants_bit_identical():
    baseline = solo_digest(lambda: synthetic(seed=7))
    manager = make_manager(n_nodes=1)
    keep = manager.submit(Tenant(name="solo"), "only", synthetic(seed=7))
    drop = manager.submit(Tenant(name="victim"), "gone", synthetic(seed=8))
    # let real contention develop before cancelling
    for _ in range(10):
        manager._step()
    assert manager._subs[drop].state == "running"
    manager.cancel(drop)
    manager.run_until_idle()
    assert manager._subs[drop].state == "cancelled"
    assert manager._subs[keep].state == "done"
    assert manager.result_digest(keep) == baseline


def test_cancel_is_idempotent_and_drops_queued_work():
    manager = make_manager()
    sid = manager.submit(Tenant(name="t"), "job", synthetic(seed=0))
    manager._step()
    manager.cancel(sid)
    manager.cancel(sid)  # no-op on a terminal submission
    assert manager._subs[sid].state == "cancelled"
    assert len(manager._subs[sid]._pending) == 0
    manager.run_until_idle()


# ----------------------------------------------------- arrival determinism
def test_shuffled_arrival_gives_identical_per_tenant_results():
    def run(order):
        manager = make_manager(n_nodes=1)
        for name, seed in order:
            manager.at(0.0, "submit", tenant=Tenant(name=name), name="job",
                       work=synthetic(seed=seed))
        manager.run_until_idle()
        return {
            name: manager.result_digest(f"{name}/job") for name, _ in order
        }

    order = [("a", 1), ("b", 2), ("c", 3)]
    forward = run(order)
    shuffled = run(list(reversed(order)))
    assert forward == shuffled
    for name, seed in order:
        assert forward[name] == solo_digest(lambda s=seed: synthetic(seed=s))


# ------------------------------------------------------- campaign isolation
def test_campaign_solo_vs_shared_bit_identical():
    solo = solo_digest(lambda: CampaignWork(tiny_config(seed=3)))
    manager = make_manager(n_nodes=2)
    sid = manager.submit(
        Tenant(name="science"), "camp", CampaignWork(tiny_config(seed=3))
    )
    manager.submit(Tenant(name="noise", weight=4), "traffic",
                   synthetic(seed=9, n_units=6, tasks=10))
    manager.run_until_idle()
    assert manager._subs[sid].state == "done"
    assert manager.result_digest(sid) == solo


def test_cancelled_campaign_resumes_from_checkpoints(tmp_path):
    uninterrupted = solo_digest(lambda: CampaignWork(tiny_config(seed=5)))
    workdir = tmp_path / "ckpt"

    manager = make_manager()
    sid = manager.submit(
        Tenant(name="t"), "first", CampaignWork(tiny_config(seed=5), workdir=workdir)
    )
    while manager._subs[sid].units_done < 3:
        manager._step()
    manager.cancel(sid)
    manager.run_until_idle()
    assert manager._subs[sid].state == "cancelled"

    # resubmit onto the same workdir: completed units fast-forward at
    # zero simulated cost, and the final science is bit-identical
    manager2 = make_manager()
    sid2 = manager2.submit(
        Tenant(name="t"), "second", CampaignWork(tiny_config(seed=5), workdir=workdir)
    )
    manager2.run_until_idle()
    resumed = manager2._subs[sid2]
    assert resumed.state == "done"
    assert manager2.result_digest(sid2) == uninterrupted
    # the resumed run paid for strictly less than the whole campaign
    solo_mgr = make_manager()
    solo_sid = solo_mgr.submit(
        Tenant(name="t"), "whole", CampaignWork(tiny_config(seed=5))
    )
    solo_mgr.run_until_idle()
    assert resumed.node_seconds < solo_mgr._subs[solo_sid].node_seconds


def test_checkpoint_dir_refuses_a_different_campaign(tmp_path):
    workdir = tmp_path / "ckpt"
    CampaignWork(tiny_config(seed=1), workdir=workdir)
    with pytest.raises(ValueError, match="different campaign"):
        CampaignWork(tiny_config(seed=2), workdir=workdir)


# ------------------------------------------------------------- validation
def test_duplicate_submission_rejected():
    manager = make_manager()
    tenant = Tenant(name="t")
    manager.submit(tenant, "job", synthetic(seed=0))
    with pytest.raises(ValueError, match="already exists"):
        manager.submit(tenant, "job", synthetic(seed=0))


def test_tenant_config_is_immutable_per_run():
    manager = make_manager()
    manager.submit(Tenant(name="t", weight=1), "a", synthetic(seed=0))
    with pytest.raises(ValueError, match="immutable"):
        manager.submit(Tenant(name="t", weight=2), "b", synthetic(seed=1))


def test_oversized_task_fails_only_its_tenant():
    manager = make_manager(n_nodes=1)
    big = manager.submit(
        Tenant(name="big"), "job",
        SyntheticWork(n_units=1, tasks_per_unit=1, nodes=5, seed=0),
    )
    ok = manager.submit(Tenant(name="ok"), "job", synthetic(seed=1))
    manager.run_until_idle()
    assert manager._subs[big].state == "failed"
    assert "ValueError" in manager._subs[big].error
    assert manager._subs[ok].state == "done"


# ---------------------------------------------------------------- asyncio
def test_async_submit_and_cancel_via_serve():
    sync_digest = solo_digest(lambda: synthetic(seed=4))

    async def scenario():
        manager = make_manager()
        sid = await manager.submit_async(Tenant(name="solo"), "only",
                                         synthetic(seed=4))
        doomed = await manager.submit_async(Tenant(name="other"), "gone",
                                            synthetic(seed=5))
        await manager.cancel_async(doomed)
        status = await manager.serve()
        return manager, sid, doomed, status

    manager, sid, doomed, status = asyncio.run(scenario())
    assert manager._subs[sid].state == "done"
    assert manager._subs[doomed].state == "cancelled"
    assert manager.result_digest(sid) == sync_digest
    assert status["tenants"]["solo"]["submissions"]["only"]["state"] == "done"


# ------------------------------------------------------------ attribution
def test_per_tenant_accounting_totals_match_the_pilot():
    manager = make_manager(n_nodes=1)
    sids = [
        manager.submit(Tenant(name=f"t{i}"), "job", synthetic(seed=i))
        for i in range(3)
    ]
    manager.run_until_idle()
    spec = manager.pilot.spec
    total = sum(manager._subs[s].node_seconds for s in sids)
    pilot_total = sum(
        r.node_seconds(spec.gpus, spec.cpus) for r in manager.pilot.records
    )
    assert total == pytest.approx(pilot_total)
    for sid in sids:
        sub = manager._subs[sid]
        assert sub.n_tasks_done == 3 * 6
        assert len(sub.tasklog) > 0
