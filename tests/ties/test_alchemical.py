"""Tests for the alchemical hybrid-ligand construction."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.ties.alchemical import GHOST_RADIUS, build_hybrid


def test_same_size_endpoints():
    a = parse_smiles("c1ccccc1CC(=O)O")
    b = parse_smiles("c1ccccc1CC(=O)N")
    h = build_hybrid(a, b)
    assert h.n_beads == a.n_atoms == b.n_atoms
    assert h.n_a == a.n_atoms and h.n_b == b.n_atoms


def test_different_size_endpoints_pad_with_ghosts():
    a = parse_smiles("c1ccccc1")  # 6 atoms
    b = parse_smiles("c1ccccc1CCO")  # 9 atoms
    h = build_hybrid(a, b)
    assert h.n_beads == 9
    # A-endpoint ghosts: zero charge/hydro, ghost radius
    assert (h.radii_a[6:] == GHOST_RADIUS).all()
    np.testing.assert_allclose(h.charges_a[6:], 0.0)
    np.testing.assert_allclose(h.hydro_a[6:], 0.0)
    # B endpoint fully real
    assert (h.radii_b > GHOST_RADIUS).all()


def test_parameters_interpolate_linearly():
    a = parse_smiles("CCO")
    b = parse_smiles("CCN")
    h = build_hybrid(a, b)
    q0, h0, r0 = h.parameters_at(0.0)
    q1, h1, r1 = h.parameters_at(1.0)
    qm, hm, rm = h.parameters_at(0.5)
    np.testing.assert_allclose(qm, (q0 + q1) / 2)
    np.testing.assert_allclose(hm, (h0 + h1) / 2)
    np.testing.assert_allclose(rm, (r0 + r1) / 2)


def test_endpoint_params_match_molecules():
    from repro.chem.descriptors import partial_charges

    a = parse_smiles("CCO")
    b = parse_smiles("CCN")
    h = build_hybrid(a, b)
    q0, _, _ = h.parameters_at(0.0)
    np.testing.assert_allclose(sorted(q0), sorted(partial_charges(a)), atol=1e-12)


def test_lambda_out_of_range_rejected():
    h = build_hybrid(parse_smiles("CC"), parse_smiles("CO"))
    with pytest.raises(ValueError):
        h.parameters_at(1.5)
    with pytest.raises(ValueError):
        h.parameters_at(-0.1)


def test_bond_union_connected():
    import networkx as nx

    a = parse_smiles("c1ccccc1C")
    b = parse_smiles("c1ccccc1CCC")
    h = build_hybrid(a, b)
    g = nx.Graph()
    g.add_nodes_from(range(h.n_beads))
    g.add_edges_from(map(tuple, h.bonds))
    assert nx.is_connected(g)


def test_identity_hybrid_is_constant_in_lambda():
    a = parse_smiles("c1ccncc1CC(=O)O")
    h = build_hybrid(a, a)
    q0, h0, r0 = h.parameters_at(0.0)
    q1, h1, r1 = h.parameters_at(1.0)
    np.testing.assert_allclose(q0, q1)
    np.testing.assert_allclose(r0, r1)
