"""Tests for the TIES protocol."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.receptor import make_receptor
from repro.ties.protocol import TiesConfig, TiesRunner
from repro.util.rng import rng_stream

TINY = TiesConfig(
    n_windows=3,
    replicas_per_window=2,
    equilibration_steps=8,
    production_steps=24,
    record_every=4,
    n_residues=40,
    minimize_iterations=10,
)


@pytest.fixture(scope="module")
def setup():
    receptor = make_receptor("PLPro", "6W9C", seed=7)
    mol_a = parse_smiles("c1ccccc1CC(=O)O")
    mol_b = parse_smiles("c1ccccc1CC(=O)N")
    coords = rng_stream(0, "t/ties").normal(scale=2.0, size=(mol_a.n_atoms, 3))
    return receptor, mol_a, mol_b, coords


@pytest.fixture(scope="module")
def result(setup):
    receptor, mol_a, mol_b, coords = setup
    return TiesRunner(receptor, TINY, seed=0).run(mol_a, mol_b, coords, "A", "B")


def test_result_structure(result):
    assert result.compound_a == "A" and result.compound_b == "B"
    for leg in (result.complex_leg, result.solvent_leg):
        assert leg.lambdas.shape == (TINY.n_windows,)
        assert leg.dudl_mean.shape == (TINY.n_windows,)
        assert np.isfinite(leg.dudl_mean).all()
        assert (leg.dudl_sem >= 0).all()
    assert np.isfinite(result.ddg)
    assert result.sem >= 0


def test_ddg_is_leg_difference(result):
    assert result.ddg == pytest.approx(
        result.complex_leg.delta_g - result.solvent_leg.delta_g
    )


def test_identity_transform_is_zero(setup):
    receptor, mol_a, _, coords = setup
    res = TiesRunner(receptor, TINY, seed=0).run(mol_a, mol_a, coords, "A", "A")
    assert res.ddg == pytest.approx(0.0, abs=1e-9)
    np.testing.assert_allclose(res.complex_leg.dudl_mean, 0.0, atol=1e-9)


def test_deterministic(setup):
    receptor, mol_a, mol_b, coords = setup
    a = TiesRunner(receptor, TINY, seed=3).run(mol_a, mol_b, coords)
    b = TiesRunner(receptor, TINY, seed=3).run(mol_a, mol_b, coords)
    assert a.ddg == b.ddg


def test_solvent_leg_has_no_protein(setup):
    receptor, mol_a, mol_b, coords = setup
    runner = TiesRunner(receptor, TINY, seed=0)
    from repro.ties.alchemical import build_hybrid

    hybrid = build_hybrid(mol_a, mol_b)
    system = runner._hybrid_base_system(mol_a, hybrid, coords, with_protein=False)
    assert len(system.topology.protein_atoms) == 0
    assert system.n_atoms == hybrid.n_beads


def test_complex_leg_keeps_protein(setup):
    receptor, mol_a, mol_b, coords = setup
    runner = TiesRunner(receptor, TINY, seed=0)
    from repro.ties.alchemical import build_hybrid

    hybrid = build_hybrid(mol_a, mol_b)
    system = runner._hybrid_base_system(mol_a, hybrid, coords, with_protein=True)
    assert len(system.topology.protein_atoms) == TINY.n_residues
    assert len(system.topology.ligand_atoms) == hybrid.n_beads


def test_coords_shape_validated(setup):
    receptor, mol_a, mol_b, _ = setup
    with pytest.raises(ValueError):
        TiesRunner(receptor, TINY).run(mol_a, mol_b, np.zeros((2, 3)))


def test_config_validation():
    with pytest.raises(ValueError):
        TiesConfig(n_windows=1)
    with pytest.raises(ValueError):
        TiesConfig(dlambda=0)
