"""Tracer core: clocks, three span APIs, nesting, error capture."""

import logging

import pytest

from repro.telemetry import (
    NULL_TRACER,
    ExecutorClock,
    TickClock,
    Tracer,
)


def make_tracer() -> Tracer:
    return Tracer(clock=TickClock())


# ----------------------------------------------------------------- clocks
def test_tick_clock_advances_one_tick_per_read():
    clock = TickClock(start=1.0, tick=0.5)
    assert clock.now() == 1.5
    assert clock.now() == 2.0


def test_tick_clock_rejects_nonpositive_tick():
    with pytest.raises(ValueError, match="tick"):
        TickClock(tick=0.0)


def test_executor_clock_reads_executor_now():
    class FakeExecutor:
        now = 42.5

    assert ExecutorClock(FakeExecutor()).now() == 42.5


# ------------------------------------------------------- context managers
def test_span_cm_records_times_and_category():
    tracer = make_tracer()
    with tracer.span("work", category="unit", shard=3):
        pass
    (span,) = tracer.finished
    assert span.name == "work"
    assert span.category == "unit"
    assert span.attrs == {"shard": 3}
    assert span.end > span.start
    assert span.status == "ok"
    assert span.duration == pytest.approx(span.end - span.start)


def test_span_cm_nesting_sets_parent_edges():
    tracer = make_tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        with tracer.span("sibling") as sibling:
            assert sibling.parent_id == outer.span_id
    assert outer.parent_id is None
    # after exiting, new spans are top-level again
    with tracer.span("later") as later:
        assert later.parent_id is None


def test_span_cm_captures_exception_as_error_status():
    tracer = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("kaput")
    (span,) = tracer.finished
    assert span.status == "error"
    assert span.error == "RuntimeError: kaput"
    assert span.end is not None  # closed despite the exception


# ------------------------------------------------------------ manual spans
def test_start_span_takes_explicit_times_and_does_not_parent():
    tracer = make_tracer()
    manual = tracer.start_span("task", category="pilot", start=10.0, uid=7)
    with tracer.span("other") as other:
        assert other.parent_id is None  # manual spans never join the stack
    manual.finish(end=12.5)
    assert manual.start == 10.0
    assert manual.end == 12.5
    assert manual.attrs == {"uid": 7}


def test_finish_is_idempotent():
    tracer = make_tracer()
    span = tracer.start_span("once", start=1.0)
    span.finish(end=2.0)
    span.finish(end=99.0)
    assert span.end == 2.0
    assert len(tracer.finished) == 1


def test_record_span_pre_timed_with_error_status():
    tracer = make_tracer()
    span = tracer.record_span(
        "attempt", start=3.0, end=4.0, category="raptor.exec",
        attrs={"item": 2}, status="error", error="crash",
    )
    assert span.start == 3.0 and span.end == 4.0
    assert span.status == "error" and span.error == "crash"
    assert tracer.finished == [span]


# -------------------------------------------------------------- inspection
def test_spans_ordered_by_start_then_program_order():
    tracer = make_tracer()
    tracer.record_span("b", start=5.0, end=6.0, category="x")
    tracer.record_span("a", start=1.0, end=2.0, category="x")
    tracer.record_span("tie1", start=1.0, end=3.0, category="y")
    names = [s.name for s in tracer.spans()]
    assert names == ["a", "tie1", "b"]  # start asc, seq breaks the 1.0 tie
    assert [s.name for s in tracer.spans(category="y")] == ["tie1"]
    assert tracer.categories() == {"x", "y"}


def test_active_spans_lists_open_spans_until_finished():
    tracer = make_tracer()
    span = tracer.start_span("open", start=0.0)
    assert tracer.active_spans() == [span]
    span.finish(end=1.0)
    assert tracer.active_spans() == []


def test_events_recorded_inside_span():
    tracer = make_tracer()
    with tracer.span("host") as span:
        span.add_event("checkpoint", time=0.25, step=3)
    assert span.events == [(0.25, "checkpoint", {"step": 3})]


def test_seq_numbers_preserve_program_order():
    tracer = make_tracer()
    first = tracer.start_span("first", start=100.0)
    second = tracer.start_span("second", start=1.0)
    second.finish(end=2.0)
    first.finish(end=101.0)
    assert first.seq_start < second.seq_start
    assert second.seq_end < first.seq_end


# ------------------------------------------------------------- null tracer
def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("x", category="y", a=1) as span:
        span.set_attr("k", "v")
        span.add_event("e")
        span.set_error("nope")
    assert NULL_TRACER.start_span("m") is span  # shared singleton
    assert NULL_TRACER.record_span("r", 0.0, 1.0) is span
    assert NULL_TRACER.finished == []
    assert NULL_TRACER.active_spans() == []
    assert list(NULL_TRACER.spans()) == []
    assert NULL_TRACER.categories() == set()
    NULL_TRACER.metrics.counter("c").inc()
    assert NULL_TRACER.metrics.snapshot() == {}


def test_enabled_tracer_flag():
    assert make_tracer().enabled is True


# ---------------------------------------------------------- log mirroring
def test_log_spans_mirrors_enter_exit_to_debug(caplog):
    tracer = Tracer(clock=TickClock(), log_spans=True)
    with caplog.at_level(logging.DEBUG, logger="repro.telemetry"):
        with tracer.span("mirrored", category="demo"):
            pass
    messages = [r.getMessage() for r in caplog.records]
    assert any("span enter demo/mirrored" in m for m in messages)
    assert any("span exit demo/mirrored" in m for m in messages)


def test_silent_without_log_spans(caplog):
    tracer = make_tracer()
    with caplog.at_level(logging.DEBUG, logger="repro.telemetry"):
        with tracer.span("quiet"):
            pass
    assert not caplog.records
