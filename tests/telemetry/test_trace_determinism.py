"""End-to-end traced demo: byte-identical reruns, full category coverage."""

import json

import pytest

from repro.core.tracedemo import run_traced_demo
from repro.telemetry import chrome_trace_json, validate_chrome_trace

REQUIRED_CATEGORIES = {
    "campaign.stage",
    "docking",
    "docking.kernel",
    "nn.op",
    "pilot.task",
    "pilot.backoff",
    "raptor.dispatch",
    "raptor.exec",
    "raptor.backoff",
}


@pytest.fixture(scope="module")
def demo_traces():
    """Two independent same-seed demo runs, exported to Chrome JSON."""
    first = chrome_trace_json(run_traced_demo(seed=0))
    second = chrome_trace_json(run_traced_demo(seed=0))
    return first, second


def test_same_seed_traces_are_byte_identical(demo_traces):
    first, second = demo_traces
    assert first == second


def test_demo_trace_covers_every_instrumented_layer(demo_traces):
    data = json.loads(demo_traces[0])
    rows = {
        e["args"]["name"]
        for e in data["traceEvents"]
        if e["ph"] == "M" and e.get("name") == "thread_name"
    }
    assert REQUIRED_CATEGORIES <= rows


def test_demo_trace_is_valid_and_timeline_consistent(demo_traces):
    data = json.loads(demo_traces[0])
    assert validate_chrome_trace(data) == []
    xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert len(xs) > 50
    ts = [e["ts"] for e in xs]
    assert ts == sorted(ts)
    assert all(e["dur"] >= 0 for e in xs)


def test_different_seeds_produce_different_traces(demo_traces):
    other = chrome_trace_json(run_traced_demo(seed=1))
    assert other != demo_traces[0]
