"""Metrics registry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


# ---------------------------------------------------------------- counter
def test_counter_accumulates():
    c = Counter("evals")
    c.inc()
    c.inc(4.5)
    assert c.value == 5.5
    assert c.snapshot() == {"kind": "counter", "value": 5.5}


def test_counter_rejects_negative():
    with pytest.raises(ValueError, match="gauge"):
        Counter("c").inc(-1)


# ------------------------------------------------------------------ gauge
def test_gauge_set_inc_dec():
    g = Gauge("slots")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7
    assert g.snapshot()["kind"] == "gauge"


# -------------------------------------------------------------- histogram
def test_histogram_bucket_placement():
    h = Histogram("durs", boundaries=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 100.0):
        h.observe(v)
    # (-inf,1.0): 0.5; [1.0,10.0): 1.0 and 5.0; overflow: 100.0
    assert h.counts == [1, 2, 1]
    assert h.count == 4
    assert h.sum == pytest.approx(106.5)
    assert h.min == 0.5 and h.max == 100.0


def test_histogram_rejects_unsorted_boundaries():
    with pytest.raises(ValueError, match="sorted"):
        Histogram("bad", boundaries=(5.0, 1.0))


def test_histogram_snapshot_shape():
    snap = Histogram("d").snapshot()
    assert snap["boundaries"] == list(DEFAULT_BUCKETS)
    assert len(snap["counts"]) == len(DEFAULT_BUCKETS) + 1
    assert snap["min"] is None and snap["max"] is None


# --------------------------------------------------------------- registry
def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    assert len(reg) == 3
    assert "a" in reg and "zzz" not in reg


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("metric")
    with pytest.raises(TypeError, match="already registered"):
        reg.gauge("metric")


def test_registry_snapshot_sorted_by_name():
    reg = MetricsRegistry()
    reg.counter("zeta").inc()
    reg.gauge("alpha").set(1)
    assert list(reg.snapshot()) == ["alpha", "zeta"]


# ------------------------------------------------------------------- null
def test_null_registry_is_inert():
    reg = NullMetricsRegistry()
    inst = reg.counter("x")
    inst.inc()
    inst.observe(3.0)
    inst.set(9)
    inst.dec()
    assert reg.counter("x") is reg.histogram("y") is reg.gauge("z")
    assert reg.snapshot() == {}
    assert len(reg) == 0
    assert "x" not in reg
