"""Failure spans reconcile exactly with the FailureSummary ledger."""

import numpy as np
import pytest

from repro.rct.cluster import Cluster, NodeSpec
from repro.rct.executor import SimExecutor
from repro.rct.fault import FaultModel, RetryPolicy
from repro.rct.pilot import Pilot
from repro.rct.raptor import RaptorConfig, simulate_raptor
from repro.rct.task import TaskSpec
from repro.telemetry import Tracer
from repro.util.rng import rng_stream


def _pilot(fault_model=None, retry=None, tracer=None, n_nodes=4):
    cluster = Cluster(n_nodes, NodeSpec(cpus=4, gpus=2))
    return Pilot(
        cluster.allocate(n_nodes, 0.0),
        SimExecutor(0.0, fault_model=fault_model),
        retry=retry,
        tracer=tracer,
    )


# ------------------------------------------------------------------ raptor
def test_raptor_error_spans_match_failure_summary():
    tracer = Tracer()
    durations = rng_stream(7, "fault-spans").uniform(1.0, 4.0, size=40)
    result = simulate_raptor(
        durations,
        RaptorConfig(n_workers=4, bulk_size=8),
        fault_model=FaultModel(failure_rate=0.3, seed=7),
        retry=RetryPolicy(max_retries=2, backoff_base=1.0, seed=7),
        tracer=tracer,
    )
    summary = result.failure_summary
    assert summary.n_failures > 0
    assert summary.reconciles()  # failures == retries + drops

    execs = list(tracer.spans(category="raptor.exec"))
    errors = [s for s in execs if s.status == "error"]
    assert len(errors) == summary.n_failures
    assert sum(1 for s in errors if s.attrs.get("retried")) == summary.n_retries
    assert sum(1 for s in errors if s.attrs.get("dropped")) == summary.n_dropped
    # the span ledger's own invariant: every error span retried xor dropped
    assert all(
        bool(s.attrs.get("retried")) != bool(s.attrs.get("dropped"))
        for s in errors
    )
    # permanently failed items agree with the result's drop list
    dropped_items = {s.attrs["item"] for s in errors if s.attrs.get("dropped")}
    assert dropped_items == set(result.failed_indices)


def test_raptor_backoff_spans_sum_to_ledger_backoff_time():
    tracer = Tracer()
    durations = rng_stream(9, "fault-spans-backoff").uniform(1.0, 3.0, size=30)
    result = simulate_raptor(
        durations,
        RaptorConfig(n_workers=3, bulk_size=8),
        fault_model=FaultModel(failure_rate=0.4, seed=9),
        retry=RetryPolicy(max_retries=3, backoff_base=2.0, seed=9),
        tracer=tracer,
    )
    summary = result.failure_summary
    backoffs = list(tracer.spans(category="raptor.backoff"))
    assert len(backoffs) == summary.n_retries
    # the exact policy-drawn seconds attr avoids float round-off
    total = sum(s.attrs["seconds"] for s in backoffs)
    assert total == pytest.approx(summary.time_lost_backoff)
    # span geometry matches: end - start == seconds
    for s in backoffs:
        assert s.end - s.start == pytest.approx(s.attrs["seconds"])


# ------------------------------------------------------------------- pilot
def test_pilot_error_spans_match_failure_summary():
    tracer = Tracer()
    pilot = _pilot(
        fault_model=FaultModel(failure_rate=0.3, seed=5),
        retry=RetryPolicy(max_retries=2, backoff_base=1.0, seed=5),
        tracer=tracer,
    )
    pilot.run([TaskSpec(gpus=1, duration=1.0, stage="S1") for _ in range(40)])
    summary = pilot.failures
    assert summary.n_failures > 0
    assert summary.reconciles()

    tasks = list(tracer.spans(category="pilot.task"))
    errors = [s for s in tasks if s.status == "error"]
    assert len(errors) == summary.n_failures
    assert sum(1 for s in errors if s.attrs.get("retried")) == summary.n_retries
    assert sum(1 for s in errors if s.attrs.get("dropped")) == summary.n_dropped

    backoffs = list(tracer.spans(category="pilot.backoff"))
    assert len(backoffs) == summary.n_retries
    total = sum(s.attrs["seconds"] for s in backoffs)
    assert total == pytest.approx(summary.time_lost_backoff)


def _levels_at_distinct_times(series):
    """Busy level after all deltas at each distinct timestamp.

    ``series()`` emits one sample per event, so arrays from two trackers
    fed the same events in different program order can permute within a
    timestamp tie; the settled level per timestamp is order-free.
    """
    out = {}
    for t, level in zip(series.times, series.busy_gpus):
        out[float(t)] = float(level)
    return out


def test_pilot_utilization_from_trace_matches_inline_recording():
    """Fig 7 rebuilt from the trace == the tracker fed the task records."""
    from repro.rct.utilization import UtilizationTracker

    tracer = Tracer()
    pilot = _pilot(
        fault_model=FaultModel(failure_rate=0.3, seed=11),
        retry=RetryPolicy(max_retries=2, backoff_base=1.0, seed=11),
        tracer=tracer,
    )
    records = pilot.run(
        [TaskSpec(gpus=1, duration=2.0, stage="S1") for _ in range(20)]
        + [TaskSpec(gpus=2, duration=1.0, stage="S3-CG") for _ in range(10)]
    )
    assert len(records) == 30
    assert pilot.failures.n_failures > 0  # trace includes failed attempts

    rebuilt = pilot.utilization

    # replay every attempt record through the legacy inline API
    manual = UtilizationTracker(
        total_gpus=rebuilt.total_gpus, total_cpus=rebuilt.total_cpus
    )
    for rec in pilot.records:
        spec = rec.spec
        manual.record_start(rec.start_time, spec.gpus, spec.cpus, spec.stage)
        manual.record_end(rec.end_time, spec.gpus, spec.cpus, spec.stage)

    series = rebuilt.series()
    manual_series = manual.series()
    assert rebuilt.n_events == manual.n_events
    np.testing.assert_allclose(
        np.sort(series.times), np.sort(manual_series.times)
    )
    assert _levels_at_distinct_times(series) == _levels_at_distinct_times(
        manual_series
    )
    assert set(series.per_stage) == set(manual_series.per_stage)
    assert series.average_utilization() == pytest.approx(
        manual_series.average_utilization()
    )
    # backoff side of the view reconciles against the failure ledger
    assert rebuilt.backoff_seconds == pytest.approx(
        pilot.failures.time_lost_backoff
    )
