"""Exporters: Chrome trace structure, JSONL, summary table, validation."""

import json

from repro.telemetry import (
    TickClock,
    Tracer,
    chrome_trace_json,
    summary_table,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)


def small_tracer() -> Tracer:
    tracer = Tracer(clock=TickClock())
    tracer.record_span("dock", start=0.0, end=1.5, category="docking",
                       attrs={"compound": "C1"})
    tracer.record_span("fail", start=0.5, end=0.75, category="raptor.exec",
                       status="error", error="crash")
    with tracer.span("stage", category="campaign.stage") as span:
        span.add_event("checkpoint", time=2.0, step=1)
    tracer.metrics.counter("docking.evals").inc(100)
    tracer.metrics.histogram("durs").observe(1.5)
    return tracer


# ------------------------------------------------------------ chrome trace
def test_chrome_trace_structure():
    trace = to_chrome_trace(small_tracer())
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    # one thread row per category, in sorted order
    assert [m["args"]["name"] for m in meta] == [
        "campaign.stage", "docking", "raptor.exec",
    ]
    assert len(complete) == 3
    assert len(instants) == 1
    assert trace["otherData"]["metrics"]["docking.evals"]["value"] == 100.0


def test_chrome_x_events_carry_microsecond_times_and_status():
    trace = to_chrome_trace(small_tracer())
    dock = next(e for e in trace["traceEvents"] if e.get("name") == "dock")
    assert dock["ts"] == 0.0
    assert dock["dur"] == 1_500_000.0
    assert dock["args"]["compound"] == "C1"
    assert dock["args"]["status"] == "ok"
    fail = next(e for e in trace["traceEvents"] if e.get("name") == "fail")
    assert fail["args"]["status"] == "error"
    assert fail["args"]["error"] == "crash"


def test_chrome_trace_round_trips_through_json():
    tracer = small_tracer()
    data = json.loads(chrome_trace_json(tracer))
    assert validate_chrome_trace(data) == []
    # X events appear in timeline order: ts non-decreasing, durs >= 0
    xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
    ts = [e["ts"] for e in xs]
    assert ts == sorted(ts)
    assert all(e["dur"] >= 0 for e in xs)


def test_chrome_trace_json_is_canonical():
    tracer = small_tracer()
    assert chrome_trace_json(tracer) == chrome_trace_json(tracer)
    assert '": ' not in chrome_trace_json(tracer)  # compact separators


# -------------------------------------------------------------- validation
def test_validate_flags_malformed_traces():
    assert validate_chrome_trace([]) == ["trace root must be an object"]
    assert validate_chrome_trace({}) == ["traceEvents must be a list"]
    bad = {
        "traceEvents": [
            {"ph": "Z", "name": "n", "ts": 0},
            {"ph": "X", "name": "n", "ts": 0.0, "dur": -1.0, "tid": 9},
            {"ph": "X", "name": "", "ts": "zero", "dur": 1.0, "tid": 9},
        ]
    }
    problems = validate_chrome_trace(bad)
    assert any("unknown phase" in p for p in problems)
    assert any("negative dur" in p for p in problems)
    assert any("non-numeric ts" in p for p in problems)
    assert any("no thread_name" in p for p in problems)


# ------------------------------------------------------------------- jsonl
def test_jsonl_one_parseable_line_per_span():
    tracer = small_tracer()
    lines = to_jsonl(tracer).splitlines()
    assert len(lines) == 3
    records = [json.loads(line) for line in lines]
    # timeline order: dock @0.0, stage @ first tick (0.001), fail @0.5
    assert [r["name"] for r in records] == ["dock", "stage", "fail"]
    fail = records[2]
    assert fail["status"] == "error" and fail["error"] == "crash"
    stage = records[1]
    assert stage["events"] == [
        {"time": 2.0, "name": "checkpoint", "attrs": {"step": 1}}
    ]


def test_jsonl_empty_tracer_is_empty_string():
    assert to_jsonl(Tracer(clock=TickClock())) == ""


# ----------------------------------------------------------- summary table
def test_summary_table_aggregates_and_lists_metrics():
    text = summary_table(small_tracer())
    assert "category" in text and "errors" in text
    assert "raptor.exec" in text
    assert "docking.evals: 100.0" in text
    assert "durs: n=1" in text
