"""Tests for placement policies, the pending queue, the task log and
the determinism contract between the indexed and reference schedulers."""

import numpy as np
import pytest

from repro.rct.backends import SimExecutor
from repro.rct.cluster import Allocation, Cluster, NodeSpec
from repro.rct.fault import FaultModel, RetryPolicy
from repro.rct.pilot import Pilot
from repro.rct.raptor import RaptorConfig, simulate_raptor
from repro.rct.sched import (
    HeteroPlacer,
    IndexedPlacer,
    PendingQueue,
    PLACEMENT_POLICIES,
    ScanPlacer,
    make_placer,
)
from repro.rct.shootout import mixed_workload, run_shootout
from repro.rct.task import TaskSpec, reset_uid_counter
from repro.rct.tasklog import TaskLog
from repro.telemetry import ExecutorClock, Tracer
from repro.telemetry.export import chrome_trace_json
from repro.util.rng import rng_stream

SPEC = NodeSpec(cpus=8, gpus=4)


# ------------------------------------------------------------------- placers


def _random_task(rng) -> TaskSpec:
    kind = rng.random()
    if kind < 0.15:
        return TaskSpec(nodes=int(rng.integers(2, 5)), cpus=SPEC.cpus,
                        gpus=SPEC.gpus, duration=1.0)
    if kind < 0.45:
        return TaskSpec(cpus=int(rng.integers(1, 5)), gpus=0, duration=1.0)
    return TaskSpec(cpus=1, gpus=int(rng.integers(1, 3)), duration=1.0)


def test_indexed_placer_matches_scan_placer_fuzz():
    """The hard contract: for any interleaving of placements and
    releases, the indexed placer picks exactly the nodes the reference
    scan would — same ids, same order, same free maps throughout."""
    rng = rng_stream(7, "test.placer-fuzz")
    for n_nodes in (1, 3, 16):
        scan = ScanPlacer(n_nodes, SPEC)
        indexed = IndexedPlacer(n_nodes, SPEC)
        live: list = []
        for _ in range(600):
            if live and rng.random() < 0.4:
                slot = int(rng.integers(len(live)))
                a, b = live.pop(slot)
                scan.release(a)
                indexed.release(b)
            else:
                task = _random_task(rng)
                a = scan.try_place(task)
                b = indexed.try_place(task)
                if a is None or b is None:
                    assert a is None and b is None
                else:
                    assert a.node_ids == b.node_ids
                    assert (a.cpus, a.gpus) == (b.cpus, b.gpus)
                    live.append((a, b))
            np.testing.assert_array_equal(scan.free_cpus(), indexed.free_cpus())
            np.testing.assert_array_equal(scan.free_gpus(), indexed.free_gpus())


def test_indexed_placer_first_fit_lowest_index():
    placer = IndexedPlacer(4, SPEC)
    first = placer.try_place(TaskSpec(gpus=1, duration=1.0))
    second = placer.try_place(TaskSpec(gpus=1, duration=1.0))
    assert first.node_ids == [0] and second.node_ids == [0]
    placer.release(first)
    assert placer.try_place(TaskSpec(gpus=1, duration=1.0)).node_ids == [0]


def test_indexed_placer_multi_node_takes_fully_free_nodes():
    placer = IndexedPlacer(4, SPEC)
    sub = placer.try_place(TaskSpec(cpus=1, duration=1.0))  # dirties node 0
    mpi = placer.try_place(
        TaskSpec(nodes=3, cpus=SPEC.cpus, gpus=SPEC.gpus, duration=1.0)
    )
    assert mpi.node_ids == [1, 2, 3]
    # a second 2-node task cannot fit (node 0 is partially busy)
    assert placer.try_place(
        TaskSpec(nodes=2, cpus=SPEC.cpus, gpus=SPEC.gpus, duration=1.0)
    ) is None
    placer.release(sub)
    placer.release(mpi)
    again = placer.try_place(
        TaskSpec(nodes=4, cpus=SPEC.cpus, gpus=SPEC.gpus, duration=1.0)
    )
    assert again.node_ids == [0, 1, 2, 3]


def test_hetero_placer_steers_cpu_tasks_off_gpu_nodes():
    """CPU-only work should pack onto the node with the fewest free
    GPUs, keeping GPU-rich nodes available for GPU tasks."""
    placer = HeteroPlacer(2, SPEC)
    gpu_task = placer.try_place(TaskSpec(cpus=1, gpus=4, duration=1.0))
    assert gpu_task.node_ids == [0]  # node 0 now has 0 free gpus
    cpu_task = placer.try_place(TaskSpec(cpus=2, gpus=0, duration=1.0))
    assert cpu_task.node_ids == [0]  # steered to the GPU-poor node
    # blind first-fit would also pick node 0 here; tie-break check:
    placer.release(gpu_task)
    gpu_on_1 = placer.try_place(TaskSpec(cpus=1, gpus=4, duration=1.0))
    assert gpu_on_1.node_ids == [0]


def test_make_placer_rejects_unknown_policy():
    assert set(PLACEMENT_POLICIES) == {"first_fit", "first_fit_scan", "hetero"}
    with pytest.raises(ValueError, match="unknown placement policy"):
        make_placer("round_robin", 4, SPEC)


# ------------------------------------------------------------- pending queue


def test_pending_queue_pops_in_global_submission_order():
    queue = PendingQueue()
    tasks = [TaskSpec(cpus=1 + i % 3, duration=1.0, name=f"t{i}")
             for i in range(12)]
    for t in tasks:
        queue.push(t)
    started: list[str] = []
    queue.submit_pass(lambda t: started.append(t.name) or True)
    assert started == [t.name for t in tasks]
    assert len(queue) == 0


def test_pending_queue_drops_failed_shape_for_the_pass():
    """Once a shape fails to place, later tasks of that shape are not
    retried within the pass — but other shapes keep going, in order."""
    queue = PendingQueue()
    wide = [TaskSpec(cpus=4, duration=1.0, name=f"wide{i}") for i in range(3)]
    slim = [TaskSpec(cpus=1, duration=1.0, name=f"slim{i}") for i in range(3)]
    for w, s in zip(wide, slim):
        queue.push(w)
        queue.push(s)

    def try_start(task: TaskSpec) -> bool:
        return task.cpus == 1  # the wide shape never fits

    started: list[str] = []
    n = queue.submit_pass(
        lambda t: (try_start(t) and (started.append(t.name) or True))
    )
    assert n == 3
    assert started == ["slim0", "slim1", "slim2"]
    assert len(queue) == 3  # the wide tasks survive for the next pass


# ----------------------------------------------------------------- task log


def test_tasklog_accounting_matches_records():
    reset_uid_counter()
    cluster = Cluster(2, SPEC)
    pilot = Pilot(cluster.allocate(2, 0.0), SimExecutor(0.0))
    pilot.run([TaskSpec(gpus=2, duration=1800.0) for _ in range(4)])
    assert len(pilot.log) == 4
    by_records = sum(
        r.node_seconds(SPEC.gpus, SPEC.cpus) for r in pilot.records
    )
    assert pilot.log.node_seconds_total(SPEC.gpus, SPEC.cpus) == pytest.approx(
        by_records
    )
    assert pilot.node_hours() == pytest.approx(by_records / 3600.0)
    assert pilot.log.state_counts() == {"DONE": 4}


def test_tasklog_digest_is_deterministic_and_sensitive():
    def run(durations):
        reset_uid_counter()
        cluster = Cluster(2, SPEC)
        pilot = Pilot(cluster.allocate(2, 0.0), SimExecutor(0.0))
        pilot.run([TaskSpec(gpus=1, duration=d) for d in durations])
        return pilot.log.digest()

    assert run([1.0, 2.0, 3.0]) == run([1.0, 2.0, 3.0])
    assert run([1.0, 2.0, 3.0]) != run([1.0, 2.0, 4.0])


def test_tasklog_empty():
    log = TaskLog()
    assert len(log) == 0
    assert log.node_seconds_total() == 0.0
    assert log.digest() == TaskLog().digest()


def test_keep_records_false_still_accounts():
    reset_uid_counter()
    cluster = Cluster(2, SPEC)
    pilot = Pilot(
        cluster.allocate(2, 0.0), SimExecutor(0.0), keep_records=False
    )
    finished = pilot.run([TaskSpec(gpus=2, duration=3600.0) for _ in range(2)])
    assert finished == []
    assert pilot.records == []
    assert len(pilot.log) == 2
    assert pilot.node_hours() == pytest.approx(1.0)
    assert pilot.failures.n_failures == 0


# ------------------------------------------------- the determinism contract


def _run_policy(policy: str, seed: int = 3, n_tasks: int = 250):
    reset_uid_counter()
    tasks = mixed_workload(n_tasks, seed, SPEC)
    executor = SimExecutor(
        launch_overhead=0.1,
        fault_model=FaultModel(
            seed=seed, failure_rate=0.08, straggler_rate=0.05, hang_rate=0.02
        ),
    )
    tracer = Tracer(clock=ExecutorClock(executor))
    allocation = Allocation(node_ids=list(range(6)), spec=SPEC, granted_at=0.0)
    pilot = Pilot(
        allocation,
        executor,
        retry=RetryPolicy(max_retries=2, backoff_base=1.0, timeout=300.0),
        tracer=tracer,
        policy=policy,
    )
    pilot.run(tasks)
    return pilot


def test_indexed_loop_bit_identical_to_scan_loop():
    """Same seed ⇒ the optimized scheduler reproduces the reference's
    placements, per-task timings, failure counters and exported trace
    byte for byte — under faults, retries and timeouts."""
    ref = _run_policy("first_fit_scan")
    opt = _run_policy("first_fit")
    assert ref.failures.n_failures > 0  # the workload actually faulted
    assert ref.log.digest() == opt.log.digest()
    assert vars(ref.failures) == vars(opt.failures)
    assert chrome_trace_json(ref.tracer) == chrome_trace_json(opt.tracer)


def test_hetero_policy_completes_same_workload():
    """Hetero placement makes different decisions but loses no tasks."""
    ref = _run_policy("first_fit")
    het = _run_policy("hetero")
    assert len(het.log) >= len(ref.log) - ref.failures.n_dropped
    assert vars(het.failures).keys() == vars(ref.failures).keys()
    assert het.failures.reconciles()


# -------------------------------------------------------- raptor steal knob


def test_raptor_steal_flag_gates_work_stealing():
    """With stealing off, a worker pool whose master drains early idles;
    stealing on finishes no later and both complete every item."""
    rng = rng_stream(5, "test.raptor-steal")
    durations = np.concatenate([rng.uniform(0.5, 1.0, 40),
                                rng.uniform(8.0, 10.0, 8)])
    steal = simulate_raptor(
        durations, RaptorConfig(n_workers=8, n_masters=4, bulk_size=4)
    )
    no_steal = simulate_raptor(
        durations,
        RaptorConfig(n_workers=8, n_masters=4, bulk_size=4, steal=False),
    )
    assert steal.n_failed == no_steal.n_failed == 0
    assert steal.makespan <= no_steal.makespan
    assert steal.worker_utilization >= no_steal.worker_utilization


# ----------------------------------------------------------------- shootout


def test_shootout_scores_are_trace_pure_and_reproducible():
    def arms():
        reset_uid_counter()
        return [
            s.as_dict()
            for s in run_shootout(
                n_tasks=120, n_nodes=4, seed=1,
                n_raptor_items=200, n_raptor_workers=16,
            )
        ]

    first, second = arms(), arms()
    assert first == second  # trace-derived, seeded: byte-identical scores
    families = {a["family"] for a in first}
    assert families == {"pilot", "raptor"}
    by_arm = {a["arm"]: a for a in first}
    assert set(PLACEMENT_POLICIES) == {
        a.split("/", 1)[1] for a in by_arm if a.startswith("pilot/")
    }
    # the identity contract shows up in the scores too
    assert by_arm["pilot/first_fit"]["makespan"] == pytest.approx(
        by_arm["pilot/first_fit_scan"]["makespan"]
    )
    assert all(a["makespan"] > 0 and a["n_spans"] > 0 for a in first)
