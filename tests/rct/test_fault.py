"""Tests for the fault-tolerance layer: fault model, retry policy,
failure propagation and the reconciliation ledger."""

import math

import pytest

from repro.rct.cluster import Cluster, NodeSpec
from repro.rct.entk import AppManager, Pipeline, Stage
from repro.rct.executor import SimExecutor, ThreadExecutor
from repro.rct.fault import (
    FailureSummary,
    FaultModel,
    RetryPolicy,
    TaskFailedError,
)
from repro.rct.pilot import Pilot
from repro.rct.task import TaskSpec, TaskState


def _pilot(n_nodes=4, fault_model=None, overhead=0.0, **kwargs):
    cluster = Cluster(n_nodes, NodeSpec(cpus=4, gpus=2))
    return Pilot(
        cluster.allocate(n_nodes, 0.0),
        SimExecutor(overhead, fault_model=fault_model),
        **kwargs,
    )


# ------------------------------------------------------------- fault model


def test_fault_model_draw_is_deterministic():
    fm = FaultModel(failure_rate=0.3, straggler_rate=0.2, seed=5)
    a = fm.draw(7, 0, 10.0)
    b = fm.draw(7, 0, 10.0)
    assert a == b


def test_fault_model_rerolls_per_attempt_and_task():
    fm = FaultModel(failure_rate=0.5, seed=5)
    outcomes = {(uid, att): fm.draw(uid, att, 1.0).kind
                for uid in range(50) for att in range(3)}
    assert "fail" in outcomes.values() and "ok" in outcomes.values()


def test_fault_model_zero_rates_always_ok():
    fm = FaultModel(seed=0)
    for uid in range(100):
        out = fm.draw(uid, 0, 3.0)
        assert out.kind == "ok" and out.busy == 3.0 and not out.failed


def test_fault_model_hang_is_infinite():
    fm = FaultModel(hang_rate=1.0, seed=0)
    out = fm.draw(0, 0, 3.0)
    assert out.kind == "hang" and math.isinf(out.busy) and out.failed


def test_fault_model_failure_charges_partial_duration():
    fm = FaultModel(failure_rate=1.0, seed=1)
    out = fm.draw(3, 0, 10.0)
    assert out.failed and 0.0 <= out.busy <= 10.0


def test_fault_model_straggler_slows_but_succeeds():
    fm = FaultModel(straggler_rate=1.0, straggler_factor=3.0, seed=0)
    out = fm.draw(0, 0, 2.0)
    assert out.kind == "straggle" and out.busy == pytest.approx(6.0)
    assert not out.failed


def test_fault_model_validation():
    with pytest.raises(ValueError):
        FaultModel(failure_rate=1.5)
    with pytest.raises(ValueError):
        FaultModel(failure_rate=0.6, hang_rate=0.6)
    with pytest.raises(ValueError):
        FaultModel(straggler_factor=0.5)


# ------------------------------------------------------------ retry policy


def test_retry_policy_backoff_grows_exponentially():
    rp = RetryPolicy(backoff_base=1.0, backoff_factor=2.0, backoff_jitter=0.0)
    assert rp.backoff(0, 0) == pytest.approx(1.0)
    assert rp.backoff(0, 1) == pytest.approx(2.0)
    assert rp.backoff(0, 3) == pytest.approx(8.0)


def test_retry_policy_jitter_bounded_and_deterministic():
    rp = RetryPolicy(backoff_base=1.0, backoff_factor=2.0, backoff_jitter=0.5)
    b = rp.backoff(9, 2)
    assert 4.0 <= b <= 6.0
    assert b == rp.backoff(9, 2)


def test_retry_policy_should_retry_counts_attempts():
    rp = RetryPolicy(max_retries=2)
    assert rp.should_retry(0) and rp.should_retry(1) and not rp.should_retry(2)
    assert not RetryPolicy(max_retries=0).should_retry(0)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.0)


# --------------------------------------------------------- failure summary


def test_failure_summary_reconciles():
    s = FailureSummary()
    s.record_failure(1.0)
    s.record_retry(0.5)
    s.record_failure(2.0)
    s.record_drop("S1")
    assert s.reconciles()
    assert s.n_failures == 2 and s.n_retries == 1 and s.n_dropped == 1
    assert s.time_lost == pytest.approx(3.5)
    assert s.dropped_by_stage == {"S1": 1}


def test_failure_summary_merge():
    a, b = FailureSummary(), FailureSummary()
    a.record_failure(1.0)
    a.record_retry(1.0)
    a.record_success(1)
    b.record_failure(2.0)
    b.record_drop("S3-CG")
    b.record_success(0)
    a.merge(b)
    assert a.reconciles()
    assert a.retry_histogram == {0: 1, 1: 1}
    assert "failures=2" in a.summary()


# ------------------------------------------- executor-level fault behaviour


def test_sim_executor_injects_failures_deterministically():
    fm = FaultModel(failure_rate=0.3, seed=2)

    def run_once():
        ex = SimExecutor(0.0, fault_model=fm)
        from repro.rct.task import TaskRecord

        states = []
        for uid in range(40):
            rec = TaskRecord(spec=TaskSpec(duration=1.0, uid=1000 + uid))
            ex.start(rec)
            states.append(ex.next_completion().state)
        return states

    first, second = run_once(), run_once()
    assert first == second
    assert TaskState.FAILED in first and TaskState.DONE in first


def test_sim_executor_timeout_cancels_hang():
    fm = FaultModel(hang_rate=1.0, seed=0)
    ex = SimExecutor(0.0, fault_model=fm)
    from repro.rct.task import TaskRecord

    rec = TaskRecord(spec=TaskSpec(duration=2.0))
    ex.start(rec, timeout=5.0)
    done = ex.next_completion()
    assert done.state is TaskState.FAILED and done.timed_out
    assert ex.now == pytest.approx(5.0)


def test_sim_executor_hang_without_timeout_raises():
    fm = FaultModel(hang_rate=1.0, seed=0)
    ex = SimExecutor(0.0, fault_model=fm)
    from repro.rct.task import TaskRecord

    ex.start(TaskRecord(spec=TaskSpec(duration=1.0)))
    with pytest.raises(RuntimeError, match="hung"):
        ex.next_completion()


def test_thread_executor_timeout_abandons_hung_task():
    import threading

    release = threading.Event()
    with ThreadExecutor(max_workers=1) as ex:
        from repro.rct.task import TaskRecord

        rec = TaskRecord(spec=TaskSpec(fn=release.wait))
        ex.start(rec, timeout=0.05)
        done = ex.next_completion()
        assert done.state is TaskState.FAILED and done.timed_out
        assert "timeout" in done.error
        release.set()  # let the abandoned thread finish


def test_thread_executor_shutdown_skips_abandoned_threads():
    """Regression: shutdown() must not block on a thread already
    abandoned at its timeout — the pilot context exit would otherwise
    hang for the full duration of the hung task."""
    import threading
    import time as _time

    from repro.rct.task import TaskRecord

    release = threading.Event()
    ex = ThreadExecutor(max_workers=1)
    ex.start(TaskRecord(spec=TaskSpec(fn=release.wait)), timeout=0.05)
    assert ex.next_completion().timed_out
    t0 = _time.monotonic()
    ex.shutdown()
    assert _time.monotonic() - t0 < 1.0
    release.set()  # let the abandoned thread drain


def test_executors_are_context_managers():
    with SimExecutor(0.0) as ex:
        assert ex.n_running == 0
    with ThreadExecutor(max_workers=1) as ex:
        from repro.rct.task import TaskRecord

        ex.start(TaskRecord(spec=TaskSpec(fn=lambda: 1)))
        assert ex.next_completion().result == 1


# --------------------------------------------------- pilot-level behaviour


def test_pilot_retries_until_success():
    fm = FaultModel(failure_rate=0.2, seed=3)
    pilot = _pilot(fault_model=fm, retry=RetryPolicy(max_retries=10, backoff_base=0.5, seed=3))
    records = pilot.run([TaskSpec(gpus=1, duration=1.0) for _ in range(60)])
    assert len(records) == 60
    assert all(r.state is TaskState.DONE for r in records)
    f = pilot.failures
    assert f.n_failures > 0 and f.n_dropped == 0 and f.reconciles()
    # the histogram counts one success per task
    assert sum(f.retry_histogram.values()) == 60


def test_pilot_backoff_charged_on_virtual_clock_and_tracker():
    fm = FaultModel(failure_rate=1.0, seed=4)  # every attempt fails
    pilot = _pilot(
        fault_model=fm,
        retry=RetryPolicy(max_retries=2, backoff_base=10.0, backoff_jitter=0.0, seed=4),
    )
    records = pilot.run([TaskSpec(gpus=1, duration=1.0, stage="S1")])
    (rec,) = records
    assert rec.state is TaskState.FAILED
    f = pilot.failures
    assert f.n_failures == 3 and f.n_retries == 2 and f.n_dropped == 1
    assert f.reconciles()
    # two exponential backoffs (10s, then 20s) were charged and tracked
    assert pilot.utilization.backoff_seconds == pytest.approx(30.0)
    assert pilot.utilization.backoff_by_stage() == {"S1": pytest.approx(30.0)}
    assert pilot.executor.now >= 30.0


def test_pilot_fail_fast_raises_task_failed_error():
    fm = FaultModel(failure_rate=1.0, seed=1)
    pilot = _pilot(fault_model=fm, failure_policy="fail_fast")
    with pytest.raises(TaskFailedError) as exc_info:
        pilot.run([TaskSpec(gpus=1, duration=1.0) for _ in range(4)])
    assert exc_info.value.record is not None


def test_pilot_drop_and_continue_reports_every_drop():
    fm = FaultModel(failure_rate=1.0, seed=1)  # every attempt fails
    pilot = _pilot(fault_model=fm, failure_policy="drop_and_continue")
    records = pilot.run([TaskSpec(gpus=1, duration=1.0) for _ in range(10)])
    assert len(records) == 10
    assert all(r.state is TaskState.FAILED for r in records)
    assert pilot.failures.n_dropped == 10
    assert pilot.failures.reconciles()


def test_pilot_failure_budget_enforced():
    fm = FaultModel(failure_rate=1.0, seed=1)
    pilot = _pilot(fault_model=fm, failure_budget=3)
    with pytest.raises(TaskFailedError, match="budget"):
        pilot.run([TaskSpec(gpus=1, duration=1.0) for _ in range(10)])


def test_pilot_timeout_reaps_hung_tasks():
    fm = FaultModel(hang_rate=0.3, seed=6)
    pilot = _pilot(
        fault_model=fm,
        retry=RetryPolicy(max_retries=8, backoff_base=0.1, timeout=5.0, seed=6),
    )
    records = pilot.run([TaskSpec(gpus=1, duration=1.0) for _ in range(30)])
    assert all(r.state is TaskState.DONE for r in records)
    assert pilot.failures.n_timeouts > 0
    assert pilot.failures.reconciles()


def test_pilot_invalid_policy_rejected():
    with pytest.raises(ValueError, match="failure_policy"):
        _pilot(failure_policy="ignore")
    with pytest.raises(ValueError, match="failure_budget"):
        _pilot(failure_budget=-1)


def test_pilot_context_manager_shuts_down_thread_pool():
    cluster = Cluster(1, NodeSpec(cpus=2, gpus=0))
    with Pilot(cluster.allocate(1, 0.0), ThreadExecutor(max_workers=2)) as pilot:
        records = pilot.run([TaskSpec(cpus=1, fn=lambda i=i: i) for i in range(4)])
        assert sorted(r.result for r in records) == [0, 1, 2, 3]
    # pool is closed: submitting again must fail
    with pytest.raises(RuntimeError):
        pilot.executor._pool.submit(lambda: None)


def test_pilot_thread_backend_retries_real_exceptions():
    cluster = Cluster(1, NodeSpec(cpus=2, gpus=0))
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise RuntimeError("transient")
        return "ok"

    with Pilot(
        cluster.allocate(1, 0.0),
        ThreadExecutor(max_workers=1),
        retry=RetryPolicy(max_retries=5, backoff_base=0.0),
    ) as pilot:
        records = pilot.run([TaskSpec(cpus=1, fn=flaky)])
    (rec,) = records
    assert rec.state is TaskState.DONE and rec.result == "ok"
    assert rec.attempt == 2
    assert pilot.failures.n_retries == 2 and pilot.failures.reconciles()


# ------------------------------------------------ the acceptance scenario


def test_thousand_task_pilot_at_five_percent_failures():
    """ISSUE acceptance: 5 % seeded failures + RetryPolicy(max_retries=3)
    → all 1000 tasks complete, ledger reconciles, makespan < 2× clean."""

    def run(fault_model):
        cluster = Cluster(50, NodeSpec(cpus=4, gpus=2))
        pilot = Pilot(
            cluster.allocate(50, 0.0),
            SimExecutor(0.1, fault_model=fault_model),
            retry=RetryPolicy(max_retries=3, backoff_base=0.5, seed=7),
        )
        records = pilot.run(
            [TaskSpec(gpus=1, duration=5.0, stage="S1") for _ in range(1000)]
        )
        return pilot, records

    clean_pilot, _ = run(None)
    pilot, records = run(FaultModel(failure_rate=0.05, seed=7))
    assert len(records) == 1000
    assert all(r.state is TaskState.DONE for r in records)
    f = pilot.failures
    assert f.n_failures > 20  # ~5 % of >1000 attempts actually injected
    assert f.n_failures == f.n_retries + f.n_dropped  # exact reconciliation
    assert pilot.executor.now < 2.0 * clean_pilot.executor.now


# -------------------------------------------------- AppManager propagation


def test_appmanager_retries_keep_stage_barrier_closed():
    cluster = Cluster(4, NodeSpec(cpus=4, gpus=2))
    pilot = Pilot(
        cluster.allocate(4, 0.0),
        SimExecutor(0.0, fault_model=FaultModel(failure_rate=0.15, seed=9)),
        retry=RetryPolicy(max_retries=6, backoff_base=0.5, seed=9),
    )
    stages = [
        Stage(
            name=f"s{k}",
            tasks=[TaskSpec(gpus=1, duration=1.0, stage=f"s{k}") for _ in range(6)],
        )
        for k in range(3)
    ]
    out = AppManager(pilot).run([Pipeline(name="p", stages=stages)])
    recs = out["p"]
    assert len(recs) == 18
    assert all(r.state is TaskState.DONE for r in recs)
    assert pilot.failures.n_failures > 0  # retries actually happened
    for k in range(2):
        stage_end = max(r.end_time for r in recs if r.spec.stage == f"s{k}")
        next_start = min(r.start_time for r in recs if r.spec.stage == f"s{k + 1}")
        assert next_start >= stage_end - 1e-9


def test_appmanager_fail_fast_raises():
    cluster = Cluster(2, NodeSpec(cpus=4, gpus=2))
    pilot = Pilot(
        cluster.allocate(2, 0.0),
        SimExecutor(0.0, fault_model=FaultModel(failure_rate=1.0, seed=1)),
        failure_policy="fail_fast",
    )
    p = Pipeline(
        name="p", stages=[Stage(name="s", tasks=[TaskSpec(gpus=1, duration=1.0)])]
    )
    with pytest.raises(TaskFailedError):
        AppManager(pilot).run([p])


def test_appmanager_dropped_task_reported_never_silent():
    """A FAILED record must appear in the results (drop_and_continue) and
    be tallied — a failed task is never counted as plainly done."""
    cluster = Cluster(2, NodeSpec(cpus=4, gpus=2))
    pilot = Pilot(
        cluster.allocate(2, 0.0),
        SimExecutor(0.0, fault_model=FaultModel(failure_rate=1.0, seed=1)),
    )
    p = Pipeline(
        name="p",
        stages=[
            Stage(
                name="s",
                tasks=[TaskSpec(gpus=1, duration=1.0, stage="s") for _ in range(3)],
            )
        ],
    )
    out = AppManager(pilot).run([p])
    assert len(out["p"]) == 3
    assert all(r.state is TaskState.FAILED for r in out["p"])
    assert pilot.failures.n_dropped == 3
    assert pilot.failures.reconciles()
