"""Tests for the EnTK PST model and AppManager semantics."""

import pytest

from repro.rct.cluster import Cluster, NodeSpec
from repro.rct.entk import AppManager, Pipeline, Stage
from repro.rct.executor import SimExecutor
from repro.rct.pilot import Pilot
from repro.rct.task import TaskSpec


def _pilot(n_nodes=4, gpus=2):
    cluster = Cluster(n_nodes, NodeSpec(cpus=4, gpus=gpus))
    return Pilot(cluster.allocate(n_nodes, 0.0), SimExecutor(0.0))


def _stage(name, n_tasks, dur, gpus=1):
    return Stage(
        name=name,
        tasks=[TaskSpec(gpus=gpus, duration=dur, stage=name) for _ in range(n_tasks)],
    )


def test_stage_barrier_orders_stages():
    """A pipeline's stage 2 must not start before stage 1 fully ends."""
    pilot = _pilot()
    p = Pipeline(name="p", stages=[_stage("s1", 3, 2.0), _stage("s2", 3, 1.0)])
    out = AppManager(pilot).run([p])
    recs = out["p"]
    s1_end = max(r.end_time for r in recs if r.spec.stage == "s1")
    s2_start = min(r.start_time for r in recs if r.spec.stage == "s2")
    assert s2_start >= s1_end


def test_pipelines_progress_independently():
    """A slow pipeline must not block a fast one (asynchronous execution)."""
    pilot = _pilot(n_nodes=4)
    slow = Pipeline(name="slow", stages=[_stage("slow-1", 1, 50.0)])
    fast = Pipeline(
        name="fast", stages=[_stage("fast-1", 2, 1.0), _stage("fast-2", 2, 1.0)]
    )
    out = AppManager(pilot).run([slow, fast])
    fast_done = max(r.end_time for r in out["fast"])
    slow_done = max(r.end_time for r in out["slow"])
    assert fast_done < slow_done
    assert fast_done == pytest.approx(2.0)


def test_tasks_within_stage_concurrent():
    pilot = _pilot(n_nodes=4)  # 8 gpu slots
    p = Pipeline(name="p", stages=[_stage("s", 8, 3.0)])
    AppManager(pilot).run([p])
    assert pilot.executor.now == pytest.approx(3.0)  # all 8 in parallel


def test_on_complete_callback_fires_with_records():
    pilot = _pilot()
    seen = []
    stage = _stage("s", 3, 1.0)
    stage.on_complete = lambda records: seen.append(len(records))
    AppManager(pilot).run([Pipeline(name="p", stages=[stage])])
    assert seen == [3]


def test_adaptive_stage_generator_extends_pipeline():
    """Runtime-generated stages: the adaptive-workflow hook."""
    pilot = _pilot()
    rounds = []

    def generator(records):
        if len(rounds) >= 2:
            return None
        rounds.append(len(records))
        return _stage(f"gen-{len(rounds)}", 2, 1.0)

    p = Pipeline(name="p", stages=[_stage("seed", 1, 1.0)], stage_generator=generator)
    out = AppManager(pilot).run([p])
    assert len(rounds) == 2
    stages_seen = {r.spec.stage for r in out["p"]}
    assert stages_seen == {"seed", "gen-1", "gen-2"}


def test_heterogeneous_tasks_intermix():
    """CPU tasks, GPU tasks and multi-node MPI tasks in one run."""
    pilot = _pilot(n_nodes=4)
    mixed = Stage(
        name="mixed",
        tasks=[
            TaskSpec(cpus=2, gpus=0, duration=1.0, stage="cpu"),
            TaskSpec(cpus=0, gpus=2, duration=1.0, stage="gpu"),
            TaskSpec(nodes=2, cpus=4, gpus=2, duration=1.0, stage="mpi"),
        ],
    )
    out = AppManager(pilot).run([Pipeline(name="p", stages=[mixed])])
    assert len(out["p"]) == 3


def test_empty_inputs_rejected():
    pilot = _pilot()
    with pytest.raises(ValueError):
        AppManager(pilot).run([])
    with pytest.raises(ValueError):
        Stage(tasks=[])
    with pytest.raises(ValueError):
        Pipeline(stages=[])


def test_duplicate_pipeline_names_rejected():
    pilot = _pilot()
    p1 = Pipeline(name="same", stages=[_stage("a", 1, 1.0)])
    p2 = Pipeline(name="same", stages=[_stage("b", 1, 1.0)])
    with pytest.raises(ValueError, match="unique"):
        AppManager(pilot).run([p1, p2])


def test_utilization_recorded_per_stage():
    pilot = _pilot()
    p = Pipeline(name="p", stages=[_stage("alpha", 2, 1.0), _stage("beta", 2, 1.0)])
    AppManager(pilot).run([p])
    series = pilot.utilization.series()
    assert set(series.per_stage) == {"alpha", "beta"}
