"""Pilot sharing: the invariants two campaigns on one pilot rely on.

Before the service, the pilot assumed exclusive ownership of its
cluster slots and uid space.  These tests pin the sharing contract:
duplicate in-flight uids are rejected (not silently double-counted),
queued work can be cancelled per-owner, spans carry tenant labels, and
utilization can be viewed per tenant.
"""

import pytest

from repro.rct.backends import create_executor
from repro.rct.cluster import Cluster, SUMMIT_NODE
from repro.rct.fault import FaultModel, RetryPolicy
from repro.rct.pilot import Pilot
from repro.rct.sched import PendingQueue
from repro.rct.task import TaskSpec
from repro.rct.utilization import UtilizationTracker


def make_pilot(n_nodes=1, **kwargs):
    executor = create_executor("sim", launch_overhead=0.5)
    allocation = Cluster(n_nodes, spec=SUMMIT_NODE).allocate(n_nodes, now=0.0)
    return Pilot(allocation, executor, **kwargs)


def task(uid, name="t", tenant="", duration=10.0, gpus=1):
    return TaskSpec(
        name=name, cpus=1, gpus=gpus, duration=duration, tenant=tenant, uid=uid
    )


def test_duplicate_inflight_uid_rejected():
    pilot = make_pilot()
    assert pilot.start_task(task(uid=1))
    with pytest.raises(ValueError, match="uid 1"):
        pilot.start_task(task(uid=1, name="imposter"))
    # ...but the uid is reusable once the first attempt finished
    pilot.wait_one()
    assert pilot.start_task(task(uid=1, name="again"))
    pilot.wait_one()


def test_cancel_pending_filters_by_owner():
    executor = create_executor(
        "sim", launch_overhead=0.5,
        fault_model=FaultModel(failure_rate=1.0, seed=0),
    )
    allocation = Cluster(1, spec=SUMMIT_NODE).allocate(1, now=0.0)
    pilot = Pilot(
        allocation, executor,
        retry=RetryPolicy(max_retries=3, backoff_base=1000.0, seed=0),
        failure_policy="drop_and_continue",
    )
    pilot.start_task(task(uid=100, tenant="a"))
    pilot.start_task(task(uid=200, tenant="b"))
    pilot.wait_one()
    pilot.wait_one()  # both attempts fail → both parked in backoff
    assert pilot.n_waiting_retry == 2

    cancelled = pilot.cancel_pending(lambda t: t.tenant == "a")
    assert [t.uid for t in cancelled] == [100]
    assert pilot.n_waiting_retry == 1
    assert pilot.failures.n_dropped == 1
    # the survivor's retry is untouched and still re-drivable
    pilot.advance_to_next_retry()
    pilot.submit_ready([])
    assert pilot.n_running == 1


def test_pending_queue_drop_where_keeps_order():
    pending = PendingQueue()
    for uid, tenant in [(1, "a"), (2, "b"), (3, "a"), (4, "b")]:
        pending.push(task(uid=uid, tenant=tenant))
    dropped = pending.drop_where(lambda t: t.tenant == "a")
    assert [t.uid for t in dropped] == [1, 3]
    started = []
    while True:
        t = pending.try_start_one(lambda _t: True)
        if t is None:
            break
        started.append(t.uid)
    assert started == [2, 4]


def test_pending_queue_try_start_one_pops_only_what_starts():
    pending = PendingQueue()
    pending.push(task(uid=1, name="first", gpus=4))
    pending.push(task(uid=2, name="second", gpus=1))

    # only the small shape "fits": its head starts even though the big
    # shape was submitted earlier
    started = pending.try_start_one(lambda t: t.gpus == 1)
    assert started is not None and started.uid == 2
    assert len(pending) == 1
    assert pending.try_start_one(lambda t: False) is None
    assert len(pending) == 1


def test_spans_carry_tenant_only_when_set():
    pilot = make_pilot()
    pilot.start_task(task(uid=1, tenant="acme"))
    pilot.start_task(task(uid=2))  # tenant-less: single-campaign path
    pilot.wait_one()
    pilot.wait_one()
    spans = list(pilot.tracer.spans(category="pilot.task"))
    by_uid = {s.attrs["uid"]: s for s in spans}
    assert by_uid[1].attrs["tenant"] == "acme"
    assert "tenant" not in by_uid[2].attrs


def test_utilization_from_trace_filters_by_tenant():
    pilot = make_pilot()
    # equal durations → all three series cover the same window, so the
    # per-tenant busy fractions partition the whole-pilot one exactly
    pilot.start_task(task(uid=1, tenant="a", duration=100.0, gpus=2))
    pilot.start_task(task(uid=2, tenant="b", duration=100.0, gpus=1))
    while pilot.n_running:
        pilot.wait_one()
    spec = pilot.spec
    whole = UtilizationTracker.from_trace(pilot.tracer, spec.gpus, spec.cpus)
    only_a = UtilizationTracker.from_trace(
        pilot.tracer, spec.gpus, spec.cpus, tenant="a"
    )
    only_b = UtilizationTracker.from_trace(
        pilot.tracer, spec.gpus, spec.cpus, tenant="b"
    )
    # tenant views partition the busy integral; totals stay whole-machine
    total = whole.series()
    a = only_a.series()
    b = only_b.series()
    assert a.total_gpus == total.total_gpus
    busy = total.average_utilization()
    assert a.average_utilization() < busy
    assert b.average_utilization() < busy
    assert a.average_utilization() + b.average_utilization() == pytest.approx(
        busy, rel=0.05
    )
