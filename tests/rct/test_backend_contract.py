"""Backend conformance suite: every registered executor, one contract.

Parametrized over the backend registry, so a newly registered backend is
automatically held to the full protocol: start/next_completion/wait_until
semantics, failure capture, per-attempt timeout (cancel on the virtual
clock, abandon-and-reap on real pools), and context-manager cleanup.
"""

import time

import pytest

from repro.rct.backends import (
    ExecutorBackend,
    ProcessExecutor,
    SimExecutor,
    ThreadExecutor,
    available_backends,
    create_executor,
    get_backend,
    register_backend,
)
from repro.rct.fault import FaultModel
from repro.rct.task import TaskRecord, TaskSpec, TaskState

BACKENDS = sorted(available_backends())


def _make_executor(name: str):
    if name == "sim":
        return create_executor("sim", launch_overhead=0.0)
    if name == "thread":
        return create_executor("thread", max_workers=2)
    if name == "process":
        return create_executor("process", max_workers=2)
    raise AssertionError(
        f"backend {name!r} registered but not covered by the conformance "
        "suite; add a constructor and payload mapping here"
    )


# module-level payloads: the process backend pickles them across the
# fork boundary, so lambdas/closures are not an option
def _double(x):
    return 2 * x


def _boom():
    raise RuntimeError("kaput")


def _sleep_return(seconds, value):
    time.sleep(seconds)
    return value


def _task(name: str, **kwargs) -> TaskRecord:
    """A one-cpu task the named backend can execute."""
    if name == "sim":
        spec = TaskSpec(cpus=1, duration=kwargs.get("duration", 1.0))
    else:
        spec = TaskSpec(
            cpus=1,
            fn=kwargs.get("fn", _double),
            args=kwargs.get("args", (21,)),
        )
    return TaskRecord(spec=spec, state=TaskState.SCHEDULED)


# ------------------------------------------------------------------ registry


def test_registry_exposes_builtin_backends():
    assert {"sim", "thread", "process"} <= set(BACKENDS)
    assert get_backend("sim") is SimExecutor
    assert get_backend("thread") is ThreadExecutor
    assert get_backend("process") is ProcessExecutor


def test_registry_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("mainframe")
    with pytest.raises(ValueError, match="registered"):
        create_executor("mainframe")


def test_registry_rejects_duplicate_name():
    with pytest.raises(ValueError, match="already registered"):

        @register_backend("sim")
        class Impostor:  # noqa: F811 - never registered
            pass


def test_backend_name_attribute_set_by_registration():
    assert SimExecutor.backend_name == "sim"
    assert ThreadExecutor.backend_name == "thread"
    assert ProcessExecutor.backend_name == "process"


# ------------------------------------------------------------------ protocol


@pytest.mark.parametrize("name", BACKENDS)
def test_protocol_conformance(name):
    with _make_executor(name) as ex:
        assert isinstance(ex, ExecutorBackend)
        assert ex.n_running == 0
        t0 = ex.now
        # real payloads sleep briefly so the task is observably in flight
        record = (
            _task(name)
            if name == "sim"
            else _task(name, fn=_sleep_return, args=(0.3, 42))
        )
        ex.start(record)
        assert ex.n_running == 1
        done = ex.next_completion()
        assert done is record
        assert done.state is TaskState.DONE
        assert ex.n_running == 0
        assert done.start_time is not None and done.end_time is not None
        assert done.end_time >= done.start_time
        assert ex.now >= t0


@pytest.mark.parametrize("name", BACKENDS)
def test_real_backends_return_results(name):
    if name == "sim":
        pytest.skip("simulated tasks carry durations, not return values")
    with _make_executor(name) as ex:
        ex.start(_task(name, fn=_double, args=(21,)))
        assert ex.next_completion().result == 42


@pytest.mark.parametrize("name", BACKENDS)
def test_failure_is_captured_not_raised(name):
    """A failing attempt lands as a FAILED record, never an exception."""
    if name == "sim":
        ex = create_executor(
            "sim", launch_overhead=0.0, fault_model=FaultModel(failure_rate=1.0)
        )
    else:
        ex = _make_executor(name)
    with ex:
        ex.start(_task(name, fn=_boom, args=()))
        done = ex.next_completion()
        assert done.state is TaskState.FAILED
        assert done.error
        assert done.result is None
        assert ex.n_running == 0


@pytest.mark.parametrize("name", BACKENDS)
def test_timeout_cancels_or_abandons(name):
    """An attempt running past its timeout is reported failed at the
    deadline — cancelled on the virtual clock, abandoned on real pools —
    and the pilot-facing ledger (n_running) is settled immediately."""
    if name == "sim":
        ex = create_executor(
            "sim", launch_overhead=0.0, fault_model=FaultModel(hang_rate=1.0)
        )
        record = _task("sim", duration=1.0)
        timeout = 5.0
    else:
        ex = _make_executor(name)
        record = _task(name, fn=_sleep_return, args=(1.5, "late"))
        timeout = 0.2
    with ex:
        t0 = time.perf_counter()
        ex.start(record, timeout=timeout)
        done = ex.next_completion()
        assert done.state is TaskState.FAILED
        assert done.timed_out
        assert "timeout" in done.error
        assert done.result is None
        assert ex.n_running == 0
        if name != "sim":
            # delivered at the deadline, not after the payload drained
            assert time.perf_counter() - t0 < 1.0


@pytest.mark.parametrize("name", ["thread", "process"])
def test_abandoned_worker_accounting_settles(name):
    """Regression: a timed-out attempt whose payload later completes must
    drain the abandon ledger exactly once and never attach its late
    result to the already-published FAILED record."""
    with _make_executor(name) as ex:
        record = _task(name, fn=_sleep_return, args=(0.5, "late"))
        ex.start(record, timeout=0.1)
        done = ex.next_completion()
        assert done.timed_out and done.state is TaskState.FAILED
        assert ex.n_abandoned == 1
        deadline = time.perf_counter() + 5.0
        while ex.n_abandoned and time.perf_counter() < deadline:
            time.sleep(0.05)
        assert ex.n_abandoned == 0  # late completion settled the ledger
        assert done.result is None  # late result was discarded
        assert done.state is TaskState.FAILED
        assert ex.n_running == 0


@pytest.mark.parametrize("name", ["thread", "process"])
def test_shutdown_does_not_wait_for_abandoned_work(name):
    """Shutdown with abandoned attempts must not block on dead work."""
    ex = _make_executor(name)
    ex.start(_task(name, fn=_sleep_return, args=(10.0, "hung")), timeout=0.1)
    done = ex.next_completion()
    assert done.timed_out
    t0 = time.perf_counter()
    ex.shutdown()
    assert time.perf_counter() - t0 < 5.0


@pytest.mark.parametrize("name", BACKENDS)
def test_context_manager_cleanup(name):
    ex = _make_executor(name)
    with ex:
        ex.start(_task(name))
        ex.next_completion()
    if name != "sim":
        # the pool is gone: new submissions must fail loudly
        with pytest.raises(RuntimeError):
            ex.start(_task(name))


@pytest.mark.parametrize("name", BACKENDS)
def test_wait_until_advances_the_clock(name):
    with _make_executor(name) as ex:
        target = ex.now + (5.0 if name == "sim" else 0.05)
        ex.wait_until(target)
        assert ex.now >= target


# --------------------------------------------------- backend-specific guards


def test_sim_wait_until_rejects_backwards_time():
    """Regression: virtual time is monotone; a stale (past) target must
    fail loudly instead of silently rewinding the clock."""
    ex = SimExecutor(launch_overhead=0.0)
    ex.start(TaskRecord(spec=TaskSpec(duration=5.0), state=TaskState.SCHEDULED))
    ex.next_completion()
    assert ex.now == 5.0
    with pytest.raises(ValueError, match="in the past"):
        ex.wait_until(2.0)
    assert ex.now == 5.0  # clock untouched by the rejected call


def test_sim_now_setter_rejects_backwards_time():
    ex = SimExecutor(launch_overhead=0.0)
    ex.now = 10.0
    with pytest.raises(ValueError, match="backwards"):
        ex.now = 9.0
    assert ex.now == 10.0


def test_pool_wait_until_past_target_is_noop():
    """Real clocks cannot rewind; a past target returns immediately."""
    with ThreadExecutor(max_workers=1) as ex:
        t0 = time.perf_counter()
        ex.wait_until(ex.now - 100.0)
        assert time.perf_counter() - t0 < 1.0


def test_process_backend_reports_unpicklable_payload():
    """A lambda payload cannot cross the process boundary; the failure
    must surface as a FAILED record, not a hang or an unhandled crash."""
    with ProcessExecutor(max_workers=1) as ex:
        record = TaskRecord(
            spec=TaskSpec(cpus=1, fn=lambda: 1), state=TaskState.SCHEDULED
        )
        ex.start(record)
        done = ex.next_completion()
        assert done.state is TaskState.FAILED
        assert done.error


def test_sim_start_batch_matches_sequential_starts():
    """Batched heap insertion must preserve completion order exactly."""
    durations = [5.0, 1.0, 3.0, 1.0, 4.0, 2.0] * 4
    seq = SimExecutor(launch_overhead=0.0)
    for d in durations:
        seq.start(TaskRecord(spec=TaskSpec(duration=d), state=TaskState.SCHEDULED))
    batch = SimExecutor(launch_overhead=0.0)
    batch.start_batch(
        [TaskRecord(spec=TaskSpec(duration=d), state=TaskState.SCHEDULED)
         for d in durations]
    )
    seq_order = [seq.next_completion().spec.duration for _ in durations]
    batch_order = [batch.next_completion().spec.duration for _ in durations]
    assert seq_order == batch_order
