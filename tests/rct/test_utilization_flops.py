"""Tests for utilization tracking and FLOP accounting."""

import numpy as np
import pytest

from repro.rct.flops import (
    chamfer_flops,
    docking_eval_flops,
    md_step_flops,
    model_forward_flops,
)
from repro.rct.utilization import UtilizationTracker


# --------------------------------------------------------------- utilization


def test_series_reconstructs_step_function():
    t = UtilizationTracker(total_gpus=4, total_cpus=8)
    t.record_start(0.0, 2, 0, "a")
    t.record_start(1.0, 2, 0, "b")
    t.record_end(3.0, 2, 0, "a")
    t.record_end(5.0, 2, 0, "b")
    s = t.series()
    np.testing.assert_array_equal(s.times, [0, 1, 3, 5])
    np.testing.assert_array_equal(s.busy_gpus, [2, 4, 2, 0])
    np.testing.assert_array_equal(s.per_stage["a"], [2, 2, 0, 0])
    np.testing.assert_array_equal(s.per_stage["b"], [0, 2, 2, 0])


def test_average_utilization():
    t = UtilizationTracker(total_gpus=4, total_cpus=0)
    t.record_start(0.0, 4, 0, "x")
    t.record_end(2.0, 4, 0, "x")
    # fully busy 0→2: but the last event closes the span, so weight is
    # over [0, 2] with busy=4 during [0,2)
    assert t.series().average_utilization() == pytest.approx(1.0)


def test_average_utilization_half():
    t = UtilizationTracker(total_gpus=4, total_cpus=0)
    t.record_start(0.0, 2, 0, "x")
    t.record_end(4.0, 2, 0, "x")
    assert t.series().average_utilization() == pytest.approx(0.5)


def test_empty_series():
    t = UtilizationTracker(total_gpus=4, total_cpus=0)
    s = t.series()
    assert s.average_utilization() == 0.0
    assert s.ascii_plot() == "(no utilization data)"


def test_ascii_plot_renders():
    t = UtilizationTracker(total_gpus=2, total_cpus=0)
    t.record_start(0.0, 2, 0, "x")
    t.record_end(10.0, 2, 0, "x")
    plot = t.series().ascii_plot(width=40, height=5)
    assert "#" in plot
    assert len(plot.splitlines()) == 7


# --------------------------------------------------------------------- flops


def test_md_step_flops_quadratic_in_beads():
    small = md_step_flops(100)
    large = md_step_flops(200)
    assert 3.5 < large / small < 4.5


def test_docking_flops_linear_in_atoms():
    assert docking_eval_flops(50) == pytest.approx(2 * docking_eval_flops(25))


def test_flops_validate():
    with pytest.raises(ValueError):
        md_step_flops(0)
    with pytest.raises(ValueError):
        docking_eval_flops(0)


def test_dense_model_flops_exact():
    from repro.nn.layers import Dense, Sequential

    rng = np.random.default_rng(0)
    net = Sequential(Dense(10, 20, rng), Dense(20, 1, rng))
    # 2*10*20+20 + 2*20*1+1 = 420 + 41
    assert model_forward_flops(net, (10,)) == pytest.approx(461.0)


def test_conv_model_flops_exact():
    from repro.nn.layers import Conv2d, Sequential

    rng = np.random.default_rng(0)
    net = Sequential(Conv2d(3, 8, 3, rng, padding=1))
    # out 8×8×8; macs = 8*8*8*3*3*3 = 13824; flops = 27648
    assert model_forward_flops(net, (3, 8, 8)) == pytest.approx(27648.0)


def test_smilesnet_flops_positive_and_stable():
    from repro.surrogate.model import build_smilesnet

    net = build_smilesnet(0)
    f = model_forward_flops(net, (7, 24, 24))
    assert f > 1e6
    assert model_forward_flops(net, (7, 24, 24)) == f


def test_chamfer_flops():
    assert chamfer_flops(100) == pytest.approx(80000.0)


def test_aae_flops():
    from repro.ddmd.aae import AAE, AAEConfig
    from repro.rct.flops import aae_training_step_flops

    model = AAE(AAEConfig(latent_dim=4, hidden=8), n_points=20, seed=0)
    f = aae_training_step_flops(model, 20)
    assert f > chamfer_flops(20)
