"""Integration: the workflow infrastructure running real science tasks.

The campaign driver calls the science stages directly; this test closes
the loop the paper actually ran — EnTK pipelines whose tasks are *real*
docking and ESMACS computations, executed by the pilot's thread backend,
with RAPTOR carrying the docking sweep.
"""

import numpy as np
import pytest

from repro.chem.library import generate_library
from repro.chem.smiles import parse_smiles
from repro.docking.engine import DockingEngine
from repro.docking.lga import LGAConfig
from repro.docking.receptor import make_receptor
from repro.esmacs.protocol import EsmacsConfig, EsmacsRunner
from repro.rct.cluster import Cluster, NodeSpec
from repro.rct.entk import AppManager, Pipeline, Stage
from repro.rct.executor import ThreadExecutor
from repro.rct.pilot import Pilot
from repro.rct.raptor import RaptorConfig, run_raptor
from repro.rct.task import TaskSpec

FAST = LGAConfig(population=8, generations=3)
TINY_CG = EsmacsConfig(
    replicas=2,
    equilibration_ns=0.5,
    production_ns=1.0,
    steps_per_ns=8,
    n_residues=40,
    record_every=4,
    minimize_iterations=10,
)


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("PLPro", "6W9C", seed=7)


def test_raptor_runs_real_docking(receptor):
    """RAPTOR's callable backend carries the actual S1 sweep."""
    library = generate_library(8, seed=71)
    engine = DockingEngine(receptor, seed=0, config=FAST)
    out = run_raptor(
        [(e.smiles, e.compound_id) for e in library],
        lambda item: engine.dock_smiles(*item),
        RaptorConfig(n_workers=4, bulk_size=2),
    )
    scores = {r.compound_id: r.score for r in out.results}
    # identical to sequential docking (per-compound RNG streams)
    reference = DockingEngine(receptor, seed=0, config=FAST).dock_library(library)
    for r in reference:
        assert scores[r.compound_id] == pytest.approx(r.score)


def test_entk_pipeline_runs_real_science_stages(receptor):
    """A dock-stage → esmacs-stage pipeline with real callables on the
    thread backend: the stage barrier carries real data forward."""
    library = generate_library(3, seed=72)
    engine = DockingEngine(receptor, seed=0, config=FAST)
    esmacs = EsmacsRunner(receptor, TINY_CG, seed=0)

    dock_results = {}

    def dock_task(i):
        entry = library[i]
        result = engine.dock_smiles(entry.smiles, entry.compound_id)
        dock_results[entry.compound_id] = result
        return result.score

    def esmacs_task(compound_id):
        dock = dock_results[compound_id]
        res = esmacs.run(
            parse_smiles(dock.smiles),
            engine.pose_coordinates(dock),
            compound_id,
            keep_trajectories=False,
        )
        return res.binding_free_energy

    s1 = Stage(
        name="S1",
        tasks=[
            TaskSpec(cpus=1, fn=dock_task, args=(i,), stage="S1", name=f"dock-{i}")
            for i in range(3)
        ],
    )
    cg_stage_holder = {}

    def build_cg(records):
        # adaptive continuation: generate the CG stage from S1's output
        if cg_stage_holder:
            return None
        cg_stage_holder["done"] = True
        return Stage(
            name="S3-CG",
            tasks=[
                TaskSpec(
                    cpus=1,
                    fn=esmacs_task,
                    args=(cid,),
                    stage="S3-CG",
                    name=f"cg-{cid}",
                )
                for cid in sorted(dock_results)
            ],
        )

    cluster = Cluster(2, NodeSpec(cpus=2, gpus=0))
    executor = ThreadExecutor(max_workers=4)
    pilot = Pilot(cluster.allocate(2, 0.0), executor)
    out = AppManager(pilot).run(
        [Pipeline(name="science", stages=[s1], stage_generator=build_cg)]
    )
    executor.shutdown()

    records = out["science"]
    cg_records = [r for r in records if r.spec.stage == "S3-CG"]
    assert len(cg_records) == 3
    dgs = [r.result for r in cg_records]
    assert all(np.isfinite(d) for d in dgs)
    # stage barrier: every CG task started after every dock task ended
    s1_end = max(r.end_time for r in records if r.spec.stage == "S1")
    cg_start = min(r.start_time for r in cg_records)
    assert cg_start >= s1_end - 1e-6
