"""Tests for the task model and simulated cluster."""

import pytest

from repro.rct.cluster import SUMMIT_NODE, BatchSystem, Cluster, NodeSpec
from repro.rct.task import TaskRecord, TaskSpec, TaskState


# ------------------------------------------------------------------- tasks


def test_task_defaults_and_uid_unique():
    a = TaskSpec(duration=1.0)
    b = TaskSpec(duration=1.0)
    assert a.uid != b.uid
    assert a.name.startswith("task-")
    assert a.cpus == 1


def test_task_validation():
    with pytest.raises(ValueError):
        TaskSpec(cpus=0, gpus=0, duration=1.0)
    with pytest.raises(ValueError):
        TaskSpec(duration=-1.0)
    with pytest.raises(ValueError):
        TaskSpec(nodes=0, duration=1.0)
    with pytest.raises(ValueError):
        TaskSpec()  # neither duration nor fn


def test_task_record_wall_time_and_node_seconds():
    rec = TaskRecord(spec=TaskSpec(gpus=3, duration=5.0))
    assert rec.wall_time == 0.0
    rec.start_time, rec.end_time = 10.0, 20.0
    assert rec.wall_time == 10.0
    # 3 of 6 gpus = half a node for 10 s
    assert rec.node_seconds(gpus_per_node=6, cpus_per_node=42) == pytest.approx(5.0)


def test_multi_node_record_counts_whole_nodes():
    rec = TaskRecord(spec=TaskSpec(gpus=6, cpus=42, nodes=4, duration=1.0))
    rec.start_time, rec.end_time = 0.0, 10.0
    assert rec.node_seconds() == pytest.approx(40.0)


# ----------------------------------------------------------------- cluster


def test_summit_node_shape():
    assert SUMMIT_NODE.gpus == 6
    assert SUMMIT_NODE.cpus == 42


def test_allocate_and_release():
    c = Cluster(10)
    a = c.allocate(4, now=0.0)
    assert a.n_nodes == 4
    assert a.total_gpus == 24
    assert c.free_nodes == 6
    c.release(a)
    assert c.free_nodes == 10


def test_over_allocation_rejected():
    c = Cluster(3)
    c.allocate(2, now=0.0)
    with pytest.raises(RuntimeError):
        c.allocate(2, now=0.0)


def test_allocation_validation():
    with pytest.raises(ValueError):
        Cluster(0)
    with pytest.raises(ValueError):
        Cluster(3).allocate(0, now=0.0)
    with pytest.raises(ValueError):
        NodeSpec(cpus=0)


def test_batch_system_charges_queue_wait():
    c = Cluster(100)
    batch = BatchSystem(c, queue_wait_base=60.0, queue_wait_per_node=0.1)
    alloc, grant = batch.submit(50, now=100.0)
    assert grant == pytest.approx(100.0 + 60.0 + 5.0)
    assert alloc.granted_at == grant
    assert c.free_nodes == 50
