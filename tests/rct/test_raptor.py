"""Tests for the RAPTOR master/worker overlay."""

import time

import numpy as np
import pytest

from repro.rct.fault import FaultModel, RetryPolicy
from repro.rct.raptor import RaptorConfig, run_raptor, simulate_raptor
from repro.util.rng import rng_stream


def _durations(n=2000, seed=0):
    # lognormal: the long-tailed docking-time distribution of §6.1.2
    return rng_stream(seed, "t/raptor").lognormal(
        mean=np.log(0.2), sigma=0.8, size=n
    )


def test_all_items_complete_and_work_conserved():
    d = _durations(500)
    res = simulate_raptor(d, RaptorConfig(n_workers=20, bulk_size=8))
    assert res.n_items == 500
    assert res.worker_busy.sum() == pytest.approx(d.sum())


def test_makespan_bounded_below_by_ideal():
    d = _durations(1000)
    cfg = RaptorConfig(n_workers=50, bulk_size=16)
    res = simulate_raptor(d, cfg)
    ideal = d.sum() / 50
    assert res.makespan >= ideal
    assert res.makespan < 3.0 * ideal  # load balancing keeps it close


def test_more_workers_faster():
    d = _durations(4000)
    slow = simulate_raptor(d, RaptorConfig(n_workers=20, n_masters=1, bulk_size=32))
    fast = simulate_raptor(d, RaptorConfig(n_workers=80, n_masters=2, bulk_size=32))
    assert fast.makespan < slow.makespan


def test_single_master_saturates_at_scale():
    """The bottleneck multiple masters exist to avoid (§6.1.2)."""
    d = _durations(20_000)
    one = simulate_raptor(
        d, RaptorConfig(n_workers=600, n_masters=1, bulk_size=32, dispatch_overhead=0.05)
    )
    many = simulate_raptor(
        d, RaptorConfig(n_workers=600, n_masters=8, bulk_size=32, dispatch_overhead=0.05)
    )
    assert many.makespan < 0.7 * one.makespan
    assert many.worker_utilization > one.worker_utilization


def test_bulking_amortizes_dispatch_overhead():
    d = _durations(5000)
    tiny_bulks = simulate_raptor(
        d, RaptorConfig(n_workers=100, n_masters=1, bulk_size=1, dispatch_overhead=0.05)
    )
    big_bulks = simulate_raptor(
        d, RaptorConfig(n_workers=100, n_masters=1, bulk_size=64, dispatch_overhead=0.05)
    )
    assert big_bulks.makespan < tiny_bulks.makespan


def test_near_linear_scaling_with_scaled_masters():
    """Paper claim: near-linear scaling to thousands of nodes when
    masters scale with workers."""
    throughputs = {}
    for workers in (128, 512, 2048):
        d = _durations(n=workers * 40, seed=workers)
        cfg = RaptorConfig(
            n_workers=workers,
            n_masters=max(1, workers // 128),
            bulk_size=32,
            dispatch_overhead=0.05,
        )
        throughputs[workers] = simulate_raptor(d, cfg).throughput
    speedup = throughputs[2048] / throughputs[128]
    assert speedup > 0.75 * (2048 / 128)


def test_dynamic_balancing_absorbs_skewed_masters():
    """All long tasks dealt to one master: stealing keeps utilization up."""
    # round-robin dealing sends every 4th item to each master; make one
    # master's share pathologically heavy
    d = np.full(4000, 0.05)
    d[0::4] = 2.0  # master 0's items are 40× longer
    res = simulate_raptor(
        d, RaptorConfig(n_workers=40, n_masters=4, bulk_size=8, dispatch_overhead=0.01)
    )
    ideal = d.sum() / 40
    assert res.makespan < 2.0 * ideal


def test_validation():
    with pytest.raises(ValueError):
        simulate_raptor([], RaptorConfig(n_workers=4))
    with pytest.raises(ValueError):
        simulate_raptor([-1.0], RaptorConfig(n_workers=1))
    with pytest.raises(ValueError):
        RaptorConfig(n_workers=0)
    with pytest.raises(ValueError):
        RaptorConfig(n_workers=2, n_masters=4)
    with pytest.raises(ValueError):
        RaptorConfig(n_workers=2, dispatch_overhead=-1)


def test_run_raptor_real_callable():
    items = list(range(100))
    res = run_raptor(items, lambda x: x * x, RaptorConfig(n_workers=4, bulk_size=10))
    assert res.results == [x * x for x in items]
    assert res.n_items == 100
    assert res.makespan > 0


def test_run_raptor_empty_rejected():
    with pytest.raises(ValueError):
        run_raptor([], lambda x: x, RaptorConfig(n_workers=2))


def test_run_raptor_isolates_task_failures():
    """One failing item must not sink its bulk or the run (RP isolates
    task execution)."""

    def flaky(x):
        if x == 7:
            raise ValueError("bad ligand")
        return x + 1

    res = run_raptor(list(range(20)), flaky, RaptorConfig(n_workers=3, bulk_size=5))
    assert isinstance(res.results[7], ValueError)
    ok = [r for i, r in enumerate(res.results) if i != 7]
    assert ok == [i + 1 for i in range(20) if i != 7]
    # the failure is flagged, not just stored as an opaque object
    assert res.failed_indices == [7]
    assert res.n_failed == 1
    assert res.failure_summary.n_dropped == 1
    assert res.failure_summary.reconciles()


def test_run_raptor_busy_time_charged_per_thread():
    """Per-worker busy time must land on executing threads (not be
    indexed by bulk number) and conserve total work."""
    import time as _time

    def work(x):
        _time.sleep(0.005)
        return x

    cfg = RaptorConfig(n_workers=3, bulk_size=4)
    res = run_raptor(list(range(36)), work, cfg)
    assert res.worker_busy.shape == (3,)
    # 36 items × ≥5 ms spread over 3 threads: every thread did real work,
    # and no cell got more than the wall-clock span (the old bulk-indexed
    # accounting piled many bulks' time into a few slots)
    assert res.worker_busy.sum() >= 36 * 0.005
    assert (res.worker_busy <= res.makespan + 0.05).all()
    assert (res.worker_busy > 0).sum() == 3


def test_run_raptor_retries_transient_failures():
    calls = {}

    def flaky(x):
        calls[x] = calls.get(x, 0) + 1
        if x % 5 == 2 and calls[x] == 1:
            raise ValueError("transient")
        if x == 13:
            raise ValueError("permanent")
        return x * 2

    res = run_raptor(
        list(range(30)),
        flaky,
        RaptorConfig(n_workers=4, bulk_size=6),
        retry=RetryPolicy(max_retries=2, backoff_base=0.0),
    )
    assert res.failed_indices == [13]
    ok = [r for i, r in enumerate(res.results) if i != 13]
    assert ok == [i * 2 for i in range(30) if i != 13]
    s = res.failure_summary
    assert s.n_retries > 0 and s.n_dropped == 1 and s.reconciles()


def test_simulate_raptor_injected_failures_retry_and_reconcile():
    d = np.full(2000, 0.2)
    cfg = RaptorConfig(n_workers=20, bulk_size=8)
    clean = simulate_raptor(d, cfg)
    res = simulate_raptor(
        d,
        cfg,
        fault_model=FaultModel(failure_rate=0.05, seed=2),
        retry=RetryPolicy(max_retries=3, backoff_base=0.1, seed=2),
    )
    s = res.failure_summary
    assert s.n_failures > 50  # ~5 % of 2000+ attempts
    assert s.n_failures == s.n_retries + s.n_dropped
    assert res.n_failed == s.n_dropped
    # failed attempts burn partial work, so busy exceeds the clean total
    assert res.worker_busy.sum() > clean.worker_busy.sum()
    assert res.makespan < 2.0 * clean.makespan


def test_simulate_raptor_drops_reported_when_retries_disabled():
    d = np.full(100, 0.5)
    res = simulate_raptor(
        d,
        RaptorConfig(n_workers=4, bulk_size=8),
        fault_model=FaultModel(failure_rate=1.0, seed=0),
    )
    assert res.n_failed == 100
    assert res.failed_indices == list(range(100))
    assert res.failure_summary.n_dropped == 100
    assert res.failure_summary.reconciles()


def test_simulate_raptor_hang_needs_timeout():
    with pytest.raises(ValueError, match="timeout"):
        simulate_raptor(
            [1.0],
            RaptorConfig(n_workers=1),
            fault_model=FaultModel(hang_rate=0.5, seed=0),
        )
    res = simulate_raptor(
        np.full(50, 1.0),
        RaptorConfig(n_workers=4, bulk_size=4),
        fault_model=FaultModel(hang_rate=0.3, seed=1),
        retry=RetryPolicy(max_retries=10, backoff_base=0.1, timeout=3.0, seed=1),
    )
    assert res.n_failed == 0
    assert res.failure_summary.n_timeouts > 0
    assert res.failure_summary.reconciles()


def test_simulate_raptor_stealing_charges_donor_and_conserves_busy():
    """Work-stealing accounting: stolen bulks charge dispatch to the
    donor master, and per-worker busy time conserves total work."""
    # master 1's items are 100× longer: master 0's workers finish their
    # own queue and must steal from master 1
    d = np.full(400, 0.01)
    d[1::2] = 1.0
    cfg = RaptorConfig(
        n_workers=8, n_masters=2, bulk_size=4, dispatch_overhead=0.05
    )
    res = simulate_raptor(d, cfg)
    # busy time is conserved exactly (no faults)
    assert res.worker_busy.sum() == pytest.approx(d.sum())
    # every dispatch charged 0.05s to some master; total dispatches =
    # total bulks, regardless of who executed them
    n_bulks_served = res.master_busy.sum() / cfg.dispatch_overhead
    assert n_bulks_served == pytest.approx(np.ceil(200 / 4) * 2)
    # dispatch is charged to the queue's owner even for stolen bulks, so
    # each master is charged exactly its own 50 bulks — the heavy master
    # is NOT under-charged just because light-side workers executed its
    # items
    assert res.master_busy[0] == pytest.approx(50 * cfg.dispatch_overhead)
    assert res.master_busy[1] == pytest.approx(50 * cfg.dispatch_overhead)
    # and the stealing really happened: master 0's workers (even slots)
    # executed far more than their own queue's 2s of work
    assert res.worker_busy[0::2].sum() > 10.0


def test_run_raptor_backoff_charged_to_ledger_not_slept():
    """Retry backoff must not stall a pool thread: a retry-heavy bulk
    with a huge backoff finishes in real seconds while the full backoff
    shows up on the failure ledger."""
    calls = {}

    def flaky(x):
        calls[x] = calls.get(x, 0) + 1
        if calls[x] == 1:
            raise ValueError("transient")
        return x * 2

    t0 = time.perf_counter()
    res = run_raptor(
        list(range(40)),
        flaky,
        RaptorConfig(n_workers=4, bulk_size=8),
        retry=RetryPolicy(max_retries=2, backoff_base=30.0, backoff_jitter=0.0),
    )
    wall = time.perf_counter() - t0
    assert res.failed_indices == []
    assert res.results == [x * 2 for x in range(40)]
    s = res.failure_summary
    assert s.n_retries == 40 and s.reconciles()
    # every retry charged its full 30 s backoff to the ledger...
    assert s.time_lost_backoff == pytest.approx(40 * 30.0)
    # ...while the pool never actually slept through any of it
    assert wall < 5.0
    assert res.makespan < 5.0
