"""Tests for the RAPTOR master/worker overlay."""

import numpy as np
import pytest

from repro.rct.raptor import RaptorConfig, run_raptor, simulate_raptor
from repro.util.rng import rng_stream


def _durations(n=2000, seed=0):
    # lognormal: the long-tailed docking-time distribution of §6.1.2
    return rng_stream(seed, "t/raptor").lognormal(
        mean=np.log(0.2), sigma=0.8, size=n
    )


def test_all_items_complete_and_work_conserved():
    d = _durations(500)
    res = simulate_raptor(d, RaptorConfig(n_workers=20, bulk_size=8))
    assert res.n_items == 500
    assert res.worker_busy.sum() == pytest.approx(d.sum())


def test_makespan_bounded_below_by_ideal():
    d = _durations(1000)
    cfg = RaptorConfig(n_workers=50, bulk_size=16)
    res = simulate_raptor(d, cfg)
    ideal = d.sum() / 50
    assert res.makespan >= ideal
    assert res.makespan < 3.0 * ideal  # load balancing keeps it close


def test_more_workers_faster():
    d = _durations(4000)
    slow = simulate_raptor(d, RaptorConfig(n_workers=20, n_masters=1, bulk_size=32))
    fast = simulate_raptor(d, RaptorConfig(n_workers=80, n_masters=2, bulk_size=32))
    assert fast.makespan < slow.makespan


def test_single_master_saturates_at_scale():
    """The bottleneck multiple masters exist to avoid (§6.1.2)."""
    d = _durations(20_000)
    one = simulate_raptor(
        d, RaptorConfig(n_workers=600, n_masters=1, bulk_size=32, dispatch_overhead=0.05)
    )
    many = simulate_raptor(
        d, RaptorConfig(n_workers=600, n_masters=8, bulk_size=32, dispatch_overhead=0.05)
    )
    assert many.makespan < 0.7 * one.makespan
    assert many.worker_utilization > one.worker_utilization


def test_bulking_amortizes_dispatch_overhead():
    d = _durations(5000)
    tiny_bulks = simulate_raptor(
        d, RaptorConfig(n_workers=100, n_masters=1, bulk_size=1, dispatch_overhead=0.05)
    )
    big_bulks = simulate_raptor(
        d, RaptorConfig(n_workers=100, n_masters=1, bulk_size=64, dispatch_overhead=0.05)
    )
    assert big_bulks.makespan < tiny_bulks.makespan


def test_near_linear_scaling_with_scaled_masters():
    """Paper claim: near-linear scaling to thousands of nodes when
    masters scale with workers."""
    throughputs = {}
    for workers in (128, 512, 2048):
        d = _durations(n=workers * 40, seed=workers)
        cfg = RaptorConfig(
            n_workers=workers,
            n_masters=max(1, workers // 128),
            bulk_size=32,
            dispatch_overhead=0.05,
        )
        throughputs[workers] = simulate_raptor(d, cfg).throughput
    speedup = throughputs[2048] / throughputs[128]
    assert speedup > 0.75 * (2048 / 128)


def test_dynamic_balancing_absorbs_skewed_masters():
    """All long tasks dealt to one master: stealing keeps utilization up."""
    # round-robin dealing sends every 4th item to each master; make one
    # master's share pathologically heavy
    d = np.full(4000, 0.05)
    d[0::4] = 2.0  # master 0's items are 40× longer
    res = simulate_raptor(
        d, RaptorConfig(n_workers=40, n_masters=4, bulk_size=8, dispatch_overhead=0.01)
    )
    ideal = d.sum() / 40
    assert res.makespan < 2.0 * ideal


def test_validation():
    with pytest.raises(ValueError):
        simulate_raptor([], RaptorConfig(n_workers=4))
    with pytest.raises(ValueError):
        simulate_raptor([-1.0], RaptorConfig(n_workers=1))
    with pytest.raises(ValueError):
        RaptorConfig(n_workers=0)
    with pytest.raises(ValueError):
        RaptorConfig(n_workers=2, n_masters=4)
    with pytest.raises(ValueError):
        RaptorConfig(n_workers=2, dispatch_overhead=-1)


def test_run_raptor_real_callable():
    items = list(range(100))
    res = run_raptor(items, lambda x: x * x, RaptorConfig(n_workers=4, bulk_size=10))
    assert res.results == [x * x for x in items]
    assert res.n_items == 100
    assert res.makespan > 0


def test_run_raptor_empty_rejected():
    with pytest.raises(ValueError):
        run_raptor([], lambda x: x, RaptorConfig(n_workers=2))


def test_run_raptor_isolates_task_failures():
    """One failing item must not sink its bulk or the run (RP isolates
    task execution)."""

    def flaky(x):
        if x == 7:
            raise ValueError("bad ligand")
        return x + 1

    res = run_raptor(list(range(20)), flaky, RaptorConfig(n_workers=3, bulk_size=5))
    assert isinstance(res.results[7], ValueError)
    ok = [r for i, r in enumerate(res.results) if i != 7]
    assert ok == [i + 1 for i in range(20) if i != 7]
