"""Tests for executors and the pilot scheduling loop."""

import pytest

from repro.rct.cluster import Cluster, NodeSpec
from repro.rct.executor import SimExecutor, ThreadExecutor
from repro.rct.pilot import Pilot
from repro.rct.task import TaskRecord, TaskSpec, TaskState


def _pilot(n_nodes=4, spec=None, overhead=0.0):
    spec = spec or NodeSpec(cpus=4, gpus=2)
    cluster = Cluster(n_nodes, spec)
    return Pilot(cluster.allocate(n_nodes, 0.0), SimExecutor(overhead))


# ---------------------------------------------------------------- executors


def test_sim_executor_orders_completions_by_time():
    ex = SimExecutor(launch_overhead=0.0)
    slow = TaskRecord(spec=TaskSpec(duration=5.0))
    fast = TaskRecord(spec=TaskSpec(duration=1.0))
    ex.start(slow)
    ex.start(fast)
    assert ex.next_completion() is fast
    assert ex.now == 1.0
    assert ex.next_completion() is slow
    assert ex.now == 5.0


def test_sim_executor_charges_overhead():
    ex = SimExecutor(launch_overhead=0.5)
    rec = TaskRecord(spec=TaskSpec(duration=1.0))
    ex.start(rec)
    ex.next_completion()
    assert ex.now == pytest.approx(1.5)


def test_sim_executor_requires_duration():
    ex = SimExecutor()
    with pytest.raises(ValueError):
        ex.start(TaskRecord(spec=TaskSpec(fn=lambda: 1)))


def test_sim_executor_no_tasks_raises():
    with pytest.raises(RuntimeError):
        SimExecutor().next_completion()


def test_thread_executor_runs_real_functions():
    ex = ThreadExecutor(max_workers=2)
    rec = TaskRecord(spec=TaskSpec(fn=lambda x: x * 2, args=(21,)))
    ex.start(rec)
    done = ex.next_completion()
    assert done.result == 42
    assert done.state == TaskState.DONE
    assert done.wall_time >= 0
    ex.shutdown()


def test_thread_executor_captures_failures():
    ex = ThreadExecutor(max_workers=1)

    def boom():
        raise RuntimeError("kaput")

    rec = TaskRecord(spec=TaskSpec(fn=boom))
    ex.start(rec)
    done = ex.next_completion()
    assert done.state == TaskState.FAILED
    assert "kaput" in done.error
    ex.shutdown()


def test_thread_executor_requires_fn():
    ex = ThreadExecutor()
    with pytest.raises(ValueError):
        ex.start(TaskRecord(spec=TaskSpec(duration=1.0)))
    ex.shutdown()


# -------------------------------------------------------------------- pilot


def test_pilot_runs_everything():
    pilot = _pilot()
    tasks = [TaskSpec(gpus=1, duration=1.0) for _ in range(20)]
    records = pilot.run(tasks)
    assert len(records) == 20
    assert all(r.state == TaskState.DONE for r in records)


def test_pilot_respects_slot_limits():
    """8 GPU slots, 1s tasks: 20 tasks need ceil(20/8)=3 waves."""
    pilot = _pilot(n_nodes=4)  # 4 nodes × 2 gpus
    tasks = [TaskSpec(gpus=1, duration=1.0) for _ in range(20)]
    pilot.run(tasks)
    assert pilot.executor.now == pytest.approx(3.0)


def test_pilot_packs_cpu_and_gpu_tasks_together():
    """CPU-only and GPU tasks share nodes — heterogeneous mixing."""
    pilot = _pilot(n_nodes=1)  # 4 cpus, 2 gpus
    tasks = [
        TaskSpec(cpus=2, gpus=0, duration=1.0),
        TaskSpec(cpus=2, gpus=0, duration=1.0),
        TaskSpec(cpus=0, gpus=2, duration=1.0),
    ]
    # all three fit at once (cpus 2+2 <= 4, gpus 2 <= 2)
    pilot.run(tasks)
    assert pilot.executor.now == pytest.approx(1.0)


def test_pilot_multi_node_task_needs_free_nodes():
    pilot = _pilot(n_nodes=3)
    tasks = [
        TaskSpec(nodes=2, cpus=4, gpus=2, duration=2.0, name="mpi"),
        TaskSpec(gpus=1, duration=1.0),
    ]
    records = pilot.run(tasks)
    mpi = [r for r in records if r.spec.name == "mpi"][0]
    assert len(mpi.node_ids) == 2


def test_pilot_oversized_task_rejected():
    pilot = _pilot()
    with pytest.raises(ValueError, match="more than one node"):
        pilot.run([TaskSpec(gpus=99, duration=1.0)])


def test_pilot_too_many_nodes_rejected():
    pilot = _pilot(n_nodes=2)
    with pytest.raises(ValueError, match="nodes"):
        pilot.run([TaskSpec(nodes=5, duration=1.0)])


def test_pilot_backfills_when_node_frees():
    """10,000-tasks-1000-nodes semantics at toy scale: tasks start as
    slots free, preserving full occupancy until the tail."""
    pilot = _pilot(n_nodes=2)  # 4 gpu slots
    tasks = [TaskSpec(gpus=1, duration=d) for d in (4.0, 1.0, 1.0, 1.0, 1.0)]
    pilot.run(tasks)
    # 4 slots: three 1s tasks finish, 5th backfills at t=1, ends t=2;
    # makespan set by the 4s task
    assert pilot.executor.now == pytest.approx(4.0)
    util = pilot.utilization.series().average_utilization()
    assert util == pytest.approx(8.0 / 16.0)  # 8 gpu-seconds over 4s × 4 slots


def test_pilot_node_hours_accounting():
    pilot = _pilot(n_nodes=2, spec=NodeSpec(cpus=4, gpus=2))
    pilot.run([TaskSpec(gpus=2, cpus=0, duration=3600.0)])
    assert pilot.node_hours() == pytest.approx(1.0)


def test_pilot_thread_backend_end_to_end():
    cluster = Cluster(2, NodeSpec(cpus=2, gpus=0))
    ex = ThreadExecutor(max_workers=4)
    pilot = Pilot(cluster.allocate(2, 0.0), ex)
    tasks = [TaskSpec(cpus=1, fn=lambda i=i: i * i) for i in range(8)]
    records = pilot.run(tasks)
    assert sorted(r.result for r in records) == [i * i for i in range(8)]
    ex.shutdown()


def test_multiple_concurrent_pilots_share_cluster():
    """§6.1.2: 'multiple concurrent pilots are used to isolate the
    docking computation' — one cluster can host several allocations."""
    cluster = Cluster(6, NodeSpec(cpus=4, gpus=2))
    a = Pilot(cluster.allocate(3, 0.0), SimExecutor(0.0))
    b = Pilot(cluster.allocate(3, 0.0), SimExecutor(0.0))
    assert cluster.free_nodes == 0
    assert set(a.allocation.node_ids).isdisjoint(b.allocation.node_ids)
    ra = a.run([TaskSpec(gpus=1, duration=1.0) for _ in range(6)])
    rb = b.run([TaskSpec(gpus=1, duration=2.0) for _ in range(6)])
    assert len(ra) == 6 and len(rb) == 6
    assert a.executor.now == pytest.approx(1.0)
    assert b.executor.now == pytest.approx(2.0)


def test_pilot_continues_past_failed_tasks():
    """A failing task frees its slots and the workload completes."""
    cluster = Cluster(1, NodeSpec(cpus=2, gpus=0))
    ex = ThreadExecutor(max_workers=2)
    pilot = Pilot(cluster.allocate(1, 0.0), ex)

    def boom():
        raise RuntimeError("task crashed")

    tasks = [TaskSpec(cpus=1, fn=boom)] + [
        TaskSpec(cpus=1, fn=lambda i=i: i) for i in range(5)
    ]
    records = pilot.run(tasks)
    states = [r.state for r in records]
    assert states.count(TaskState.FAILED) == 1
    assert states.count(TaskState.DONE) == 5
    ex.shutdown()


def test_pilot_failed_task_never_counted_as_done():
    """Regression: a FAILED record must surface in the results AND the
    failure ledger — never flow downstream as if it succeeded."""
    cluster = Cluster(1, NodeSpec(cpus=2, gpus=0))

    def boom():
        raise RuntimeError("task crashed")

    with Pilot(cluster.allocate(1, 0.0), ThreadExecutor(max_workers=2)) as pilot:
        records = pilot.run(
            [TaskSpec(cpus=1, fn=boom, stage="S1")]
            + [TaskSpec(cpus=1, fn=lambda: 42, stage="S1") for _ in range(3)]
        )
    failed = [r for r in records if r.state is TaskState.FAILED]
    assert len(failed) == 1
    assert failed[0].result is None and "task crashed" in failed[0].error
    assert pilot.failures.n_dropped == 1
    assert pilot.failures.dropped_by_stage == {"S1": 1}
    assert pilot.failures.reconciles()


def test_pilot_multi_node_per_node_overcommit_rejected():
    """Regression: a multi-node task whose per-node cpus/gpus exceed the
    node spec must fail validation, not surface later as a misleading
    'deadlock' RuntimeError."""
    pilot = _pilot(n_nodes=4)  # nodes hold 4 cpus / 2 gpus
    bad = TaskSpec(nodes=2, cpus=8, gpus=2, duration=1.0)
    with pytest.raises(ValueError, match="per node"):
        pilot.run([bad])
    with pytest.raises(ValueError, match="per node"):
        pilot.validate_fits(TaskSpec(nodes=3, cpus=4, gpus=99, duration=1.0))
