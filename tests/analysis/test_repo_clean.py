"""The repo's own source must lint clean — and regressions must not.

The checked-in ``[tool.repro-lint]`` table in pyproject.toml is the
baseline; this test is the gate that keeps it honest.  The regression
cases re-create the two bug classes this lint engine exists to catch:
PR 1's unlocked ``+=`` inside a ``run_raptor`` worker, and an
overcommitted ``TaskSpec`` literal that ``Pilot.validate_fits`` would
reject hours into a run.
"""

from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_source, run_analysis
from repro.analysis.checkers import checkers_for

REPO = Path(__file__).resolve().parents[2]


def repo_config():
    return AnalysisConfig.from_pyproject(REPO / "pyproject.toml")


def test_src_lints_clean_with_checked_in_config():
    config = repo_config()
    result = run_analysis([REPO / "src"], config)
    assert result.ok, "\n".join(f.render() for f in result.findings)
    assert result.n_files > 50  # the engine actually walked the tree


def test_reintroducing_run_raptor_race_is_caught():
    # PR 1's bug, distilled: per-worker busy accounting via unlocked +=
    # inside the function handed to run_raptor.
    src = (
        "from repro.rct.raptor import run_raptor\n"
        "\n"
        "worker_busy = {}\n"
        "\n"
        "def work(item):\n"
        "    out = item.run()\n"
        "    worker_busy[item.worker] += out.elapsed\n"
        "    return out\n"
        "\n"
        "def drive(executor, items):\n"
        "    return run_raptor(executor, items, fn=work)\n"
    )
    result = analyze_source(
        src, checkers_for(["lock-discipline"]), repo_config()
    )
    assert len(result.findings) == 1
    assert "worker_busy" in result.findings[0].message


def test_overcommitted_taskspec_literal_is_caught():
    src = (
        "from repro.rct.cluster import NodeSpec\n"
        "from repro.rct.task import TaskSpec\n"
        "\n"
        "NODE = NodeSpec(cpus=42, gpus=6)\n"
        "SPEC = TaskSpec(name='md', cpus=4, gpus=8)\n"
    )
    result = analyze_source(
        src, checkers_for(["workflow-shape"]), repo_config()
    )
    assert len(result.findings) == 1
    assert "validate_fits" in result.findings[0].message


def test_raptor_module_itself_is_clean():
    # the fixed raptor.py must pass the very rule built from its old bug
    config = repo_config()
    source = (REPO / "src" / "repro" / "rct" / "raptor.py").read_text()
    result = analyze_source(
        source,
        checkers_for(["lock-discipline"]),
        config,
        module="repro.rct.raptor",
        path="src/repro/rct/raptor.py",
    )
    assert result.ok, "\n".join(f.render() for f in result.findings)
