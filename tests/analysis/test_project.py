"""Project builder: symbol table, import canonicalization, call graph."""

from pathlib import Path

import pytest

from repro.analysis.project import build_project

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def proj():
    return build_project([FIXTURES / "proj_pkg"], root=FIXTURES)


# ------------------------------------------------------------ symbol table
def test_functions_and_classes_get_qualified_names(proj):
    assert "proj_pkg.helpers.tick" in proj.functions
    assert "proj_pkg.core.Engine" in proj.classes
    assert "proj_pkg.core.Engine.run" in proj.functions
    info = proj.functions["proj_pkg.core.Engine.run"]
    assert info.is_method
    assert info.class_qualname == "proj_pkg.core.Engine"


def test_nested_def_registers_under_outer_function(proj):
    # trace() defines wrapper inside itself
    assert "proj_pkg.helpers.trace.wrapper" in proj.functions
    assert not proj.functions["proj_pkg.helpers.trace.wrapper"].is_method


def test_decorated_function_keeps_plain_symbol(proj):
    info = proj.functions["proj_pkg.helpers.decorated_tick"]
    assert "proj_pkg.helpers.trace" in info.decorators


# --------------------------------------------------------- canonicalization
def test_package_reexport_canonicalizes_to_definition(proj):
    assert proj.canonical("proj_pkg.tick") == "proj_pkg.helpers.tick"
    assert proj.canonical("proj_pkg.Engine") == "proj_pkg.core.Engine"


def test_method_through_reexported_class_canonicalizes(proj):
    assert (
        proj.canonical("proj_pkg.Engine.run") == "proj_pkg.core.Engine.run"
    )


def test_unknown_names_come_back_unchanged(proj):
    assert proj.canonical("os.replace") == "os.replace"


# ---------------------------------------------------------------- call graph
def test_diamond_arms_resolve_to_one_callee(proj):
    left = proj.calls_from("proj_pkg.left.left_tick")
    right = proj.calls_from("proj_pkg.right.right_tick")
    assert [e.callee for e in left] == ["proj_pkg.helpers.tick"]
    assert [e.callee for e in right] == ["proj_pkg.helpers.tick"]
    callers = {e.caller for e in proj.calls_to("proj_pkg.helpers.tick")}
    assert {"proj_pkg.left.left_tick", "proj_pkg.right.right_tick"} <= callers


def test_method_resolution_through_base_class(proj):
    assert (
        proj.method_resolution("proj_pkg.core.Engine", "ping")
        == "proj_pkg.core.Base.ping"
    )
    callees = {e.callee for e in proj.calls_from("proj_pkg.core.Engine.run")}
    assert "proj_pkg.core.Base.ping" in callees


def test_attr_type_from_annotated_init_param_resolves_method_call(proj):
    # self.gear.spin() resolves because __init__ annotates gear: "Gear"
    callees = {e.callee for e in proj.calls_from("proj_pkg.core.Engine.run")}
    assert "proj_pkg.core.Gear.spin" in callees


def test_constructor_call_edges_reach_init(proj):
    callees = {e.callee for e in proj.calls_from("proj_pkg.top.both")}
    assert "proj_pkg.core.Engine.__init__" in callees


def test_decorated_callee_resolves_to_wrapped_body(proj):
    callees = {e.callee for e in proj.calls_from("proj_pkg.top.both")}
    assert "proj_pkg.helpers.decorated_tick" in callees


def test_reachable_walks_transitively(proj):
    reach = proj.reachable(["proj_pkg.top.both"])
    assert "proj_pkg.helpers.tick" in reach
    assert "proj_pkg.core.Gear.spin" in reach


def test_parse_failure_becomes_finding_not_crash(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    (tmp_path / "broken.py").write_text("def f(:\n")
    project = build_project([tmp_path], root=tmp_path)
    assert [f.rule for f in project.parse_findings] == ["parse-error"]
    assert "ok" in project.files and "broken" not in project.files
