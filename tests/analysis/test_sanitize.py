"""Runtime sanitizer: lock wrappers, order graph, recorder, pytest plugin."""

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis.sanitize import (
    AccessRecorder,
    install,
    uninstall,
)
from repro.analysis.sanitize.monitor import LockOrderMonitor, SanitizedRLock


@pytest.fixture()
def monitor():
    m = install()
    try:
        yield m
    finally:
        uninstall()


# ----------------------------------------------------------------- wrappers
def test_installed_locks_are_instrumented(monitor):
    lock = threading.Lock()
    with lock:
        pass
    assert monitor.n_acquisitions == 1
    assert len(monitor.locks) == 1
    assert not lock.locked()


def test_uninstall_restores_real_factories():
    m = install()
    uninstall()
    lock = threading.Lock()
    with lock:
        pass
    assert m.n_acquisitions == 0  # created after uninstall: not instrumented


def test_rlock_reentry_records_no_self_edge(monitor):
    rlock = threading.RLock()
    with rlock:
        with rlock:
            pass
    assert monitor.edges == {}


def test_condition_wait_keeps_held_set_consistent(monitor):
    # Condition(RLock) exercises _release_save/_acquire_restore/_is_owned
    cond = threading.Condition(threading.RLock())
    assert isinstance(cond._lock, SanitizedRLock)
    done = threading.Event()

    def waiter():
        with cond:
            cond.wait(timeout=5)
        done.set()

    t = threading.Thread(target=waiter)
    t.start()
    while not cond._waiters:  # wait() has released the lock
        pass
    with cond:
        cond.notify_all()
    t.join(5)
    assert done.is_set()
    assert monitor.held_lock_ids() == frozenset()


def test_queue_and_event_work_under_instrumentation(monitor):
    import queue

    q = queue.Queue()
    e = threading.Event()

    def worker():
        q.put(1)
        e.set()

    t = threading.Thread(target=worker)
    t.start()
    assert e.wait(5)
    assert q.get(timeout=5) == 1
    t.join(5)
    assert monitor.n_acquisitions > 0


# -------------------------------------------------------------- order graph
def test_lock_order_inversion_detected(monitor):
    a, b = threading.Lock(), threading.Lock()

    def ab():
        with a:
            with b:
                pass

    def ba():
        with b:
            with a:
                pass

    for fn in (ab, ba):
        t = threading.Thread(target=fn)
        t.start()
        t.join(5)
    cycles = monitor.cycles()
    assert len(cycles) == 1 and len(cycles[0]) == 2
    report = monitor.render_cycles()
    assert "cycle" in report and "while acquiring" in report


def test_consistent_order_reports_no_cycle(monitor):
    a, b = threading.Lock(), threading.Lock()
    for _ in range(3):
        with a:
            with b:
                pass
    assert monitor.cycles() == []
    assert "no lock-order cycles" in monitor.render_cycles()


def test_three_lock_cycle_detected():
    m = LockOrderMonitor()
    infos = [m.register("Lock") for _ in range(3)]
    ids = [i.lock_id for i in infos]
    # a->b, b->c, c->a without real threads: drive the monitor directly
    for first, second in [(0, 1), (1, 2), (2, 0)]:
        m.note_acquire(ids[first], reentrant=False)
        m.note_acquire(ids[second], reentrant=False)
        m.note_release(ids[second])
        m.note_release(ids[first])
    cycles = m.cycles()
    assert len(cycles) == 1 and sorted(cycles[0]) == sorted(ids)


# ----------------------------------------------------------------- recorder
class _Box:
    def __init__(self):
        self.value = 0


def test_recorder_logs_reads_and_writes():
    box = _Box()
    with AccessRecorder(_Box, ["value"]) as rec:
        box.value = 7
        assert box.value == 7
    assert [a.write for a in rec.accesses] == [True, False]
    assert box.value == 7  # descriptor removed, instance state intact


def test_recorder_flags_unguarded_cross_thread_write():
    box = _Box()
    with AccessRecorder(_Box, ["value"]) as rec:
        t = threading.Thread(target=lambda: setattr(box, "value", 1))
        t.start()
        t.join(5)
        _ = box.value
    conflicts = rec.conflicts()
    assert len(conflicts) == 1
    assert conflicts[0].attr == "value"
    assert "unguarded shared access" in conflicts[0].render()


def test_recorder_accepts_consistent_lock(monitor):
    box = _Box()
    guard = threading.Lock()
    with AccessRecorder(_Box, ["value"]) as rec:

        def writer():
            with guard:
                box.value = 1

        t = threading.Thread(target=writer)
        t.start()
        t.join(5)
        with guard:
            _ = box.value
    assert rec.conflicts() == []


def test_recorder_single_thread_is_never_a_conflict():
    box = _Box()
    with AccessRecorder(_Box, ["value"]) as rec:
        box.value = 1
        box.value = 2
    assert rec.conflicts() == []


# ------------------------------------------------------------------- plugin
REPO = Path(__file__).resolve().parents[2]


def _run_pytest(tmp_path, test_source, *extra):
    (tmp_path / "test_mod.py").write_text(test_source)
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(tmp_path / "test_mod.py"),
            "-q",
            "-p",
            "repro.analysis.sanitize.plugin",
            "-p",
            "no:cacheprovider",
            *extra,
        ],
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env={
            **__import__("os").environ,
            "PYTHONPATH": str(REPO / "src"),
        },
        timeout=120,
    )


def test_plugin_fails_session_on_cycle(tmp_path):
    proc = _run_pytest(
        tmp_path,
        "import threading\n"
        "def test_inversion():\n"
        "    a, b = threading.Lock(), threading.Lock()\n"
        "    with a:\n"
        "        with b: pass\n"
        "    with b:\n"
        "        with a: pass\n",
        "--repro-sanitize",
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "lock-order cycle" in proc.stdout


def test_plugin_passes_clean_session(tmp_path):
    proc = _run_pytest(
        tmp_path,
        "import threading\n"
        "def test_ordered():\n"
        "    a, b = threading.Lock(), threading.Lock()\n"
        "    with a:\n"
        "        with b: pass\n",
        "--repro-sanitize",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "no lock-order cycles" in proc.stdout


def test_plugin_inert_without_flag(tmp_path):
    proc = _run_pytest(
        tmp_path,
        "import threading\n"
        "def test_inversion():\n"
        "    a, b = threading.Lock(), threading.Lock()\n"
        "    with a:\n"
        "        with b: pass\n"
        "    with b:\n"
        "        with a: pass\n",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-sanitize" not in proc.stdout
