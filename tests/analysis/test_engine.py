"""Engine mechanics: suppressions, config, discovery, reporters."""

import json
from pathlib import Path

import pytest

from repro.analysis.config import AnalysisConfig, ConfigError, find_pyproject
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    SUPPRESSION_REASON_RULE,
    AnalysisResult,
    analyze_source,
    discover,
    module_name_for,
    run_analysis,
)
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.checkers import checkers_for, rule_names

CLOCK = "import time\n\nt = time.time()\n"


def _clock_checkers():
    return checkers_for(["clock-purity"])


def test_finding_surfaces_without_suppression():
    result = analyze_source(CLOCK, _clock_checkers())
    assert not result.ok
    assert [f.rule for f in result.findings] == ["clock-purity"]
    assert result.findings[0].line == 3


def test_line_suppression_counts_not_reports():
    src = "import time\n\nt = time.time()  # repro: disable=clock-purity -- test\n"
    result = analyze_source(src, _clock_checkers())
    assert result.ok
    assert result.n_suppressed == 1


def test_line_suppression_all_wildcard():
    src = "import time\n\nt = time.time()  # repro: disable=all -- test\n"
    result = analyze_source(src, _clock_checkers())
    assert result.ok and result.n_suppressed == 1


def test_line_suppression_other_rule_does_not_apply():
    src = "import time\n\nt = time.time()  # repro: disable=vectorization -- test\n"
    result = analyze_source(src, _clock_checkers())
    assert not result.ok


def test_file_suppression_covers_every_line():
    src = (
        "# repro: disable-file=clock-purity -- test fixture\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.sleep(1)\n"
    )
    result = analyze_source(src, _clock_checkers())
    assert result.ok
    assert result.n_suppressed == 2


def test_reasonless_suppression_is_a_finding():
    src = "import time\n\nt = time.time()  # repro: disable=clock-purity\n"
    result = analyze_source(src, _clock_checkers())
    assert result.n_suppressed == 1  # the clock finding is still suppressed
    assert [f.rule for f in result.findings] == [SUPPRESSION_REASON_RULE]
    assert "has no reason" in result.findings[0].message


def test_reasonless_finding_cannot_suppress_itself():
    # disable=all on the same line must not silence the reason requirement
    src = "import time\n\nt = time.time()  # repro: disable=all\n"
    result = analyze_source(src, _clock_checkers())
    assert [f.rule for f in result.findings] == [SUPPRESSION_REASON_RULE]


def test_reasonless_file_suppression_is_a_finding():
    src = "# repro: disable-file=clock-purity\nimport time\nt = time.time()\n"
    result = analyze_source(src, _clock_checkers())
    assert [f.rule for f in result.findings] == [SUPPRESSION_REASON_RULE]
    assert result.findings[0].line == 1


def test_reason_rule_obeys_config_disable():
    src = "import time\n\nt = time.time()  # repro: disable=clock-purity\n"
    config = AnalysisConfig(disable=[SUPPRESSION_REASON_RULE])
    result = analyze_source(src, _clock_checkers(), config)
    assert result.ok


def test_global_disable_counts_as_suppressed():
    config = AnalysisConfig(disable=["clock-purity"])
    result = analyze_source(CLOCK, _clock_checkers(), config)
    assert result.ok and result.n_suppressed == 1


def test_parse_error_becomes_finding():
    result = analyze_source("def broken(:\n", _clock_checkers())
    assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]


def test_module_name_for_anchors_on_src():
    assert module_name_for(Path("src/repro/md/system.py")) == "repro.md.system"
    assert module_name_for(Path("src/repro/md/__init__.py")) == "repro.md"
    assert (
        module_name_for(Path("tests/analysis/fixtures/clock_bad.py"))
        == "tests.analysis.fixtures.clock_bad"
    )


def test_discover_skips_pycache_and_keeps_files(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
    (tmp_path / "loose.py").write_text("y = 2\n")
    found = discover([tmp_path / "pkg", tmp_path / "loose.py"])
    assert [p.name for p in found] == ["a.py", "loose.py"]


def test_run_analysis_sorts_findings(tmp_path):
    (tmp_path / "b.py").write_text(CLOCK)
    (tmp_path / "a.py").write_text(CLOCK)
    result = run_analysis(
        [tmp_path], AnalysisConfig(root=tmp_path), checker_factory=_clock_checkers
    )
    assert [f.path for f in result.findings] == ["a.py", "b.py"]
    assert result.n_files == 2


# ------------------------------------------------------------------ config
def test_config_from_table_maps_dashed_keys():
    config = AnalysisConfig.from_table(
        {"clock-allow": ["repro.util.timer"], "hot-modules": ["repro.nn"]},
        root=Path("/tmp"),
    )
    assert config.clock_allow == ["repro.util.timer"]
    assert config.hot_modules == ["repro.nn"]
    assert config.root == Path("/tmp")


def test_config_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unknown"):
        AnalysisConfig.from_table({"clock_allow": ["x"]})


def test_config_rejects_non_string_lists():
    with pytest.raises(ConfigError, match="list of strings"):
        AnalysisConfig.from_table({"disable": "clock-purity"})


def test_find_pyproject_walks_up(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
    nested = tmp_path / "src" / "pkg"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == tmp_path / "pyproject.toml"


# --------------------------------------------------------------- reporters
def _result_with_findings():
    result = AnalysisResult(n_files=3, n_suppressed=2)
    result.findings = [
        Finding("clock-purity", "wall clock", "a.py", 3, 4),
        Finding("vectorization", "loop", "b.py", 7, 0, severity="warning"),
    ]
    return result


def test_render_text_lists_findings_and_summary():
    text = render_text(_result_with_findings())
    assert "a.py:3:4: [clock-purity] wall clock" in text
    assert "2 finding(s) (1 error, 1 warning) in 3 file(s); 2 suppressed" in text


def test_render_json_is_stable_and_parseable():
    payload = json.loads(render_json(_result_with_findings()))
    assert payload["summary"] == {
        "n_findings": 2,
        "n_errors": 1,
        "n_warnings": 1,
        "n_files": 3,
        "n_suppressed": 2,
    }
    assert payload["findings"][0]["rule"] == "clock-purity"


def test_render_sarif_shape_and_levels():
    doc = json.loads(render_sarif(_result_with_findings()))
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
        "clock-purity",
        "vectorization",
    ]
    assert [r["level"] for r in run["results"]] == ["error", "warning"]
    loc = run["results"][0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"] == {"uri": "a.py", "uriBaseId": "SRCROOT"}
    assert loc["region"] == {"startLine": 3, "startColumn": 5}  # col is 1-based


def test_render_sarif_dedupes_rules_and_clamps_line():
    result = AnalysisResult(n_files=1, n_suppressed=0)
    result.findings = [
        Finding("clock-purity", "one", "a.py", 0, 0),
        Finding("clock-purity", "two", "a.py", 5, 0),
    ]
    doc = json.loads(render_sarif(result))
    run = doc["runs"][0]
    assert len(run["tool"]["driver"]["rules"]) == 1
    assert len(run["results"]) == 2
    region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 1  # file-level findings clamp to line 1


def test_rule_names_cover_all_domain_rules():
    assert set(rule_names()) == {
        "clock-purity",
        "determinism",
        "lock-discipline",
        "telemetry-discipline",
        "vectorization",
        "workflow-shape",
    }


def test_checkers_for_rejects_unknown_rule():
    with pytest.raises(ValueError, match="unknown rule"):
        checkers_for(["no-such-rule"])
