"""The three whole-program checkers against their bad/good fixture packages."""

from pathlib import Path

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.interprocedural import (
    AtomicWriteChecker,
    LocksetChecker,
    RngTaintChecker,
    run_interprocedural,
    run_project_checkers,
)
from repro.analysis.project import build_project

FIXTURES = Path(__file__).parent / "fixtures"


def check(pkg, checker, **config_kwargs):
    project = build_project([FIXTURES / pkg], root=FIXTURES)
    assert not project.parse_findings
    return checker.check(project, AnalysisConfig(**config_kwargs))


# ------------------------------------------------------------------ rng-taint
def test_rng_bad_flags_leak_into_hot_path():
    findings = check(
        "rng_bad_pkg",
        RngTaintChecker(),
        taint_sink_modules=["rng_bad_pkg.hot"],
    )
    leak = [f for f in findings if "unseeded RNG" in f.message]
    assert leak, findings
    assert leak[0].path.endswith("hot.py")
    # provenance names the source function in the message
    assert "random.random()" in leak[0].message


def test_rng_bad_flags_time_derived_seed():
    findings = check(
        "rng_bad_pkg",
        RngTaintChecker(),
        taint_sink_modules=["rng_bad_pkg.hot"],
    )
    seeds = [f for f in findings if "seeding" in f.message]
    assert len(seeds) == 1
    assert "time.time()" in seeds[0].message
    assert seeds[0].path.endswith("hot.py")


def test_rng_good_is_clean():
    assert (
        check(
            "rng_good_pkg",
            RngTaintChecker(),
            taint_sink_modules=["rng_good_pkg.hot"],
        )
        == []
    )


def test_determinism_allow_exempts_source_module():
    findings = check(
        "rng_bad_pkg",
        RngTaintChecker(),
        taint_sink_modules=["rng_bad_pkg.hot"],
        determinism_allow=["rng_bad_pkg.util"],
    )
    assert all("unseeded RNG" not in f.message for f in findings)


# --------------------------------------------------------------- atomic-write
def test_atomic_bad_flags_all_three_patterns():
    findings = check(
        "atomic_bad_pkg",
        AtomicWriteChecker(),
        durable_modules=["atomic_bad_pkg.store"],
    )
    messages = "\n".join(f.message for f in findings)
    assert "save_json" in messages  # bare open(..., "w")
    assert "save_array" in messages  # numpy writer, no replace
    assert "fsync" in messages  # append without fsync
    # the helper reached *from* the durable module is in the cone too
    assert any("write_report" in f.message for f in findings)


def test_atomic_good_is_clean():
    assert (
        check(
            "atomic_good_pkg",
            AtomicWriteChecker(),
            durable_modules=["atomic_good_pkg.store"],
        )
        == []
    )


def test_functions_outside_durable_cone_not_examined():
    findings = check(
        "atomic_bad_pkg",
        AtomicWriteChecker(),
        durable_modules=["atomic_bad_pkg.nothing"],
    )
    assert findings == []


# -------------------------------------------------------------------- lockset
def test_lockset_bad_flags_inconsistently_guarded_attrs():
    findings = check("lockset_bad_pkg", LocksetChecker())
    attrs = {f.message.split("'")[0].split("self.")[1].split(" ")[0] for f in findings}
    assert "total" in attrs
    assert "results" in attrs  # container mutated via .append
    assert all("Counter" in f.message for f in findings)


def test_lockset_good_is_clean():
    assert check("lockset_good_pkg", LocksetChecker()) == []


# ------------------------------------------------------------------- runner
def test_run_interprocedural_merges_both_layers(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"  # per-file clock-purity finding
    )
    result = run_interprocedural([tmp_path], AnalysisConfig(root=tmp_path))
    assert any(f.rule == "clock-purity" for f in result.findings)


def test_run_project_checkers_honors_inline_suppression(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"
        "    def go(self):\n"
        "        threading.Thread(target=self._run).start()\n"
        "    def _run(self):\n"
        "        self.x += 1  # repro: disable=lockset -- test fixture\n"
        "    def read(self):\n"
        "        return self.x\n"
    )
    project = build_project([tmp_path], root=tmp_path)
    result = run_project_checkers(project, AnalysisConfig(root=tmp_path))
    assert result.findings == []
    assert result.n_suppressed == 1


def test_run_project_checkers_honors_config_disable(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n"
        "    def go(self):\n"
        "        threading.Thread(target=self._run).start()\n"
        "    def _run(self):\n"
        "        self.x += 1\n"
        "    def read(self):\n"
        "        return self.x\n"
    )
    project = build_project([tmp_path], root=tmp_path)
    with_rule = run_project_checkers(project, AnalysisConfig(root=tmp_path))
    assert [f.rule for f in with_rule.findings] == ["lockset"]
    disabled = run_project_checkers(
        project, AnalysisConfig(root=tmp_path, disable=["lockset"])
    )
    assert disabled.findings == []
