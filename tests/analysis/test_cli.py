"""The repro-lint front-end: exit codes, formats, rule selection."""

import json
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.checkers import rule_names

FIXTURES = Path(__file__).parent / "fixtures"
REPO_PYPROJECT = Path(__file__).resolve().parents[2] / "pyproject.toml"


def test_clean_target_exits_zero(capsys):
    code = main(
        [
            str(FIXTURES / "clock_good.py"),
            "--rules",
            "clock-purity",
            "--config",
            str(REPO_PYPROJECT),
        ]
    )
    assert code == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one(capsys):
    code = main(
        [
            str(FIXTURES / "clock_bad.py"),
            "--rules",
            "clock-purity",
            "--config",
            str(REPO_PYPROJECT),
        ]
    )
    assert code == 1
    assert "[clock-purity]" in capsys.readouterr().out


def test_json_format_parses(capsys):
    code = main(
        [
            str(FIXTURES / "clock_bad.py"),
            "--rules",
            "clock-purity",
            "--config",
            str(REPO_PYPROJECT),
            "--format",
            "json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["n_errors"] == 3
    assert all(f["rule"] == "clock-purity" for f in payload["findings"])


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in rule_names():
        assert rule in out


def test_unknown_rule_is_usage_error(capsys):
    assert main([str(FIXTURES), "--rules", "no-such-rule"]) == 2
    assert "unknown rules" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main(["does/not/exist.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_malformed_config_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "pyproject.toml"
    bad.write_text('[tool.repro-lint]\nclock_allow = ["oops-underscore"]\n')
    code = main([str(FIXTURES / "clock_good.py"), "--config", str(bad)])
    assert code == 2
    assert "config error" in capsys.readouterr().err
