"""Each domain checker against its known-bad / known-good fixture pair."""

from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_source
from repro.analysis.checkers import checkers_for

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name, rule, module=None, config=None):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    module = module or f"tests.analysis.fixtures.{name.removesuffix('.py')}"
    return analyze_source(
        source,
        checkers_for([rule]),
        config or AnalysisConfig(),
        module=module,
        path=name,
    )


# ------------------------------------------------------------- clock-purity
def test_clock_bad_flags_every_wall_clock_entry():
    result = lint_fixture("clock_bad.py", "clock-purity")
    assert len(result.findings) == 3
    assert {f.rule for f in result.findings} == {"clock-purity"}
    # aliased import (`import time as walltime`) is still resolved
    assert any("time.time" in f.message for f in result.findings)
    assert any("time.sleep" in f.message for f in result.findings)


def test_clock_good_is_clean():
    assert lint_fixture("clock_good.py", "clock-purity").ok


def test_clock_allowlist_exempts_module():
    config = AnalysisConfig(clock_allow=["tests.analysis.fixtures"])
    assert lint_fixture("clock_bad.py", "clock-purity", config=config).ok


# -------------------------------------------------------------- determinism
def test_determinism_bad_flags_global_rng():
    result = lint_fixture("determinism_bad.py", "determinism")
    assert len(result.findings) == 3
    assert any("numpy.random.seed" in f.message for f in result.findings)
    assert any("numpy.random.rand" in f.message for f in result.findings)
    assert any("random.choice" in f.message for f in result.findings)


def test_determinism_good_is_clean():
    assert lint_fixture("determinism_good.py", "determinism").ok


def test_determinism_allowlist_exempts_module():
    config = AnalysisConfig(determinism_allow=["tests.analysis.fixtures"])
    assert lint_fixture("determinism_bad.py", "determinism", config=config).ok


# ---------------------------------------------------------- lock-discipline
def test_locks_bad_flags_unguarded_read_modify_write():
    result = lint_fixture("locks_bad.py", "lock-discipline")
    assert len(result.findings) == 2
    assert any("worker_busy" in f.message for f in result.findings)
    assert any("total_items" in f.message for f in result.findings)


def test_locks_good_is_clean():
    # lock-guarded, thread-local, and plain-local patterns all pass
    assert lint_fixture("locks_good.py", "lock-discipline").ok


def test_locks_ignores_functions_never_submitted():
    src = (
        "counts = {}\n"
        "def tally(key):\n"
        "    counts[key] += 1\n"
    )
    result = analyze_source(src, checkers_for(["lock-discipline"]))
    assert result.ok


# ------------------------------------------------------------ vectorization
def test_vectorization_bad_flags_elementwise_loop_in_hot_module():
    result = lint_fixture(
        "vectorization_bad.py", "vectorization", module="repro.docking.kernel"
    )
    assert len(result.findings) == 1
    assert result.findings[0].severity == "warning"


def test_vectorization_good_is_clean_in_hot_module():
    result = lint_fixture(
        "vectorization_good.py", "vectorization", module="repro.nn.kernel"
    )
    assert result.ok


def test_vectorization_silent_outside_hot_modules():
    result = lint_fixture("vectorization_bad.py", "vectorization")
    assert result.ok


# ----------------------------------------------------------- workflow-shape
def test_workflow_bad_flags_every_malformed_literal():
    result = lint_fixture("workflow_bad.py", "workflow-shape")
    messages = [f.message for f in result.findings]
    assert any("requests 8 gpus/node" in m for m in messages)
    assert any("requests 64 cpus/node" in m for m in messages)
    assert any("no slots" in m for m in messages)
    assert any("nodes=0" in m for m in messages)
    assert any("duration=-5" in m for m in messages)
    assert any("zero-task stage" in m for m in messages)
    assert any("empty pipeline" in m for m in messages)
    assert any("'orphan' is constructed but never referenced" in m for m in messages)


def test_workflow_good_is_clean():
    assert lint_fixture("workflow_good.py", "workflow-shape").ok


# ----------------------------------------------------- telemetry-discipline
def test_telemetry_bad_flags_clock_reads_and_bare_spans():
    result = lint_fixture(
        "telemetry_bad.py", "telemetry-discipline", module="repro.rct.raptor"
    )
    messages = [f.message for f in result.findings]
    assert len(result.findings) == 5
    assert any("time.perf_counter()" in m for m in messages)
    assert any("time.time()" in m for m in messages)
    # the span-CM findings: `tracer.span(...)` and `self_like.span` is
    # not flagged (receiver tail has no "tracer"), NULL_TRACER.span is
    assert sum("outside a with-statement" in m for m in messages) == 2


def test_telemetry_good_is_clean_in_instrumented_module():
    result = lint_fixture(
        "telemetry_good.py", "telemetry-discipline", module="repro.nn.graph.executor"
    )
    assert result.ok


def test_telemetry_clock_reads_silent_outside_instrumented_modules():
    # ...but a bare tracer.span(...) is a leak anywhere
    result = lint_fixture("telemetry_bad.py", "telemetry-discipline")
    assert all("outside a with-statement" in f.message for f in result.findings)
    assert len(result.findings) == 2
