"""Taint framework: propagation through calls, returns, attrs, containers."""

from pathlib import Path

import pytest

from repro.analysis.dataflow import TaintAnalysis
from repro.analysis.project import build_project

FIXTURES = Path(__file__).parent / "fixtures"


def _build(tmp_path, files):
    for name, source in files.items():
        dest = tmp_path / name
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(source)
    return build_project([tmp_path], root=tmp_path)


def _run(project, sink_prefix="sink"):
    def source(callee, call):
        return f"{callee}()" if callee == "time.time" else None

    return TaintAnalysis(
        project, source, lambda fq: fq.startswith(sink_prefix)
    ).run()


def test_taint_flows_through_return_and_argument(tmp_path):
    project = _build(
        tmp_path,
        {
            "origin.py": (
                "import time\n"
                "def make():\n"
                "    return int(time.time())\n"
            ),
            "sink.py": (
                "from origin import make\n"
                "def use():\n"
                "    v = make()\n"
                "    return v + 1\n"
            ),
        },
    )
    analysis = _run(project)
    assert [u.function for u in analysis.uses] == ["sink.use"]
    taint = analysis.uses[0].taint
    assert taint.label == "time.time()"
    assert taint.chain[0] == "origin.make"


def test_untainted_project_callee_blocks_passthrough(tmp_path):
    project = _build(
        tmp_path,
        {
            "origin.py": "def make():\n    return 42\n",
            "sink.py": (
                "from origin import make\n"
                "def use():\n"
                "    v = make()\n"
                "    return v\n"
            ),
        },
    )
    assert _run(project).uses == []


def test_external_call_passes_taint_through_arguments(tmp_path):
    project = _build(
        tmp_path,
        {
            "sink.py": (
                "import time\n"
                "def use():\n"
                "    v = str(int(time.time()))\n"
                "    return v\n"
            ),
        },
    )
    uses = _run(project).uses
    assert len(uses) == 1 and uses[0].taint.label == "time.time()"


def test_taint_through_class_attribute(tmp_path):
    project = _build(
        tmp_path,
        {
            "sink.py": (
                "import time\n"
                "class Holder:\n"
                "    def stamp(self):\n"
                "        self.t0 = time.time()\n"
                "    def read(self):\n"
                "        return self.t0\n"
            ),
        },
    )
    analysis = _run(project)
    assert any(u.function == "sink.Holder.read" for u in analysis.uses)


def test_keyword_argument_propagates(tmp_path):
    project = _build(
        tmp_path,
        {
            "origin.py": "import time\ndef make():\n    return time.time()\n",
            "mid.py": (
                "def shape(value=0):\n"
                "    return value\n"
            ),
            "sink.py": (
                "from origin import make\n"
                "from mid import shape\n"
                "def use():\n"
                "    return shape(value=make())\n"
            ),
        },
    )
    analysis = _run(project)
    # mid.shape's return is tainted via its keyword param
    assert "mid.shape" in analysis.returns


def test_tuple_unpack_and_container_taint(tmp_path):
    project = _build(
        tmp_path,
        {
            "sink.py": (
                "import time\n"
                "def use():\n"
                "    a, b = time.time(), 1\n"
                "    box = [a]\n"
                "    return box\n"
            ),
        },
    )
    assert _run(project).uses  # both a and box are tainted loads


def test_provenance_chain_is_capped():
    from repro.analysis.dataflow import _MAX_CHAIN, Taint

    t = Taint("x()", "f.py", 1)
    for i in range(3 * _MAX_CHAIN):
        t = t.via(f"fn{i}")
    assert len(t.chain) <= _MAX_CHAIN


def test_fixpoint_terminates_on_recursion(tmp_path):
    project = _build(
        tmp_path,
        {
            "sink.py": (
                "import time\n"
                "def ping(v):\n"
                "    return pong(v)\n"
                "def pong(v):\n"
                "    return ping(v)\n"
                "def use():\n"
                "    return ping(time.time())\n"
            ),
        },
    )
    analysis = _run(project)  # must not hang
    assert any(u.function == "sink.use" for u in analysis.uses)
