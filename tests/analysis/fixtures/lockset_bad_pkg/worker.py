"""Intentional race: a thread-shared counter guarded on only one side."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0  # shared, inconsistently guarded
        self.results = []  # shared, never guarded

    def start(self):
        t = threading.Thread(target=self._run)
        t.start()
        return t

    def _run(self):
        # thread context: writes with no lock held
        self.total += 1
        self.results.append(self.total)

    def snapshot(self):
        # caller context: reads under the lock — but _run doesn't hold it
        with self._lock:
            return self.total, list(self.results)
