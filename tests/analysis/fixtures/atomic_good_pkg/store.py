"""Compliant durable writes: tmp + os.replace, fsync'd journal appends."""

import json
import os
from pathlib import Path

import numpy as np


def save_json(path, payload):
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


def save_array(path, arr):
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez_compressed(tmp, arr=arr)
    os.replace(tmp, path)


def append_journal(path, line):
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def read_back(path):
    # read modes never flag
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()
