"""Known-bad fixture: PR 1's ``run_raptor`` busy-accounting race, reintroduced.

A function reachable from a thread pool does ``worker_busy[slot] += ...``
on a closed-over array without holding a lock — the exact lost-update
race the lock-discipline rule exists to catch.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

worker_busy = np.zeros(4)
total_items = 0


def run_bulk(bulk, slot):
    for item in bulk:
        run_item(item, slot)


def run_item(item, slot):
    global total_items
    elapsed = item()
    worker_busy[slot] += elapsed  # BAD: unlocked read-modify-write
    total_items += 1  # BAD: unlocked global counter


def drive(bulks):
    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(run_bulk, bulks, range(len(bulks))))
