"""Seeded counterpart: explicit generators derived from a fixed seed."""

import numpy as np


def jitter(rng):
    return rng.random()


def fixed_seed():
    return 1234


def stream(seed):
    return np.random.default_rng(seed)
