"""Hot-path module: every random value comes from a seeded stream."""

from rng_good_pkg.util import fixed_seed, jitter, stream


def score(x):
    rng = stream(fixed_seed())
    return x + jitter(rng)
