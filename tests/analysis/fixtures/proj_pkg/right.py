"""Right arm of the diamond: imports the definition directly, aliased."""

from proj_pkg.helpers import tick as t


def right_tick():
    return t()
