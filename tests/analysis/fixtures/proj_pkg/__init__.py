"""Call-graph fixture package: re-exports, diamond imports, methods."""

from proj_pkg.helpers import tick  # re-export: proj_pkg.tick -> helpers.tick
from .core import Engine  # relative re-export of a class

__all__ = ["Engine", "tick"]
