"""Classes for method-resolution tests: inheritance, attr types."""

from proj_pkg.helpers import tick


class Base:
    def ping(self):
        return tick()


class Engine(Base):
    def __init__(self, gear: "Gear"):
        self.gear = gear
        self.count = 0

    def run(self):
        self.count += 1
        self.gear.spin()  # resolves via the annotated __init__ param
        return self.ping()  # resolves through Base


class Gear:
    def spin(self):
        return tick()
