"""Left arm of the diamond: imports through the package re-export."""

import proj_pkg


def left_tick():
    return proj_pkg.tick()
