"""Leaf module of the diamond."""


def trace(fn):
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    return wrapper


def tick():
    return 1


@trace
def decorated_tick():
    # decorator-wrapped: callers of decorated_tick still reach this body
    return tick() + 1
