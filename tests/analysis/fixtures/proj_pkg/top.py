"""Top of the diamond: both arms must resolve to the one helpers.tick."""

from proj_pkg.left import left_tick
from proj_pkg.right import right_tick
from proj_pkg import Engine
from proj_pkg.core import Gear
from proj_pkg.helpers import decorated_tick


def both():
    eng = Engine(Gear())
    eng.run()
    return left_tick() + right_tick() + decorated_tick()
