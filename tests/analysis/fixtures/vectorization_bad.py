"""Known-bad fixture: elementwise Python loop over an ndarray."""

import numpy as np


def pairwise_energy(coords, charges):
    n = len(coords)
    energy = np.zeros(n)
    for i in range(n):  # BAD: elementwise traversal of an array axis
        energy[i] = charges[i] / (1.0 + np.linalg.norm(coords[i]))
    return energy
