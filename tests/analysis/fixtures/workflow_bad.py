"""Known-bad fixture: workflow literals that can never be scheduled.

Static twins of the runtime errors ``Pilot.validate_fits`` raises.
"""

from repro.rct.cluster import NodeSpec
from repro.rct.entk import Pipeline, Stage
from repro.rct.task import TaskSpec

NODE = NodeSpec(cpus=42, gpus=6)

oversized_gpu = TaskSpec(name="md", cpus=4, gpus=8)  # BAD: 8 gpus > 6 per node
oversized_cpu = TaskSpec(name="score", cpus=64)  # BAD: 64 cpus > 42 per node
zero_slot = TaskSpec(name="noop", cpus=0)  # BAD: requests no resources
bad_nodes = TaskSpec(name="multi", cpus=1, nodes=0)  # BAD: nodes < 1
bad_duration = TaskSpec(name="neg", cpus=1, duration=-5.0)  # BAD: negative

empty_stage = Stage(name="empty", tasks=[])  # BAD: zero-task stage
empty_pipeline = Pipeline(name="hollow", stages=[])  # BAD: no stages

orphan = Stage(name="orphan", tasks=[TaskSpec(name="t", cpus=1)])  # BAD: never used

pipeline = Pipeline(
    name="main",
    stages=[Stage(name="dock", tasks=[TaskSpec(name="d", cpus=1)])],
)
