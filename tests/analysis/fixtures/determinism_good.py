"""Known-good fixture: seeded generators from repro.util.rng."""

import numpy as np

from repro.util.rng import RngFactory, rng_stream


def sample_poses(seed, n):
    rng = rng_stream(seed, "docking/poses")
    jitter = rng.random(n)
    pick = int(RngFactory(seed).stream("pick").integers(0, n))
    explicit = np.random.default_rng(seed).normal(size=n)
    return jitter, pick, explicit
