"""Known-bad fixture: wall-clock calls in sim-facing code."""

import time as walltime
from datetime import datetime
from time import sleep


def simulated_stage(duration):
    started = walltime.time()  # BAD: reads the wall clock
    sleep(duration)  # BAD: spins the wall clock (aliased import)
    stamp = datetime.now()  # BAD: wall-clock timestamp
    return started, stamp
