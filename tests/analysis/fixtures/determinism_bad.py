"""Known-bad fixture: global RNG state."""

import random

import numpy as np


def sample_poses(n):
    np.random.seed(0)  # BAD: mutates numpy's hidden global state
    jitter = np.random.rand(n)  # BAD: legacy global namespace
    pick = random.choice(range(n))  # BAD: process-global stdlib RNG
    return jitter, pick
