"""Known-bad telemetry discipline: direct clock reads + un-with-ed spans."""

import time
from time import perf_counter as tick

from repro.telemetry import NULL_TRACER


def run_item(tracer):
    t0 = time.perf_counter()  # direct read in an instrumented module
    started = time.time()  # and the epoch variant
    dt = tick() - t0  # aliased import must still resolve
    span = tracer.span("item", category="exec")  # span without `with`
    NULL_TRACER.span("leaky", category="exec")  # receiver tail is a tracer
    return started, dt, span
