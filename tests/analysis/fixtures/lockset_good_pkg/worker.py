"""Disciplined counterpart: every shared access holds the same lock."""

import queue
import threading


class Counter:
    def __init__(self, batch_size):
        self._lock = threading.Lock()
        self.total = 0  # guarded everywhere
        self.outbox = queue.Queue()  # thread-safe by construction
        self.batch_size = batch_size  # written only in __init__
        self.tls_scratch = []  # thread-local by naming convention

    def start(self):
        t = threading.Thread(target=self._run)
        t.start()
        return t

    def _run(self):
        with self._lock:
            self.total += 1
        self.outbox.put(self.batch_size)

    def snapshot(self):
        with self._lock:
            return self.total
