"""Known-good fixture: the two sanctioned patterns for shared ledgers.

Either hold a lock around the read-modify-write, or accumulate into
thread-local cells and merge after the pool drains (PR 1's fix).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

ledger = {"busy": 0.0}
ledger_lock = threading.Lock()

tls = threading.local()
cells = []


def busy_cell():
    cell = getattr(tls, "cell", None)
    if cell is None:
        cell = tls.cell = [0.0]
        with ledger_lock:
            cells.append(cell)
    return cell


def run_item(item):
    elapsed = item()
    with ledger_lock:
        ledger["busy"] += elapsed  # GOOD: guarded by the ledger lock
    busy_cell()[0] += elapsed  # GOOD: thread-local accumulator
    local_total = 0.0
    local_total += elapsed  # GOOD: plain local variable
    return local_total


def drive(items):
    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(run_item, items))
