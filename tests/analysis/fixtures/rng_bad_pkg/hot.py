"""Hot-path module (a taint sink): the leak arrives through two calls."""

import numpy as np

from rng_bad_pkg.util import jitter, wall_seed


def score(x):
    noisy = jitter()  # unseeded RNG value entering the hot path
    return x + noisy


def build_rng():
    seed = wall_seed()
    return np.random.default_rng(seed)  # time-derived seed
