"""Intentional RNG leak: unseeded randomness escapes through a helper."""

import random
import time


def jitter():
    # unseeded global RNG: the tainted value is the *return*
    return random.random()


def wall_seed():
    # time-derived seed source
    return int(time.time())
