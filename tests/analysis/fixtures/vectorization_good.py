"""Known-good fixture: the same kernel, batched over the array axis."""

import numpy as np


def pairwise_energy(coords, charges):
    return charges / (1.0 + np.linalg.norm(coords, axis=1))


def sequential_ok(values):
    # loops not indexed by the loop variable are not elementwise traversal
    total = 0.0
    for v in values:
        total += v
    return total


def dict_keys_ok(state, layers):
    for i in range(layers):
        state[f"p{i}"] = i  # string keys are dict access, not array math
    return state
