"""Known-good fixture: workflow literals that fit the declared node shape."""

from repro.rct.cluster import NodeSpec
from repro.rct.entk import Pipeline, Stage
from repro.rct.task import TaskSpec

NODE = NodeSpec(cpus=42, gpus=6)

dock = Stage(
    name="dock",
    tasks=[TaskSpec(name="dock", cpus=4, duration=30.0)],
)
md = Stage(
    name="md",
    tasks=[TaskSpec(name="md", cpus=7, gpus=1, duration=600.0)],
)
wide = Stage(
    name="wide",
    tasks=[TaskSpec(name="ensemble", cpus=42, gpus=6, nodes=4)],
)

pipeline = Pipeline(name="campaign", stages=[dock, md, wide])
