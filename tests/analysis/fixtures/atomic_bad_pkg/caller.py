"""A helper *reachable from* the durable module is inside the cone too."""


def write_report(path, payload):
    # not itself in durable-modules config, but store.save_everything
    # (which is) calls it — so its bare write is still flagged
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(str(payload))
