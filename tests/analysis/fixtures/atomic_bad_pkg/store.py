"""Intentional torn writes in a durable module."""

import json
import numpy as np


def save_json(path, payload):
    # bare write to the final path: a crash mid-dump tears the file
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def save_array(path, arr):
    # numpy writer straight to the destination, no tmp+replace
    np.savez_compressed(path, arr=arr)


def append_journal(path, line):
    # journal append without fsync: the record can vanish on power loss
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")


def save_everything(path, report_path, payload):
    from atomic_bad_pkg.caller import write_report

    save_json(path, payload)
    write_report(report_path, payload)
