"""Known-good telemetry discipline: injected clocks, with-ed spans."""

from repro.telemetry import NULL_TRACER
from repro.util.timer import WallClock


def run_item(tracer, clock=None):
    clock = clock if clock is not None else WallClock()
    t0 = clock.now()  # sanctioned: the injected clock object
    with tracer.span("item", category="exec") as span:
        span.set_attr("t0", t0)
    manual = tracer.start_span("manual", start=t0)  # manual API is fine
    manual.finish(end=clock.now())
    tracer.record_span("pre-timed", start=t0, end=clock.now())
    NULL_TRACER.metrics.counter("items").inc()
    return manual
