"""Known-good fixture: time flows through the executor clock."""


def simulated_stage(executor, duration):
    started = executor.now
    executor.wait_until(started + duration)
    return executor.now - started
