"""Tests for the LPC builder."""

import numpy as np
import pytest

from repro.chem.smiles import parse_smiles
from repro.docking.receptor import make_receptor
from repro.md.builder import OUTER_R, POCKET_R, build_lpc, build_protein_fold
from repro.util.rng import rng_stream


@pytest.fixture(scope="module")
def receptor():
    return make_receptor("PLPro", "6W9C", seed=7)


@pytest.fixture(scope="module")
def mol():
    return parse_smiles("c1ccccc1CC(=O)O")


def test_fold_geometry():
    pos = build_protein_fold(100, rng_stream(0, "t/fold"))
    assert pos.shape == (100, 3)
    radii = np.linalg.norm(pos, axis=1)
    # shell constraint: nothing deep inside the pocket cavity
    assert radii.min() > POCKET_R - 1.0
    assert radii.max() < OUTER_R + 1.0
    # chain connectivity: consecutive beads at the Cα bond length
    steps = np.linalg.norm(np.diff(pos, axis=0), axis=1)
    np.testing.assert_allclose(steps, 3.8, atol=0.01)


def test_fold_self_avoiding_mostly():
    pos = build_protein_fold(120, rng_stream(1, "t/fold2"))
    d = np.linalg.norm(pos[:, None] - pos[None, :], axis=-1)
    np.fill_diagonal(d, np.inf)
    # the walk keeps nearly all non-neighbour pairs separated
    i, j = np.triu_indices(120, k=2)
    close = (d[i, j] < 3.0).sum()
    assert close < 12


def test_fold_deterministic():
    a = build_protein_fold(50, rng_stream(2, "t/fold3"))
    b = build_protein_fold(50, rng_stream(2, "t/fold3"))
    np.testing.assert_array_equal(a, b)


def test_fold_validates():
    with pytest.raises(ValueError):
        build_protein_fold(2, rng_stream(0, "x"))


def test_lpc_structure(receptor, mol):
    coords = rng_stream(3, "t/lig").normal(scale=2.0, size=(mol.n_atoms, 3))
    system = build_lpc(receptor, mol, coords, seed=0, n_residues=80)
    topo = system.topology
    assert system.n_atoms == 80 + mol.n_atoms
    assert len(topo.protein_atoms) == 80
    assert len(topo.ligand_atoms) == mol.n_atoms
    # ligand bonds present: graph bonds mapped with the offset
    ligand_bond_count = sum(
        1 for b in topo.bonds if b[0] >= 80 and b[1] >= 80
    )
    assert ligand_bond_count == mol.n_bonds


def test_lpc_same_receptor_same_fold(receptor, mol):
    coords = rng_stream(4, "t/lig2").normal(scale=2.0, size=(mol.n_atoms, 3))
    a = build_lpc(receptor, mol, coords, seed=0, n_residues=60)
    b = build_lpc(receptor, mol, coords, seed=0, n_residues=60)
    np.testing.assert_array_equal(
        a.positions[a.topology.protein_atoms], b.positions[b.topology.protein_atoms]
    )


def test_lpc_different_targets_different_folds(mol):
    coords = rng_stream(5, "t/lig3").normal(scale=2.0, size=(mol.n_atoms, 3))
    a = build_lpc(make_receptor("PLPro", seed=7), mol, coords, seed=0, n_residues=60)
    b = build_lpc(make_receptor("3CLPro", seed=7), mol, coords, seed=0, n_residues=60)
    assert not np.allclose(
        a.positions[a.topology.protein_atoms], b.positions[b.topology.protein_atoms]
    )


def test_lpc_pocket_lining_inherits_receptor_sites(receptor, mol):
    """Residues near receptor sites must carry the site parameters."""
    coords = np.zeros((mol.n_atoms, 3))
    system = build_lpc(receptor, mol, coords, seed=0, n_residues=100)
    topo = system.topology
    site_pos = np.stack([s.position for s in receptor.sites])
    site_charges = {round(s.charge, 9) for s in receptor.sites}
    ppos = system.positions[topo.protein_atoms]
    d = np.linalg.norm(ppos[:, None] - site_pos[None], axis=-1)
    lining = d.min(axis=1) < 6.0
    if lining.any():
        lining_charges = topo.charges[topo.protein_atoms][lining]
        assert any(round(c, 9) in site_charges for c in lining_charges)


def test_lpc_validates_coords_shape(receptor, mol):
    with pytest.raises(ValueError):
        build_lpc(receptor, mol, np.zeros((3, 3)), seed=0)


def test_lpc_is_simulable(receptor, mol):
    """Integration: a built LPC minimizes and runs stably."""
    from repro.md.forcefield import ForceField
    from repro.md.integrator import Langevin
    from repro.md.minimize import minimize
    from repro.md.observables import trajectory_rmsd
    from repro.md.trajectory import simulate

    coords = rng_stream(6, "t/lig4").normal(scale=2.0, size=(mol.n_atoms, 3))
    system = build_lpc(receptor, mol, coords, seed=0, n_residues=60)
    ff = ForceField()
    minimize(system, ff, max_iterations=40)
    system.initialize_velocities(300.0, rng_stream(7, "t/vel"))
    traj = simulate(system, ff, Langevin(), 60, rng_stream(8, "t/run"), record_every=20)
    prot = system.topology.protein_atoms
    rmsd = trajectory_rmsd(traj.protein_frames(prot), system.reference_positions[prot])
    # Gō restraints keep the fold near native
    assert rmsd.max() < 5.0
    assert np.isfinite(traj.potential_energies).all()
