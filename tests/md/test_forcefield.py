"""Tests for the force field: correctness of forces and energies."""

import numpy as np
import pytest

from repro.md.forcefield import ForceField
from repro.md.system import Topology
from repro.util.rng import rng_stream


def _two_bead_topology(q=(0.0, 0.0), h=(0.0, 0.0), bonded=False):
    bonds = np.array([[0, 1]]) if bonded else np.zeros((0, 2), dtype=int)
    return Topology(
        masses=np.full(2, 12.0),
        charges=np.array(q, dtype=float),
        hydro=np.array(h, dtype=float),
        radii=np.full(2, 2.0),
        bonds=bonds,
        bond_lengths=np.full(len(bonds), 2.0),
        bond_k=np.full(len(bonds), 5.0),
        protein_atoms=np.array([0]),
        ligand_atoms=np.array([1]),
    )


def _random_topology(n=30, seed=0):
    rng = rng_stream(seed, "t/fftopo")
    bonds = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    return Topology(
        masses=np.full(n, 12.0),
        charges=rng.normal(scale=0.2, size=n),
        hydro=rng.uniform(-0.5, 0.5, size=n),
        radii=rng.uniform(1.5, 2.5, size=n),
        bonds=bonds,
        bond_lengths=np.full(n - 1, 3.8),
        bond_k=np.full(n - 1, 8.0),
        protein_atoms=np.arange(n - 5),
        ligand_atoms=np.arange(n - 5, n),
    )


def test_bond_energy_zero_at_rest_length():
    topo = _two_bead_topology(bonded=True)
    ff = ForceField()
    pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
    _, e = ff.compute(topo, pos)
    assert e.bond == pytest.approx(0.0)


def test_bond_restoring_force():
    topo = _two_bead_topology(bonded=True)
    ff = ForceField()
    pos = np.array([[0.0, 0, 0], [3.0, 0, 0]])  # stretched
    f, e = ff.compute(topo, pos)
    assert e.bond > 0
    assert f[0, 0] > 0 and f[1, 0] < 0  # pulled together


def test_bonded_pair_excluded_from_nonbonded():
    ff = ForceField()
    # r = 2.5 != sigma, so the unexcluded LJ energy is nonzero
    pos = np.array([[0.0, 0, 0], [2.5, 0, 0]])
    _, e_bonded = ff.compute(_two_bead_topology(bonded=True), pos)
    _, e_free = ff.compute(_two_bead_topology(bonded=False), pos)
    assert e_bonded.lj == 0.0
    assert e_free.lj != 0.0


def test_opposite_charges_attract():
    topo = _two_bead_topology(q=(0.5, -0.5))
    ff = ForceField()
    pos = np.array([[0.0, 0, 0], [4.0, 0, 0]])
    f, e = ff.compute(topo, pos)
    assert e.coulomb < 0
    assert f[0, 0] > 0  # bead 0 pulled toward bead 1


def test_like_charges_repel():
    topo = _two_bead_topology(q=(0.5, 0.5))
    ff = ForceField()
    pos = np.array([[0.0, 0, 0], [4.0, 0, 0]])
    f, e = ff.compute(topo, pos)
    assert e.coulomb > 0
    assert f[0, 0] < 0


def test_hydrophobic_pair_attracts():
    topo = _two_bead_topology(h=(0.8, 0.8))
    ff = ForceField()
    pos = np.array([[0.0, 0, 0], [3.5, 0, 0]])
    f, e = ff.compute(topo, pos)
    assert e.hydrophobic < 0
    assert f[0, 0] > 0  # attraction


def test_lj_repulsive_at_short_range():
    topo = _two_bead_topology()
    ff = ForceField()
    pos = np.array([[0.0, 0, 0], [1.5, 0, 0]])  # well inside sigma=2
    f, e = ff.compute(topo, pos)
    assert e.lj > 0
    assert f[0, 0] < 0  # pushed apart


def test_confinement_pulls_back():
    topo = _two_bead_topology()
    ff = ForceField(confine_radius=10.0)
    pos = np.array([[0.0, 0, 0], [30.0, 0, 0]])
    f, e = ff.compute(topo, pos)
    assert e.confine > 0
    assert f[1, 0] < 0  # inward


def test_forces_match_numeric_gradient():
    topo = _random_topology()
    ff = ForceField()
    rng = rng_stream(1, "t/ffnum")
    pos = rng.normal(scale=6.0, size=(30, 3))
    f, _ = ff.compute(topo, pos)
    eps = 1e-6
    for idx, ax in [(0, 0), (10, 1), (29, 2), (15, 0)]:
        p = pos.copy()
        p[idx, ax] += eps
        _, eu = ff.compute(topo, p)
        p[idx, ax] -= 2 * eps
        _, ed = ff.compute(topo, p)
        num = -(eu.total - ed.total) / (2 * eps)
        assert f[idx, ax] == pytest.approx(num, rel=1e-4, abs=1e-7)


def test_total_force_near_zero_without_confinement():
    """Newton's third law: internal forces sum to zero."""
    topo = _random_topology()
    ff = ForceField(confine_radius=1e6)  # confinement inactive
    pos = rng_stream(2, "t/ff3").normal(scale=6.0, size=(30, 3))
    f, _ = ff.compute(topo, pos)
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-9)


def test_breakdown_total_is_sum():
    topo = _random_topology()
    ff = ForceField()
    pos = rng_stream(3, "t/ffsum").normal(scale=6.0, size=(30, 3))
    _, e = ff.compute(topo, pos)
    assert e.total == pytest.approx(
        e.bond + e.lj + e.coulomb + e.hydrophobic + e.confine
    )


def test_interaction_energy_only_cross_pairs():
    """Moving the ligand far away sends interaction energy to ~zero."""
    topo = _random_topology()
    ff = ForceField()
    pos = rng_stream(4, "t/ffint").normal(scale=5.0, size=(30, 3))
    near = ff.interaction_energy(topo, pos)
    far = pos.copy()
    far[topo.ligand_atoms] += 500.0
    e_far = ff.interaction_energy(topo, far)
    assert abs(e_far) < 1e-2
    assert abs(near) > 10 * abs(e_far)


def test_config_validation():
    with pytest.raises(ValueError):
        ForceField(lj_epsilon=0)
    with pytest.raises(ValueError):
        ForceField(min_distance=-1)
