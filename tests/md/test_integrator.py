"""Tests for integrators: energy conservation and thermostatting."""

import numpy as np
import pytest

from repro.md.forcefield import ForceField
from repro.md.integrator import Langevin, VelocityVerlet
from repro.md.system import MDSystem, Topology
from repro.util.rng import rng_stream


def _chain_system(n=20, seed=0):
    rng = rng_stream(seed, "t/integ")
    bonds = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    topo = Topology(
        masses=np.full(n, 50.0),
        charges=np.zeros(n),
        hydro=np.zeros(n),
        radii=np.full(n, 2.0),
        bonds=bonds,
        bond_lengths=np.full(n - 1, 3.8),
        bond_k=np.full(n - 1, 8.0),
        protein_atoms=np.arange(n - 2),
        ligand_atoms=np.arange(n - 2, n),
    )
    # start from a gently perturbed straight chain
    pos = np.zeros((n, 3))
    pos[:, 0] = np.arange(n) * 3.8
    pos += rng.normal(scale=0.05, size=pos.shape)
    pos -= pos.mean(axis=0)
    return MDSystem(topology=topo, positions=pos)


def test_velocity_verlet_conserves_energy():
    system = _chain_system()
    ff = ForceField(confine_radius=1e5)
    system.initialize_velocities(100.0, rng_stream(1, "t/nve"))
    e0 = ff.potential_energy(system).total + system.kinetic_energy()
    VelocityVerlet(timestep=0.002).run(system, ff, 500)
    e1 = ff.potential_energy(system).total + system.kinetic_energy()
    assert abs(e1 - e0) < 0.05 * max(1.0, abs(e0))


def test_velocity_verlet_reversible_shape():
    """Reversing velocities must retrace the trajectory (symplecticity)."""
    system = _chain_system(seed=2)
    ff = ForceField(confine_radius=1e5)
    system.initialize_velocities(50.0, rng_stream(3, "t/rev"))
    start = system.positions.copy()
    vv = VelocityVerlet(timestep=0.002)
    vv.run(system, ff, 100)
    system.velocities *= -1
    vv.run(system, ff, 100)
    np.testing.assert_allclose(system.positions, start, atol=1e-6)


def test_langevin_reaches_target_temperature():
    # confinement off: the long initial chain would otherwise dump heat
    # while collapsing, biasing the sampled temperatures
    system = _chain_system(n=40, seed=4)
    ff = ForceField(confine_radius=1e5)
    integ = Langevin(timestep=0.01, temperature=300.0, friction=2.0)
    rng = rng_stream(5, "t/temp")
    integ.run(system, ff, 500, rng)
    temps = []
    for _ in range(50):
        integ.run(system, ff, 10, rng)
        temps.append(system.temperature())
    assert np.mean(temps) == pytest.approx(300.0, rel=0.15)


def test_langevin_deterministic_given_stream():
    a = _chain_system(seed=6)
    b = _chain_system(seed=6)
    ff = ForceField()
    Langevin().run(a, ff, 50, rng_stream(7, "t/det"))
    Langevin().run(b, ff, 50, rng_stream(7, "t/det"))
    np.testing.assert_array_equal(a.positions, b.positions)


def test_langevin_different_streams_diverge():
    a = _chain_system(seed=6)
    b = _chain_system(seed=6)
    ff = ForceField()
    Langevin().run(a, ff, 50, rng_stream(8, "t/d1"))
    Langevin().run(b, ff, 50, rng_stream(9, "t/d2"))
    assert not np.allclose(a.positions, b.positions)


def test_config_validation():
    with pytest.raises(ValueError):
        VelocityVerlet(timestep=0)
    with pytest.raises(ValueError):
        Langevin(temperature=-1)
    with pytest.raises(ValueError):
        Langevin(friction=0)
