"""Tests for the MD system model."""

import numpy as np
import pytest

from repro.md.system import MDSystem, Topology
from repro.util.rng import rng_stream


def _topology(n=5, bonds=None):
    bonds = np.array(bonds if bonds is not None else [[0, 1], [1, 2]])
    return Topology(
        masses=np.full(n, 12.0),
        charges=np.zeros(n),
        hydro=np.zeros(n),
        radii=np.full(n, 1.7),
        bonds=bonds,
        bond_lengths=np.full(len(bonds), 1.5),
        bond_k=np.full(len(bonds), 10.0),
        protein_atoms=np.arange(3),
        ligand_atoms=np.arange(3, n),
    )


def test_topology_validation_lengths():
    with pytest.raises(ValueError, match="charges"):
        Topology(
            masses=np.ones(3),
            charges=np.zeros(2),
            hydro=np.zeros(3),
            radii=np.ones(3),
            bonds=np.zeros((0, 2), dtype=int),
            bond_lengths=np.zeros(0),
            bond_k=np.zeros(0),
            protein_atoms=np.arange(2),
            ligand_atoms=np.array([2]),
        )


def test_topology_rejects_bad_bond_index():
    with pytest.raises(ValueError, match="missing bead"):
        _topology(n=3, bonds=[[0, 7]])


def test_topology_rejects_group_overlap():
    topo = _topology()
    with pytest.raises(ValueError, match="both protein and ligand"):
        Topology(
            masses=topo.masses,
            charges=topo.charges,
            hydro=topo.hydro,
            radii=topo.radii,
            bonds=topo.bonds,
            bond_lengths=topo.bond_lengths,
            bond_k=topo.bond_k,
            protein_atoms=np.arange(3),
            ligand_atoms=np.arange(2, 5),
        )


def test_exclusion_mask_symmetric_and_cached():
    topo = _topology()
    m = topo.exclusion_mask()
    assert m[0, 1] and m[1, 0] and m[1, 2]
    assert not m[0, 2]
    assert np.diag(m).all()
    assert topo.exclusion_mask() is m  # cached


def test_system_shape_validation():
    topo = _topology()
    with pytest.raises(ValueError):
        MDSystem(topology=topo, positions=np.zeros((3, 3)))


def test_velocities_default_zero_and_reference_copied():
    topo = _topology()
    pos = rng_stream(0, "t/sys").normal(size=(5, 3))
    system = MDSystem(topology=topo, positions=pos)
    assert (system.velocities == 0).all()
    np.testing.assert_array_equal(system.reference_positions, pos)
    system.positions += 1.0
    assert not np.allclose(system.reference_positions, system.positions)


def test_maxwell_boltzmann_temperature():
    # bigger system for better statistics
    big = Topology(
        masses=np.full(500, 12.0),
        charges=np.zeros(500),
        hydro=np.zeros(500),
        radii=np.full(500, 1.7),
        bonds=np.zeros((0, 2), dtype=int),
        bond_lengths=np.zeros(0),
        bond_k=np.zeros(0),
        protein_atoms=np.arange(250),
        ligand_atoms=np.arange(250, 500),
    )
    system = MDSystem(topology=big, positions=np.zeros((500, 3)))
    system.initialize_velocities(300.0, rng_stream(1, "t/mb"))
    assert system.temperature() == pytest.approx(300.0, rel=0.1)


def test_velocity_initialization_removes_drift():
    topo = _topology()
    system = MDSystem(topology=topo, positions=np.zeros((5, 3)))
    system.initialize_velocities(300.0, rng_stream(2, "t/drift"))
    m = topo.masses[:, None]
    momentum = (m * system.velocities).sum(axis=0)
    np.testing.assert_allclose(momentum, 0.0, atol=1e-10)


def test_kinetic_energy_nonnegative():
    topo = _topology()
    system = MDSystem(topology=topo, positions=np.zeros((5, 3)))
    assert system.kinetic_energy() == 0.0
    system.initialize_velocities(100.0, rng_stream(3, "t/ke"))
    assert system.kinetic_energy() > 0.0
