"""Tests for minimization, trajectory recording and observables."""

import numpy as np
import pytest

from repro.md.forcefield import ForceField
from repro.md.integrator import Langevin
from repro.md.minimize import minimize
from repro.md.observables import (
    contact_count,
    kabsch_rmsd,
    radius_of_gyration,
    trajectory_rmsd,
)
from repro.md.system import MDSystem, Topology
from repro.md.trajectory import Trajectory, simulate
from repro.util.rng import rng_stream


def _system(n=15, seed=0):
    rng = rng_stream(seed, "t/mto")
    bonds = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    topo = Topology(
        masses=np.full(n, 30.0),
        charges=rng.normal(scale=0.1, size=n),
        hydro=rng.uniform(-0.3, 0.3, size=n),
        radii=np.full(n, 2.0),
        bonds=bonds,
        bond_lengths=np.full(n - 1, 3.8),
        bond_k=np.full(n - 1, 8.0),
        protein_atoms=np.arange(n - 3),
        ligand_atoms=np.arange(n - 3, n),
    )
    pos = rng.normal(scale=4.0, size=(n, 3))
    return MDSystem(topology=topo, positions=pos)


# ------------------------------------------------------------- minimization


def test_minimize_reduces_energy():
    system = _system()
    ff = ForceField()
    result = minimize(system, ff, max_iterations=80)
    assert result.final_energy < result.initial_energy
    assert ff.potential_energy(system).total == pytest.approx(result.final_energy)


def test_minimize_respects_iteration_cap():
    system = _system(seed=1)
    result = minimize(system, ForceField(), max_iterations=3)
    assert result.n_iterations <= 3


def test_minimize_validates():
    with pytest.raises(ValueError):
        minimize(_system(), ForceField(), max_iterations=0)


# --------------------------------------------------------------- trajectory


def test_simulate_records_expected_frames():
    system = _system(seed=2)
    ff = ForceField()
    traj = simulate(
        system, ff, Langevin(), 50, rng_stream(3, "t/sim"), record_every=10
    )
    assert traj.n_frames == 5
    assert len(traj.times) == 5
    assert traj.times[0] == pytest.approx(10 * Langevin().timestep)
    assert traj.frames.shape == (5, system.n_atoms, 3)
    assert np.isfinite(traj.potential_energies).all()
    assert np.isfinite(traj.interaction_energies).all()


def test_simulate_partial_last_chunk():
    system = _system(seed=3)
    traj = simulate(
        system, ForceField(), Langevin(), 25, rng_stream(4, "t/sim2"), record_every=10
    )
    assert traj.n_frames == 3  # 10, 10, 5


def test_simulate_zero_steps():
    system = _system(seed=4)
    traj = simulate(system, ForceField(), Langevin(), 0, rng_stream(5, "t/sim3"))
    assert traj.n_frames == 0


def test_simulate_validates():
    system = _system()
    with pytest.raises(ValueError):
        simulate(system, ForceField(), Langevin(), -1, rng_stream(0, "x"))
    with pytest.raises(ValueError):
        simulate(system, ForceField(), Langevin(), 10, rng_stream(0, "x"), record_every=0)


def test_trajectory_concatenate():
    system = _system(seed=5)
    ff = ForceField()
    a = simulate(system, ff, Langevin(), 20, rng_stream(6, "t/c1"), record_every=10)
    b = simulate(system, ff, Langevin(), 20, rng_stream(7, "t/c2"), record_every=10)
    joined = a.concatenate(b)
    assert joined.n_frames == 4
    assert (np.diff(joined.times) > 0).all()


# -------------------------------------------------------------- observables


def test_kabsch_rmsd_zero_for_rigid_motion():
    rng = rng_stream(8, "t/kab")
    a = rng.normal(size=(20, 3))
    # random rotation + translation
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    x, y, z, w = q
    rot = np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )
    b = a @ rot.T + np.array([5.0, -3.0, 2.0])
    assert kabsch_rmsd(a, b) == pytest.approx(0.0, abs=1e-10)


def test_kabsch_rmsd_detects_deformation():
    rng = rng_stream(9, "t/kab2")
    a = rng.normal(size=(20, 3))
    b = a + rng.normal(scale=0.5, size=a.shape)
    assert kabsch_rmsd(a, b) > 0.1


def test_kabsch_validates_shapes():
    with pytest.raises(ValueError):
        kabsch_rmsd(np.zeros((3, 3)), np.zeros((4, 3)))


def test_trajectory_rmsd_shape():
    rng = rng_stream(10, "t/trmsd")
    ref = rng.normal(size=(10, 3))
    frames = np.stack([ref + rng.normal(scale=s, size=ref.shape) for s in (0.1, 0.5)])
    r = trajectory_rmsd(frames, ref)
    assert r.shape == (2,)
    assert r[0] < r[1]


def test_radius_of_gyration():
    # beads on a sphere of radius 2 → Rg = 2
    rng = rng_stream(11, "t/rog")
    v = rng.normal(size=(500, 3))
    v = 2.0 * v / np.linalg.norm(v, axis=1, keepdims=True)
    assert radius_of_gyration(v) == pytest.approx(2.0, rel=0.05)


def test_contact_count():
    coords = np.array([[0.0, 0, 0], [1.0, 0, 0], [10.0, 0, 0]])
    a = np.array([0])
    b = np.array([1, 2])
    assert contact_count(coords, a, b, cutoff=5.0) == 1
    assert contact_count(coords, a, b, cutoff=20.0) == 2


def test_contact_count_validates():
    with pytest.raises(ValueError):
        contact_count(np.zeros((2, 3)), np.array([0]), np.array([1]), cutoff=0)
